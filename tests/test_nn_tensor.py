"""Autograd engine: forward values and gradients vs numerical differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.nn import Tensor, no_grad
from repro.nn.tensor import as_tensor, is_grad_enabled

from conftest import numerical_gradient


def check_unary_grad(op, x, atol=1e-5):
    t = Tensor(x, requires_grad=True)
    out = op(t)
    out.sum().backward()
    num = numerical_gradient(lambda v: op(Tensor(v)).numpy().sum(), x.copy())
    np.testing.assert_allclose(t.grad, num, atol=atol)


class TestTensorBasics:
    def test_construction_coerces_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_shares_data_but_drops_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_item_on_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_len_matches_first_axis(self):
        assert len(Tensor(np.zeros((4, 2)))) == 4

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_scalars(self):
        assert as_tensor(2.0).item() == 2.0

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError, match="does not require grad"):
            Tensor([1.0]).backward()

    def test_zero_grad_clears(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None


class TestNoGrad:
    def test_no_grad_blocks_tape(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()


class TestArithmeticForward:
    def test_add(self):
        np.testing.assert_allclose((Tensor([1.0, 2]) + Tensor([3.0, 4])).numpy(), [4, 6])

    def test_radd_scalar(self):
        np.testing.assert_allclose((1.0 + Tensor([1.0])).numpy(), [2.0])

    def test_sub(self):
        np.testing.assert_allclose((Tensor([3.0]) - 1.0).numpy(), [2.0])

    def test_rsub(self):
        np.testing.assert_allclose((5.0 - Tensor([3.0])).numpy(), [2.0])

    def test_mul(self):
        np.testing.assert_allclose((Tensor([2.0]) * Tensor([4.0])).numpy(), [8.0])

    def test_div(self):
        np.testing.assert_allclose((Tensor([8.0]) / 2.0).numpy(), [4.0])

    def test_rdiv(self):
        np.testing.assert_allclose((8.0 / Tensor([2.0])).numpy(), [4.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2])).numpy(), [-1, 2])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([3.0]) ** 2).numpy(), [9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_matmul(self):
        a = Tensor(np.eye(2) * 2)
        b = Tensor([[1.0], [2.0]])
        np.testing.assert_allclose((a @ b).numpy(), [[2.0], [4.0]])


class TestArithmeticGradients:
    def test_add_broadcast_grad(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones(2), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 2)))
        np.testing.assert_allclose(b.grad, [3.0, 3.0])

    def test_mul_grad(self):
        x = np.array([1.0, -2.0, 3.0])
        check_unary_grad(lambda t: t * t, x)

    def test_div_grad(self):
        a = Tensor([4.0, 9.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.5, 1 / 3])
        np.testing.assert_allclose(b.grad, [-1.0, -1.0])

    def test_pow_grad(self):
        check_unary_grad(lambda t: t ** 3, np.array([1.5, -0.5]))

    def test_matmul_grad_matches_numerical(self):
        rng = np.random.default_rng(0)
        a_val = rng.standard_normal((3, 4))
        b_val = rng.standard_normal((4, 2))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        num_a = numerical_gradient(lambda v: (v @ b_val).sum(), a_val.copy())
        num_b = numerical_gradient(lambda v: (a_val @ v).sum(), b_val.copy())
        np.testing.assert_allclose(a.grad, num_a, atol=1e-5)
        np.testing.assert_allclose(b.grad, num_b, atol=1e-5)

    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph_grad(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2
        b = x * 3
        (a * b).backward()  # d/dx 6x^2 = 12x
        np.testing.assert_allclose(x.grad, [12.0])


class TestShapeOps:
    def test_reshape_roundtrip_grad(self):
        x = Tensor(np.arange(6.0), requires_grad=True)
        x.reshape(2, 3).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones(6))

    def test_reshape_accepts_tuple(self):
        assert Tensor(np.zeros(6)).reshape((2, 3)).shape == (2, 3)

    def test_transpose_grad(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        (x.T * np.arange(6.0).reshape(3, 2)).sum().backward()
        np.testing.assert_allclose(x.grad, np.arange(6.0).reshape(3, 2).T)

    def test_transpose_axes(self):
        x = Tensor(np.zeros((2, 3, 4)))
        assert x.transpose(2, 0, 1).shape == (4, 2, 3)

    def test_getitem_grad_scatter(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_axis_keepdims(self):
        x = Tensor(np.ones((2, 3)))
        assert x.sum(axis=1, keepdims=True).shape == (2, 1)

    def test_sum_grad(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3)))

    def test_mean_value_and_grad(self):
        x = Tensor(np.array([1.0, 3.0]), requires_grad=True)
        m = x.mean()
        assert m.item() == 2.0
        m.backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])

    def test_max_forward(self):
        assert Tensor(np.array([1.0, 5.0, 3.0])).max().item() == 5.0

    def test_max_axis_grad_routes_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0], [7.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 1], [1, 0]])

    def test_max_tie_splits_gradient(self):
        x = Tensor(np.array([2.0, 2.0]), requires_grad=True)
        x.max().backward()
        np.testing.assert_allclose(x.grad, [0.5, 0.5])


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=4),
              elements=st.floats(-3, 3, allow_nan=False)))
def test_property_sum_grad_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=25, deadline=None)
@given(arrays(np.float64, (3, 3), elements=st.floats(-2, 2, allow_nan=False)))
def test_property_mul_grad_matches_numerical(x):
    t = Tensor(x, requires_grad=True)
    ((t * t) * 0.5).sum().backward()
    np.testing.assert_allclose(t.grad, x, atol=1e-6)
