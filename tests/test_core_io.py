"""JSONL persistence round-trips and error reporting."""

import json

import pytest

from repro.core.io import (
    load_labeled_records,
    load_records,
    record_from_dict,
    record_to_dict,
    save_labeled_records,
    save_records,
)
from repro.core.records import LabeledRecord, SignalRecord


def sample_records():
    return [
        SignalRecord({"aa": -50.0, "bb": -61.5}, timestamp=1.0, position=(2.0, 3.0, 0)),
        SignalRecord({"cc": -70.0}, timestamp=2.0),
        SignalRecord({}, timestamp=3.0),
    ]


class TestRecordDicts:
    def test_roundtrip(self):
        record = sample_records()[0]
        clone = record_from_dict(record_to_dict(record))
        assert clone.readings == record.readings
        assert clone.timestamp == record.timestamp
        assert clone.position == record.position

    def test_position_optional(self):
        record = record_from_dict({"t": 1.0, "rss": {"a": -50.0}})
        assert record.position is None

    def test_missing_rss_rejected(self):
        with pytest.raises(ValueError, match="rss"):
            record_from_dict({"t": 1.0})


class TestRecordFiles:
    def test_save_load_roundtrip(self, tmp_path):
        records = sample_records()
        path = tmp_path / "stream.jsonl"
        assert save_records(records, path) == 3
        loaded = load_records(path)
        assert [r.readings for r in loaded] == [r.readings for r in records]
        assert [r.timestamp for r in loaded] == [1.0, 2.0, 3.0]

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t": 1, "rss": {"a": -50}}\n\n\n')
        assert len(load_records(path)) == 1

    def test_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t": 1, "rss": {"a": -50}}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_records(path)

    def test_blank_lines_do_not_shift_error_line_numbers(self, tmp_path):
        # The reported line number is the *file* line, not the record count.
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t": 1, "rss": {"a": -50}}\n\n\n{bad\n')
        with pytest.raises(ValueError, match=":4:"):
            load_records(path)

    def test_non_mapping_rss_reports_location(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t": 1, "rss": [1, 2]}\n')
        with pytest.raises(ValueError, match=":1:"):
            load_records(path)

    def test_invalid_rss_value_reports_location(self, tmp_path):
        # NaN parses as valid JSON via Python's json but SignalRecord
        # rejects non-finite RSS; the loader must still point at the line.
        path = tmp_path / "stream.jsonl"
        path.write_text('{"t": 1, "rss": {"a": NaN}}\n')
        with pytest.raises(ValueError, match=":1:"):
            load_records(path)

    def test_roundtrip_preserves_positions_and_order(self, tmp_path):
        records = sample_records()
        path = tmp_path / "stream.jsonl"
        save_records(records, path)
        loaded = load_records(path)
        assert [r.position for r in loaded] == [(2.0, 3.0, 0), None, None]
        # Round-tripping the loaded stream is byte-stable.
        path2 = tmp_path / "again.jsonl"
        save_records(loaded, path2)
        assert path.read_text() == path2.read_text()


class TestLabeledFiles:
    def test_roundtrip_with_meta(self, tmp_path):
        items = [
            LabeledRecord(sample_records()[0], inside=True, meta={"session": 1}),
            LabeledRecord(sample_records()[1], inside=False),
        ]
        path = tmp_path / "test.jsonl"
        assert save_labeled_records(items, path) == 2
        loaded = load_labeled_records(path)
        assert [item.inside for item in loaded] == [True, False]
        assert loaded[0].meta["session"] == 1

    def test_nonjson_meta_stringified(self, tmp_path):
        items = [LabeledRecord(sample_records()[0], inside=True,
                               meta={"obj": object()})]
        path = tmp_path / "test.jsonl"
        save_labeled_records(items, path)
        assert isinstance(load_labeled_records(path)[0].meta["obj"], str)

    def test_missing_label_rejected(self, tmp_path):
        path = tmp_path / "test.jsonl"
        path.write_text('{"t": 1, "rss": {"a": -50}}\n')
        with pytest.raises(ValueError, match=":1:"):
            load_labeled_records(path)

    def test_roundtrip_preserves_position_and_meta(self, tmp_path):
        items = [LabeledRecord(sample_records()[0], inside=True,
                               meta={"session": 2, "note": "walk"})]
        path = tmp_path / "test.jsonl"
        save_labeled_records(items, path)
        loaded = load_labeled_records(path)
        assert loaded[0].record.position == (2.0, 3.0, 0)
        assert loaded[0].record.timestamp == 1.0
        assert loaded[0].meta == {"session": 2, "note": "walk"}

    def test_blank_lines_skipped_in_labeled_stream(self, tmp_path):
        path = tmp_path / "test.jsonl"
        path.write_text('\n{"t": 1, "rss": {"a": -50}, "inside": true}\n\n')
        assert len(load_labeled_records(path)) == 1

    def test_bad_json_reports_file_line_number(self, tmp_path):
        path = tmp_path / "test.jsonl"
        path.write_text('{"t": 1, "rss": {"a": -50}, "inside": true}\n\n}{\n')
        with pytest.raises(ValueError, match=":3:"):
            load_labeled_records(path)

    def test_non_mapping_rss_reports_location(self, tmp_path):
        path = tmp_path / "test.jsonl"
        path.write_text('{"t": 1, "rss": "oops", "inside": false}\n')
        with pytest.raises(ValueError, match=":1:"):
            load_labeled_records(path)

    def test_end_to_end_with_gem(self, tmp_path):
        # Saved streams feed the pipeline exactly like fresh ones.
        from repro.core import GEM, GEMConfig
        from repro.embedding.bisage import BiSAGEConfig
        from conftest import synthetic_records

        train = synthetic_records(30, seed=0, center=2.0)
        path = tmp_path / "train.jsonl"
        save_records(train, path)
        gem = GEM(GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0)))
        gem.fit(load_records(path))
        assert gem.graph.num_records == 30
