"""Registry + fleet serving: LRU eviction, write-back, telemetry."""

import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.serve import CheckpointError, GeofenceFleet, ModelRegistry, validate_tenant_id

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def tenant_records(tenant: int, n: int = 25, seed_offset: int = 0):
    """Per-tenant world: each tenant's records cluster at its own center."""
    return synthetic_records(n, num_macs=10, seed=tenant + seed_offset,
                             center=2.0 + tenant)


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "models")


class TestTenantIds:
    @pytest.mark.parametrize("good", ["alice", "home-3", "u_1.2", "A" * 128])
    def test_valid(self, good):
        assert validate_tenant_id(good) == good

    @pytest.mark.parametrize("bad", ["", "../escape", "a/b", ".hidden", "-x",
                                     "A" * 129, "sp ace", None])
    def test_invalid(self, bad):
        with pytest.raises(ValueError, match="tenant id"):
            validate_tenant_id(bad)


class TestRegistry:
    def test_save_load_list_delete(self, registry):
        gem = make_gem().fit(tenant_records(0))
        registry.save("home-0", gem, metadata={"area_m2": 50})
        assert registry.tenants() == ["home-0"]
        assert "home-0" in registry
        assert registry.metadata("home-0") == {"area_m2": 50}
        clone = registry.load("home-0")
        record = tenant_records(0, n=1, seed_offset=99)[0]
        assert clone.score(record) == gem.score(record)
        assert registry.delete("home-0")
        assert not registry.delete("home-0")
        assert registry.tenants() == []

    def test_load_missing_tenant(self, registry):
        with pytest.raises(CheckpointError, match="ghost"):
            registry.load("ghost")

    def test_overwrite_replaces_model(self, registry):
        first = make_gem().fit(tenant_records(0))
        second = make_gem().fit(tenant_records(1))
        registry.save("t", first)
        registry.save("t", second)
        probe = tenant_records(1, n=1, seed_offset=42)[0]
        assert registry.load("t").score(probe) == second.score(probe)
        assert len(registry) == 1

    def test_traversal_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.save("../evil", make_gem().fit(tenant_records(0)))


class TestFleetServing:
    def test_requires_positive_capacity(self, registry):
        with pytest.raises(ValueError, match="capacity"):
            GeofenceFleet(registry, capacity=0)

    def test_three_tenants_capacity_two_no_drift(self, registry):
        """Acceptance: LRU budget < tenant count, zero decision drift."""
        tenants = ["home-0", "home-1", "home-2"]
        fleet = GeofenceFleet(registry, capacity=2, model_factory=make_gem)
        references = {}
        for t, tenant in enumerate(tenants):
            train = tenant_records(t)
            fleet.provision(tenant, train)
            references[tenant] = make_gem().fit(train)

        # Interleaved round-robin stream forces constant eviction churn.
        for i in range(8):
            for t, tenant in enumerate(tenants):
                record = tenant_records(t, n=1, seed_offset=100 + i)[0]
                expected = references[tenant].observe(record)
                assert fleet.observe(tenant, record) == expected

        assert len(fleet.resident_tenants) == 2
        totals = fleet.telemetry.totals()
        assert totals.observations == 24
        assert totals.evictions > 0
        assert totals.loads > 0

    def test_lazy_load_after_restart(self, registry):
        fleet = GeofenceFleet(registry, capacity=4, model_factory=make_gem)
        fleet.provision("solo", tenant_records(0))
        record = tenant_records(0, n=1, seed_offset=7)[0]
        first = fleet.observe("solo", record)
        fleet.close()

        # A brand-new fleet over the same registry resumes transparently,
        # including the effect of the earlier observation (write-back).
        fleet2 = GeofenceFleet(registry, capacity=4, model_factory=make_gem)
        assert fleet2.resident_tenants == []
        next_record = tenant_records(0, n=1, seed_offset=8)[0]
        reference = make_gem().fit(tenant_records(0))
        reference.observe(record)
        assert fleet2.observe("solo", next_record) == reference.observe(next_record)
        assert fleet2.telemetry.tenant("solo").loads == 1

    def test_dirty_write_back_persists_updates(self, registry):
        fleet = GeofenceFleet(registry, capacity=1, model_factory=make_gem)
        fleet.provision("a", tenant_records(0))
        base_samples = registry.load("a").detector.num_samples
        # Confident in-premises records trigger self-updates.
        absorbed = 0
        for i in range(10):
            decision = fleet.observe("a", tenant_records(0, n=1, seed_offset=200 + i)[0])
            absorbed += decision.updated
        assert absorbed > 0
        # Touching tenant b evicts a (capacity 1) and must write it back.
        fleet.provision("b", tenant_records(1))
        assert fleet.resident_tenants == ["b"]
        assert not fleet.is_dirty("a")
        assert registry.load("a").detector.num_samples == base_samples + absorbed

    def test_empty_record_does_not_dirty_model(self, registry):
        from repro.core import SignalRecord
        fleet = GeofenceFleet(registry, capacity=2, model_factory=make_gem)
        fleet.provision("a", tenant_records(0))
        decision = fleet.observe("a", SignalRecord({}))
        assert not decision.inside
        assert not fleet.is_dirty("a")
        assert fleet.flush() == 0

    def test_flush_writes_dirty_models(self, registry):
        fleet = GeofenceFleet(registry, capacity=4, model_factory=make_gem)
        fleet.provision("a", tenant_records(0))
        fleet.observe("a", tenant_records(0, n=1, seed_offset=5)[0])
        assert fleet.is_dirty("a")
        assert fleet.flush() == 1
        assert not fleet.is_dirty("a")
        assert fleet.flush() == 0

    def test_observe_many_preserves_order_and_groups(self, registry):
        tenants = ["t0", "t1", "t2"]
        fleet = GeofenceFleet(registry, capacity=2, model_factory=make_gem)
        references = {}
        for t, tenant in enumerate(tenants):
            train = tenant_records(t)
            fleet.provision(tenant, train)
            references[tenant] = make_gem().fit(train)

        items, expected = [], []
        for i in range(6):
            t = [0, 1, 2, 0, 2, 1][i]
            record = tenant_records(t, n=1, seed_offset=300 + i)[0]
            items.append((tenants[t], record))
        # References observe in the same per-tenant order the fleet will.
        for tenant, record in items:
            expected.append(references[tenant].observe(record))
        assert fleet.observe_many(items) == expected
        # Grouped dispatch: at most one load per tenant for the batch.
        assert fleet.telemetry.totals().loads <= len(tenants)

    def test_observe_many_rejects_bad_batch_untouched(self, registry):
        # An unknown tenant anywhere in the batch must fail before any
        # model is mutated, so the batch can be retried safely.
        fleet = GeofenceFleet(registry, capacity=2, model_factory=make_gem)
        fleet.provision("good", tenant_records(0))
        items = [("good", tenant_records(0, n=1, seed_offset=1)[0]),
                 ("ghost", tenant_records(1, n=1, seed_offset=2)[0])]
        with pytest.raises(CheckpointError, match="ghost"):
            fleet.observe_many(items)
        assert fleet.telemetry.totals().observations == 0
        assert not fleet.is_dirty("good")

    def test_failed_write_back_keeps_model_resident_and_dirty(self, registry, monkeypatch):
        # A transient save failure during eviction must not lose the
        # tenant's in-memory state or leak a stale dirty flag.
        fleet = GeofenceFleet(registry, capacity=1, model_factory=make_gem)
        fleet.provision("a", tenant_records(0))
        fleet.observe("a", tenant_records(0, n=1, seed_offset=2)[0])
        assert fleet.is_dirty("a")
        model = fleet._cache["a"]

        def boom(*args, **kwargs):
            raise OSError("disk full")
        monkeypatch.setattr(fleet.registry, "save", boom)
        with pytest.raises(OSError):
            fleet.evict("a")
        # Still resident, still dirty — nothing was lost.
        assert fleet.resident_tenants == ["a"]
        assert fleet.is_dirty("a")
        assert fleet._cache["a"] is model
        monkeypatch.undo()
        assert fleet.flush() == 1
        assert not fleet.is_dirty("a")

    def test_metadata_cache_evicted_with_model(self, registry):
        # The metadata cache must not outlive the model (unbounded growth).
        fleet = GeofenceFleet(registry, capacity=1, model_factory=make_gem)
        fleet.provision("a", tenant_records(0), metadata={"k": 1})
        fleet.provision("b", tenant_records(1))   # evicts a
        assert "a" not in fleet._metadata
        assert len(fleet._metadata) <= fleet.capacity
        # ...and is repopulated from disk on reload.
        fleet.observe("a", tenant_records(0, n=1, seed_offset=4)[0])
        fleet.evict("a")
        assert registry.metadata("a") == {"k": 1}

    def test_metadata_preserved_across_write_back(self, registry):
        fleet = GeofenceFleet(registry, capacity=1, model_factory=make_gem)
        fleet.provision("a", tenant_records(0), metadata={"home": "apt"})
        fleet.observe("a", tenant_records(0, n=1, seed_offset=3)[0])
        fleet.evict("a")
        assert registry.metadata("a") == {"home": "apt"}

    def test_context_manager_closes(self, registry):
        with GeofenceFleet(registry, capacity=2, model_factory=make_gem) as fleet:
            fleet.provision("a", tenant_records(0))
            fleet.observe("a", tenant_records(0, n=1, seed_offset=1)[0])
        assert fleet.resident_tenants == []

    def test_unknown_tenant_raises(self, registry):
        fleet = GeofenceFleet(registry, capacity=2, model_factory=make_gem)
        with pytest.raises(CheckpointError):
            fleet.observe("nobody", tenant_records(0, n=1)[0])


class TestTelemetry:
    def test_snapshot_shape(self, registry):
        fleet = GeofenceFleet(registry, capacity=2, model_factory=make_gem)
        fleet.provision("a", tenant_records(0))
        fleet.observe("a", tenant_records(0, n=1, seed_offset=9)[0])
        snap = fleet.telemetry.snapshot()
        assert set(snap) == {"tenants", "retired", "totals"}
        assert snap["tenants"]["a"]["observations"] == 1
        assert snap["totals"]["observations"] == 1
        assert snap["totals"]["saves"] >= 1
        assert snap["tenants"]["a"]["observe_seconds"] > 0

    def test_eviction_retires_counters_without_losing_totals(self, registry):
        # Per-tenant telemetry is bounded by the resident set; totals
        # stay exact via the retired aggregate.
        fleet = GeofenceFleet(registry, capacity=1, model_factory=make_gem)
        fleet.provision("a", tenant_records(0))
        fleet.observe("a", tenant_records(0, n=1, seed_offset=1)[0])
        fleet.provision("b", tenant_records(1))   # evicts + retires a
        snap = fleet.telemetry.snapshot()
        assert "a" not in snap["tenants"]
        assert snap["retired"]["observations"] == 1
        assert snap["retired"]["evictions"] == 1
        assert snap["totals"]["observations"] == 1
        assert fleet.telemetry.totals().evictions == 1
