"""state_dict round-trip identity for every newly persistable component."""

import numpy as np
import pytest

from conftest import synthetic_records
from repro.baselines.inoa import INOA
from repro.baselines.signature_home import SignatureHome
from repro.core.embedders import (
    AutoencoderEmbedder,
    GraphSAGEEmbedder,
    ImputedMatrixEmbedder,
    MDSEmbedder,
)
from repro.core.gem import EmbeddingGeofencer
from repro.detection.feature_bagging import FeatureBagging
from repro.detection.histogram import HistogramDetector
from repro.detection.iforest import IsolationForest
from repro.detection.lof import LocalOutlierFactor
from repro.detection.threshold import MinMaxNormalizer
from repro.embedding.autoencoder import AutoencoderConfig
from repro.embedding.graphsage import GraphSAGEConfig


def embeddings(n=40, d=6, seed=0):
    return np.random.default_rng(seed).normal(size=(n, d))


DETECTOR_FACTORIES = {
    "lof": lambda: LocalOutlierFactor(n_neighbors=5),
    "iforest": lambda: IsolationForest(n_trees=15, subsample_size=16, seed=3),
    "feature-bagging": lambda: FeatureBagging(n_estimators=4, n_neighbors=5, seed=3),
    "histogram": lambda: HistogramDetector(),
}


class TestDetectorRoundTrip:
    @pytest.mark.parametrize("name", sorted(DETECTOR_FACTORIES))
    def test_scores_bit_identical(self, name):
        factory = DETECTOR_FACTORIES[name]
        fitted = factory().fit(embeddings())
        restored = factory().load_state_dict(fitted.state_dict())
        queries = embeddings(n=10, seed=9)
        np.testing.assert_array_equal(fitted.decision_scores(queries),
                                      restored.decision_scores(queries))
        np.testing.assert_array_equal(fitted.is_outlier(queries),
                                      restored.is_outlier(queries))

    def test_unfitted_detector_cannot_checkpoint(self):
        for factory in DETECTOR_FACTORIES.values():
            with pytest.raises(RuntimeError, match="fit"):
                factory().state_dict()

    def test_lof_rejects_out_of_range_neighbors(self):
        fitted = DETECTOR_FACTORIES["lof"]().fit(embeddings())
        state = fitted.state_dict()
        state["neighbors"] = state["neighbors"] + 1000
        with pytest.raises(ValueError, match="neighbors"):
            LocalOutlierFactor().load_state_dict(state)

    def test_lof_rejects_truncated_arrays(self):
        fitted = DETECTOR_FACTORIES["lof"]().fit(embeddings())
        for name in ("k_distance", "lrd", "train_scores"):
            state = fitted.state_dict()
            state[name] = state[name][:-3]
            with pytest.raises(ValueError, match=name):
                LocalOutlierFactor().load_state_dict(state)

    def test_iforest_rejects_dangling_children(self):
        fitted = DETECTOR_FACTORIES["iforest"]().fit(embeddings())
        state = fitted.state_dict()
        state["tree_roots"] = state["tree_roots"] + 10_000
        with pytest.raises(ValueError, match="node index"):
            IsolationForest().load_state_dict(state)


class TestNormalizerRoundTrip:
    def test_round_trip(self):
        fitted = MinMaxNormalizer().fit([1.0, 3.0, 9.0])
        restored = MinMaxNormalizer(clip=False).load_state_dict(fitted.state_dict())
        assert (restored.low, restored.high, restored.clip) == (1.0, 9.0, True)
        np.testing.assert_array_equal(fitted.transform([2.0, 11.0]),
                                      restored.transform([2.0, 11.0]))

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError, match="unfitted"):
            MinMaxNormalizer().state_dict()

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError, match="high"):
            MinMaxNormalizer().load_state_dict({"clip": True, "low": 2.0, "high": 1.0})


EMBEDDER_FACTORIES = {
    "graphsage": lambda: GraphSAGEEmbedder(GraphSAGEConfig(dim=8, epochs=1, seed=0)),
    "autoencoder": lambda: AutoencoderEmbedder(AutoencoderConfig(dim=8, epochs=2, seed=0)),
    "mds": lambda: MDSEmbedder(dim=6),
    "imputed-matrix": lambda: ImputedMatrixEmbedder(),
}


class TestEmbedderRoundTrip:
    @pytest.mark.parametrize("name", sorted(EMBEDDER_FACTORIES))
    def test_embeddings_bit_identical(self, name):
        factory = EMBEDDER_FACTORIES[name]
        fitted = factory().fit(synthetic_records(30, seed=0, center=2.0))
        restored = factory().load_state_dict(fitted.state_dict())
        np.testing.assert_array_equal(fitted.training_embeddings(),
                                      restored.training_embeddings())
        for record in synthetic_records(5, seed=9, center=3.0):
            a = fitted.embed(record, attach=False)
            b = restored.embed(record, attach=False)
            if a is None:
                assert b is None
            else:
                np.testing.assert_array_equal(a, b)

    def test_unfitted_embedder_cannot_checkpoint(self):
        for factory in EMBEDDER_FACTORIES.values():
            with pytest.raises(RuntimeError, match="fit"):
                factory().state_dict()

    def test_graphsage_config_mismatch_rejected(self):
        fitted = EMBEDDER_FACTORIES["graphsage"]().fit(synthetic_records(20, seed=0))
        other = GraphSAGEEmbedder(GraphSAGEConfig(dim=16, epochs=1, seed=0))
        with pytest.raises(ValueError, match="config"):
            other.load_state_dict(fitted.state_dict())

    def test_mds_dim_mismatch_rejected(self):
        fitted = EMBEDDER_FACTORIES["mds"]().fit(synthetic_records(20, seed=0))
        with pytest.raises(ValueError, match="dim"):
            MDSEmbedder(dim=4).load_state_dict(fitted.state_dict())


class TestBaselineRoundTrip:
    @pytest.mark.parametrize("factory", [SignatureHome, INOA],
                             ids=["signature-home", "inoa"])
    def test_scores_bit_identical(self, factory):
        fitted = factory().fit(synthetic_records(25, seed=0, center=2.0))
        restored = factory().load_state_dict(fitted.state_dict())
        for record in synthetic_records(8, seed=7, center=4.0):
            a, b = fitted.observe(record), restored.observe(record)
            assert a.score == b.score and a.inside == b.inside

    def test_unfitted_rejected(self):
        for factory in (SignatureHome, INOA):
            with pytest.raises(RuntimeError, match="fit"):
                factory().state_dict()


class TestPipelineAtomicRestore:
    def test_bad_detector_state_leaves_pipeline_untouched(self):
        train = synthetic_records(25, seed=0, center=2.0)
        pipeline = EmbeddingGeofencer(ImputedMatrixEmbedder(), HistogramDetector(),
                                      self_update=False).fit(train)
        donor = EmbeddingGeofencer(ImputedMatrixEmbedder(), HistogramDetector(),
                                   self_update=False).fit(
            synthetic_records(25, seed=5, center=5.0))
        state = donor.state_dict()
        state["detector"]["data"] = "not-an-array"
        probe = synthetic_records(4, seed=9, center=2.0)
        before = [pipeline.score(r) for r in probe]
        with pytest.raises((TypeError, ValueError)):
            pipeline.load_state_dict(state)
        # The failed load must not have swapped in the donor's embedder.
        assert [pipeline.score(r) for r in probe] == before

    def test_good_state_round_trips_scores(self):
        train = synthetic_records(25, seed=0, center=2.0)
        pipeline = EmbeddingGeofencer(MDSEmbedder(dim=6), HistogramDetector()).fit(train)
        twin = EmbeddingGeofencer(MDSEmbedder(dim=6), HistogramDetector())
        twin.load_state_dict(pipeline.state_dict())
        for record in synthetic_records(6, seed=3, center=3.0):
            assert twin.observe(record).score == pipeline.observe(record).score
