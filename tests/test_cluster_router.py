"""Router + in-process workers: routing, bit-identity, failure modes."""

import shutil
import socket
import threading

import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.pipeline import ComponentSpec, PipelineSpec
from repro.serve import CheckpointError, ServingRuntime
from repro.serve.cluster import (Router, WorkerDied, WorkerTimeout,
                                 spawn_local_worker)
from repro.serve.cluster.protocol import (hello_frame, read_frame, write_frame)
from repro.serve.cluster.worker import LocalWorkerHandle

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))
TENANTS = [f"tenant-{i}" for i in range(5)]


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def fast_spec() -> PipelineSpec:
    return PipelineSpec(model=ComponentSpec("gem", FAST_CONFIG.to_dict()))


def tenant_records(tenant: int, n: int = 25):
    return synthetic_records(n, num_macs=10, seed=tenant, center=2.0 + tenant)


def interleaved_stream(n: int = 40):
    mixed = synthetic_records(n, num_macs=10, seed=321)
    return [(TENANTS[i % len(TENANTS)], record) for i, record in enumerate(mixed)]


@pytest.fixture(scope="module")
def seed_registry(tmp_path_factory):
    """Five provisioned tenants, built once and copied per test."""
    root = tmp_path_factory.mktemp("cluster-seed") / "registry"
    with ServingRuntime(root, num_shards=1, model_factory=make_gem,
                        scheduler_interval=None) as runtime:
        for index, tenant in enumerate(TENANTS):
            runtime.provision(tenant, tenant_records(index))
    return root


def fresh_copy(seed_registry, tmp_path, name: str):
    target = tmp_path / name
    shutil.copytree(seed_registry, target)
    return target


def local_router(root, **kwargs) -> Router:
    kwargs.setdefault("launcher", spawn_local_worker)
    kwargs.setdefault("num_workers", 3)
    return Router(root, **kwargs)


class TestClusterServing:
    def test_decisions_bit_identical_to_serial(self, seed_registry, tmp_path):
        # The headline contract: hash-partitioned multi-worker serving
        # produces exactly the serial runtime's decisions.
        stream = interleaved_stream()
        with ServingRuntime(fresh_copy(seed_registry, tmp_path, "serial"),
                            num_shards=1, scheduler_interval=None) as runtime:
            expected = [runtime.observe(t, r) for t, r in stream]
        with local_router(fresh_copy(seed_registry, tmp_path, "cluster")) as router:
            got = [router.observe(t, r) for t, r in stream]
        assert got == expected        # frozen dataclass: exact, not approx

    def test_observe_many_matches_per_item_observe(self, seed_registry,
                                                   tmp_path):
        stream = interleaved_stream()
        with local_router(fresh_copy(seed_registry, tmp_path, "a")) as router:
            expected = [router.observe(t, r) for t, r in stream]
        with local_router(fresh_copy(seed_registry, tmp_path, "b")) as router:
            got = router.observe_many(stream)
        assert got == expected

    def test_provision_score_flush_roundtrip(self, tmp_path):
        with local_router(tmp_path / "registry", num_workers=2) as router:
            result = router.provision("tenant-0", tenant_records(0),
                                      metadata={"site": "lab"},
                                      spec=fast_spec())
            assert result == {"tenant": "tenant-0", "model": "GEM"}
            record = tenant_records(0)[0]
            assert isinstance(router.score("tenant-0", record), float)
            decision = router.observe("tenant-0", record)
            assert decision.inside in (True, False)
            assert router.flush() >= 0
            assert router.maintain() >= 0

    def test_ping_and_worker_stats_cover_every_worker(self, seed_registry,
                                                      tmp_path):
        with local_router(fresh_copy(seed_registry, tmp_path, "c")) as router:
            pings = router.ping()
            assert [p["worker"] for p in pings] == [0, 1, 2]
            router.observe_many(interleaved_stream(10))
            stats = router.worker_stats()
            assert [s["worker"] for s in stats] == [0, 1, 2]
            assert sum(s["requests"] for s in stats) >= 3
            assert all("runtime" in s for s in stats)

    def test_close_collects_final_worker_stats(self, seed_registry, tmp_path):
        router = local_router(fresh_copy(seed_registry, tmp_path, "d"))
        router.observe_many(interleaved_stream(10))
        router.close()
        assert all(stats is not None for stats in router.final_worker_stats)
        assert all(stats["requests"] >= 1 for stats in router.final_worker_stats)

    def test_bad_worker_count_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="num_workers"):
            Router(tmp_path / "registry", num_workers=0)


class TestRemoteErrors:
    def test_unknown_tenant_raises_checkpoint_error(self, seed_registry,
                                                    tmp_path):
        record = tenant_records(0)[0]
        with local_router(fresh_copy(seed_registry, tmp_path, "e")) as router:
            with pytest.raises(CheckpointError, match="no checkpoint"):
                router.observe("never-provisioned", record)
            # The link survives a remote error: same worker still serves.
            assert router.observe(TENANTS[0], record) is not None
            assert router.live_workers == 3

    def test_invalid_tenant_id_raises_value_error(self, seed_registry,
                                                  tmp_path):
        with local_router(fresh_copy(seed_registry, tmp_path, "f")) as router:
            with pytest.raises(ValueError, match="invalid tenant id"):
                router.observe("BAD TENANT!!", tenant_records(0)[0])


def _stub_launcher(serve):
    """A launcher whose fake worker runs ``serve(reader, writer, config)``."""
    def launch(config):
        router_sock, peer_sock = socket.socketpair()
        reader = peer_sock.makefile("rb")
        writer = peer_sock.makefile("wb")

        def _run():
            try:
                serve(reader, writer, config)
            except (OSError, ValueError):
                pass
            finally:
                for stream in (reader, writer):
                    try:
                        stream.close()
                    except OSError:
                        pass
                peer_sock.close()

        thread = threading.Thread(target=_run, daemon=True)
        thread.start()
        return LocalWorkerHandle(reader=router_sock.makefile("rb"),
                                 writer=router_sock.makefile("wb"),
                                 thread=thread, sockets=(router_sock,))
    return launch


def _handshake(reader, writer, config):
    read_frame(reader)
    write_frame(writer, hello_frame(worker=config.index, pid=None))


class TestFailureModes:
    def test_silent_worker_times_out_but_link_survives(self, tmp_path):
        def silent(reader, writer, config):
            _handshake(reader, writer, config)
            while read_frame(reader) is not None:
                pass                     # swallow requests, never answer

        router = Router(tmp_path / "registry", num_workers=1, timeout=0.2,
                        launcher=_stub_launcher(silent))
        try:
            with pytest.raises(WorkerTimeout, match="no 'ping' response"):
                router.ping()
            assert router.live_workers == 1      # timed out, not dead
            families = router.metrics()["families"]
            series = families["repro_router_requests_total"]["series"]
            assert any(s["labels"].get("outcome") == "timeout" for s in series)
        finally:
            router.close()

    def test_dying_worker_fails_pending_with_worker_died(self, tmp_path):
        def dies_after_first_request(reader, writer, config):
            _handshake(reader, writer, config)
            read_frame(reader)           # take one request, then vanish

        router = Router(tmp_path / "registry", num_workers=1, timeout=5.0,
                        launcher=_stub_launcher(dies_after_first_request))
        try:
            with pytest.raises(WorkerDied):
                router.ping()
            assert router.live_workers == 0
            # Subsequent requests fail fast instead of hanging.
            with pytest.raises(WorkerDied):
                router.ping()
        finally:
            router.close()

    def test_misrouted_tenant_rejected_by_worker(self, seed_registry, tmp_path):
        # Speak to a real worker directly, claiming a partition that does
        # not own the tenant: the worker must refuse, not serve quietly.
        from repro.serve.cluster import WorkerConfig
        from repro.serve.cluster.protocol import encode_record
        from repro.serve.runtime import shard_index

        tenant = TENANTS[0]
        wrong = (shard_index(tenant, 4) + 1) % 4
        handle = spawn_local_worker(None)
        try:
            config = WorkerConfig(registry=str(seed_registry), index=wrong,
                                  num_workers=4)
            write_frame(handle.writer, hello_frame(config=config.to_dict()))
            read_frame(handle.reader)    # worker hello
            write_frame(handle.writer,
                        {"type": "request", "id": 1, "op": "observe",
                         "tenant": tenant,
                         "record": encode_record(tenant_records(0)[0])})
            header, _ = read_frame(handle.reader)
            assert header["ok"] is False
            assert header["error"]["kind"] == "ValueError"
            assert "misrouted" in header["error"]["message"]
        finally:
            handle.close()


class TestObservabilityAndReplication:
    def test_metrics_families_and_health_probe(self, seed_registry, tmp_path):
        with local_router(fresh_copy(seed_registry, tmp_path, "g")) as router:
            router.observe_many(interleaved_stream(10))
            snapshot = router.metrics()
            assert "repro_router_requests_total" in snapshot["families"]
            assert "repro_router_request_seconds" in snapshot["families"]
            assert "repro_replication_lag" in snapshot["families"]
            assert snapshot["health"]["replication_lag"]["status"] == "ok"
            assert [w["dead"] for w in snapshot["workers"]] == [False] * 3
            text = router.export_prometheus()
            assert "repro_router_requests_total" in text
            assert "repro_replication_lag" in text

    def test_replicated_cluster_fails_over_to_identical_standby(
            self, seed_registry, tmp_path):
        # End-to-end warm failover: serve, flush, promote, then compare
        # the promoted standby's decisions against the primary's.
        stream = interleaved_stream(20)
        primary = fresh_copy(seed_registry, tmp_path, "primary")
        standby = tmp_path / "standby"
        with local_router(primary, num_workers=2, standby=standby) as router:
            router.observe_many(stream)
            flushed = router.flush()
            assert flushed == len(TENANTS)
            stats = router.replication_stats()
            assert stats["applied"] >= flushed and stats["rejected"] == 0
            assert stats["last_error"] is None
            assert router.replication_lag() >= 0
            report = router.promote()
            assert report.tenants == len(TENANTS)
            assert report.seconds > 0
        probe = interleaved_stream(15)
        with ServingRuntime(primary, num_shards=1,
                            scheduler_interval=None) as runtime:
            expected = [runtime.observe(t, r) for t, r in probe]
        with ServingRuntime(standby, num_shards=1,
                            scheduler_interval=None) as runtime:
            got = [runtime.observe(t, r) for t, r in probe]
        assert got == expected

    def test_promote_without_standby_is_an_error(self, seed_registry,
                                                 tmp_path):
        from repro.serve.cluster import ClusterError
        with local_router(fresh_copy(seed_registry, tmp_path, "h")) as router:
            with pytest.raises(ClusterError, match="no standby"):
                router.promote()
