"""Observability threaded through the serving stack.

Covers the runtime's ``metrics()`` / ``export_prometheus()`` surface,
the bit-identity contract (instrumentation never changes decisions),
the telemetry conservation invariant under concurrency, the
scheduler's bounded error log, and the stuck-refresh health signal.
"""

import threading

import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.core.protocols import GeofenceDecision
from repro.embedding.bisage import BiSAGEConfig
from repro.obs import MetricsRegistry
from repro.serve import (FleetController, MaintenancePolicy,
                         MaintenanceScheduler, ServingRuntime)
from repro.serve.telemetry import FleetTelemetry

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


TENANTS = [f"tenant-{i}" for i in range(3)]


def provision_all(target) -> None:
    for index, tenant in enumerate(TENANTS):
        target.provision(tenant, synthetic_records(25, num_macs=10, seed=index,
                                                   center=2.0 + index))


def stream(target, n: int = 45) -> list:
    mixed = synthetic_records(n, num_macs=10, seed=321, center=3.0)
    return [target.observe(TENANTS[i % len(TENANTS)], record)
            for i, record in enumerate(mixed)]


# ----------------------------------------------------------------------
# runtime.metrics() / export_prometheus()
# ----------------------------------------------------------------------
class TestRuntimeMetrics:
    def test_export_covers_the_acceptance_surface(self, tmp_path):
        with ServingRuntime(tmp_path / "reg", num_shards=2, capacity=8,
                            model_factory=make_gem,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            stream(runtime)
            runtime.flush()
            snapshot = runtime.metrics()
            text = runtime.export_prometheus()

        families = snapshot["families"]
        # Op latency histograms, with per-shard + per-op labels.
        ops = {s["labels"]["op"] for s in families["repro_op_seconds"]["series"]}
        assert {"observe", "load", "save", "refresh"} <= ops
        assert families["repro_op_seconds"]["type"] == "histogram"
        # Per-shard queue depth gauges exist for every shard.
        shards = {s["labels"]["shard"]
                  for s in families["repro_shard_queue_depth"]["series"]}
        assert shards == {"0", "1"}
        # Serial mode: no scheduler pumps, so the pump-age gauge has no
        # series — staleness is the health probe's job here.
        assert families["repro_scheduler_last_pump_age_seconds"]["series"] == []
        # Health gauges mirror the probe set.
        probes = {s["labels"]["probe"]
                  for s in families["repro_health_status"]["series"]}
        assert probes == {"stuck_refresh", "reservoir_starvation",
                          "scheduler_staleness", "decision_bus_depth"}
        assert set(snapshot["health"]) == probes
        # Serial mode has no scheduler to snapshot.
        assert snapshot["scheduler"] is None

        # The exposition text renders all of it.
        assert "# TYPE repro_op_seconds histogram" in text
        assert 'repro_op_seconds_bucket{' in text
        assert 'op="observe"' in text and 'le="+Inf"' in text
        assert "# TYPE repro_decisions_total counter" in text
        assert 'repro_shard_queue_depth{shard="0"} 0' in text
        assert 'repro_health_status{probe="scheduler_staleness"} 0' in text

    def test_decision_counters_add_up(self, tmp_path):
        with ServingRuntime(tmp_path / "reg", num_shards=2, capacity=8,
                            model_factory=make_gem,
                            scheduler_interval=None) as runtime:
            decisions = stream(provision_all(runtime) or runtime)
            families = runtime.metrics()["families"]
        by_result = {"inside": 0.0, "outside": 0.0}
        for series in families["repro_decisions_total"]["series"]:
            by_result[series["labels"]["result"]] += series["value"]
        assert by_result["inside"] == sum(d.inside for d in decisions)
        assert by_result["outside"] == sum(not d.inside for d in decisions)
        # Observe latency histogram saw every observation.
        observed = sum(s["count"]
                       for s in families["repro_op_seconds"]["series"]
                       if s["labels"]["op"] == "observe")
        assert observed == len(decisions)

    def test_checkpoint_bytes_and_chain_metrics_flow(self, tmp_path):
        with ServingRuntime(tmp_path / "reg", num_shards=1, capacity=8,
                            model_factory=make_gem, incremental=True,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            runtime.flush()            # full saves
            stream(runtime)
            runtime.flush()            # delta saves on top
            families = runtime.metrics()["families"]
        kinds = {s["labels"]["kind"]: s["value"]
                 for s in families["repro_checkpoint_bytes_total"]["series"]}
        assert kinds["full"] > 0
        assert kinds["delta"] > 0
        chain = families["repro_delta_chain_length"]["series"][0]["value"]
        assert chain >= 1

    def test_observability_off_raises_and_costs_nothing(self, tmp_path):
        runtime = ServingRuntime(tmp_path / "reg", num_shards=1,
                                 model_factory=make_gem, observability=False,
                                 scheduler_interval=None)
        assert runtime.metrics_registry is None
        assert runtime.tracer is None
        with pytest.raises(RuntimeError, match="observability=False"):
            runtime.metrics()
        with pytest.raises(RuntimeError, match="observability=False"):
            runtime.export_prometheus()
        runtime.close()

    def test_background_mode_reports_scheduler_and_pump_age(self, tmp_path):
        with ServingRuntime(tmp_path / "reg", num_shards=1, capacity=8,
                            model_factory=make_gem,
                            policy=MaintenancePolicy(check_every=8,
                                                     refresh_every=16),
                            scheduler_interval=0.01) as runtime:
            provision_all(runtime)
            stream(runtime, n=30)
            deadline = [runtime.scheduler.stats()["ticks"] for _ in range(1)]
            for _ in range(200):
                if runtime.scheduler.stats()["ticks"] >= deadline[0] + 2:
                    break
                threading.Event().wait(0.01)
            snapshot = runtime.metrics()
        scheduler = snapshot["scheduler"]
        assert scheduler["ticks"] >= 2
        assert isinstance(scheduler["errors"], dict)
        assert scheduler["last_pump_ages"].keys() == {"0"}
        assert scheduler["last_pump_ages"]["0"] < 60.0


class TestBitIdentity:
    """Acceptance: decisions are bit-identical with observability on/off."""

    def test_instrumented_stream_matches_uninstrumented(self, tmp_path):
        policy = MaintenancePolicy(check_every=8, refresh_every=16)
        decisions = {}
        for name, observability in (("on", True), ("off", False)):
            with ServingRuntime(tmp_path / name, num_shards=1, capacity=2,
                                model_factory=make_gem, policy=policy,
                                observability=observability,
                                scheduler_interval=None) as runtime:
                provision_all(runtime)
                decisions[name] = stream(runtime, n=60)
                runtime.maintain()
                decisions[name] += stream(runtime, n=15)
        assert decisions["on"] == decisions["off"]


# ----------------------------------------------------------------------
# Satellite: telemetry conservation under concurrency
# ----------------------------------------------------------------------
class TestTelemetryConservation:
    def test_snapshot_totals_are_internally_consistent_under_load(self):
        """totals == sum(tenants) + retired in *every* snapshot.

        The historical bug: totals were computed outside the lock, so a
        concurrent retire() could move a tenant's counters into
        ``retired`` between the two reads and the identity broke.
        """
        telemetry = FleetTelemetry()
        decision = GeofenceDecision(inside=True, score=0.1)
        stop = threading.Event()
        violations: list[dict] = []

        def hammer(worker: int) -> None:
            i = 0
            while not stop.is_set():
                tenant = f"t{worker}-{i % 7}"
                telemetry.record_observation(tenant, decision)
                if i % 13 == 0:
                    telemetry.retire(tenant)
                i += 1

        def audit() -> None:
            while not stop.is_set():
                snap = telemetry.snapshot()
                expected = dict(snap["retired"])
                for stats in snap["tenants"].values():
                    for key, value in stats.items():
                        expected[key] += value
                if expected != snap["totals"]:
                    violations.append({"expected": expected,
                                      "got": snap["totals"]})

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(3)]
        threads.append(threading.Thread(target=audit))
        for thread in threads:
            thread.start()
        threading.Event().wait(0.4)
        stop.set()
        for thread in threads:
            thread.join()
        assert violations == []
        # And the final state balances exactly.
        final = telemetry.snapshot()
        assert final["totals"]["observations"] == \
            telemetry.totals().observations > 0


# ----------------------------------------------------------------------
# Satellite: scheduler error log
# ----------------------------------------------------------------------
class SweepBombPolicy:
    """Stands in for a MaintenancePolicy whose sweep clause blows up.

    ``check_every == 0`` keeps the decision-stream path quiet, so only
    ``maintain()`` (the sweep) ever touches the exploding attribute.
    """

    check_every = 0

    @property
    def evict_idle_sweeps(self):
        raise RuntimeError("policy exploded mid-sweep")

    def is_noop(self) -> bool:
        return False


class TestSchedulerErrorLog:
    @pytest.fixture()
    def runtime(self, tmp_path):
        with ServingRuntime(tmp_path / "reg", num_shards=1, capacity=8,
                            model_factory=make_gem,
                            policies={t: SweepBombPolicy() for t in TENANTS},
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            yield runtime

    def test_sweep_errors_are_visible_and_pumps_keep_draining(self, runtime):
        scheduler = MaintenanceScheduler(runtime.shards, interval=0.01,
                                         metrics=runtime.metrics_registry)
        for round_no in range(1, 4):
            stream(runtime, n=6)
            drained = scheduler.tick(sweep=True)
            assert drained == 6            # the pump never stalls
            stats = scheduler.stats()
            assert stats["errors"] == round_no       # int, backward compat
            assert stats["decisions_drained"] == 6 * round_no
            # The pump completed before the sweep blew up, so the shard
            # still counts as recently pumped.
            assert 0 in scheduler.last_pump_ages()

        snapshot = scheduler.snapshot(recent_errors=2)
        assert snapshot["errors"]["count"] == 3      # cumulative
        assert len(snapshot["errors"]["recent"]) == 2  # bounded view
        entry = snapshot["errors"]["recent"][-1]
        assert entry["shard"] == 0
        assert "policy exploded mid-sweep" in entry["error"]
        assert "\n" not in entry["error"]            # one line per entry

        # The counter mirrors the cumulative total.
        counter = runtime.metrics_registry.get("repro_scheduler_errors_total")
        assert counter.value == 3

    def test_snapshot_recent_window_tracks_the_tail(self, runtime):
        scheduler = MaintenanceScheduler(runtime.shards, interval=0.01)
        for _ in range(10):
            scheduler.tick(sweep=True)
        snapshot = scheduler.snapshot(recent_errors=4)
        assert snapshot["errors"]["count"] == 10
        assert len(snapshot["errors"]["recent"]) == 4
        assert snapshot["errors"]["count"] >= len(scheduler.errors)


# ----------------------------------------------------------------------
# Satellite: failed-refresh streaks and the stuck_refresh probe
# ----------------------------------------------------------------------
class FlakyFleet:
    """Refresh fails ``failures`` times, then succeeds forever."""

    def __init__(self, failures: int):
        self.failures = failures
        self.resident_tenants: list[str] = []

    def refresh(self, tenant_id):
        if self.failures > 0:
            self.failures -= 1
            raise ValueError("empty inlier reservoir")
        return 1

    def is_dirty(self, tenant_id):
        return False


class TestFailedRefreshStreaks:
    def drive(self, controller, tenant: str, rounds: int) -> None:
        decision = GeofenceDecision(inside=True, score=0.1)
        for _ in range(rounds * 4):
            controller.step(tenant, decision)

    def test_streak_grows_then_resets_on_success(self):
        policy = MaintenancePolicy(check_every=4, refresh_every=4)
        controller = FleetController(FlakyFleet(failures=3),
                                     policies={"t1": policy})
        self.drive(controller, "t1", rounds=2)
        assert controller.failed_refresh_streaks() == {"t1": 2}
        self.drive(controller, "t1", rounds=1)
        assert controller.failed_refresh_streaks() == {"t1": 3}
        # Fourth attempt succeeds and clears the streak entirely.
        self.drive(controller, "t1", rounds=1)
        assert controller.failed_refresh_streaks() == {}
        failed = [a for _, a in controller.actions if a.startswith("refresh-failed")]
        assert len(failed) == 3

    def test_failed_actions_reach_the_metrics_counter(self):
        registry = MetricsRegistry()
        policy = MaintenancePolicy(check_every=4, refresh_every=4)
        controller = FleetController(FlakyFleet(failures=2),
                                     policies={"t1": policy},
                                     metrics=registry, shard="0")
        self.drive(controller, "t1", rounds=3)
        family = registry.get("repro_maintenance_actions_total")
        counts = {s["labels"]["action"]: s["value"]
                  for s in registry.snapshot()
                  ["repro_maintenance_actions_total"]["series"]}
        assert counts["refresh-failed"] == 2
        assert counts["refresh"] == 1
        assert family is not None

    def test_stuck_refresh_probe_escalates_on_a_real_runtime(self, tmp_path):
        # reservoir_size=0 makes every coordinated refresh fail with the
        # empty-reservoir ValueError — the real-world stuck tenant.
        policy = MaintenancePolicy(check_every=5, refresh_every=5)
        with ServingRuntime(tmp_path / "reg", num_shards=1, capacity=8,
                            model_factory=make_gem, reservoir_size=0,
                            policy=policy,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)

            def probe():
                return runtime.metrics()["health"]["stuck_refresh"]

            assert probe()["status"] == "ok"
            records = synthetic_records(40, num_macs=10, seed=7, center=3.0)
            for record in records[:10]:
                runtime.observe(TENANTS[0], record)
            runtime.maintain()   # serial mode: pump the decision bus
            result = probe()     # two failed refreshes -> warn
            assert result["status"] in {"warn", "critical"}
            assert TENANTS[0] in result["detail"]
            for record in records[10:]:
                runtime.observe(TENANTS[0], record)
            runtime.maintain()
            assert probe()["status"] == "critical"
            text = runtime.export_prometheus()
            assert 'repro_health_status{probe="stuck_refresh"} 2' in text
            streaks = runtime.shards[0].controller.failed_refresh_streaks()
            assert streaks[TENANTS[0]] >= 4
