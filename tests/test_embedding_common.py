"""Shared SAGE machinery: global CSR, batch sampling, aggregation matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SignalRecord
from repro.embedding.common import (
    full_aggregation_matrix,
    global_csr,
    initial_embedding_row,
    initial_embeddings,
    sample_neighbors_batch,
    sampled_aggregation_matrix,
)
from repro.graph import WeightedBipartiteGraph, build_graph

from conftest import synthetic_records


def small_graph():
    graph = WeightedBipartiteGraph()
    graph.add_record(SignalRecord({"a": -50.0, "b": -60.0}))
    graph.add_record(SignalRecord({"b": -55.0, "c": -70.0}))
    return graph


class TestGlobalCsr:
    def test_shapes(self):
        graph = small_graph()
        indptr, indices, weights = global_csr(graph)
        num_nodes = graph.num_records + graph.num_macs
        assert len(indptr) == num_nodes + 1
        assert len(indices) == len(weights) == 2 * graph.num_edges

    def test_symmetry(self):
        # Edge (u, v) appears in u's row and in v's row with equal weight.
        graph = small_graph()
        indptr, indices, weights = global_csr(graph)
        num_u = graph.num_records
        # record 0 -> mac 'a' (global id num_u + 0)
        row0 = indices[indptr[0]:indptr[1]]
        assert num_u + 0 in row0
        row_a = indices[indptr[num_u]:indptr[num_u + 1]]
        assert 0 in row_a

    def test_degrees_match_graph(self):
        graph = build_graph(synthetic_records(10, seed=0))
        indptr, _, _ = global_csr(graph)
        degrees = np.diff(indptr)
        record_deg, mac_deg = graph.degrees()
        np.testing.assert_array_equal(degrees[: graph.num_records], record_deg)
        np.testing.assert_array_equal(degrees[graph.num_records:], mac_deg)

    def test_neighbors_cross_partition(self):
        graph = small_graph()
        indptr, indices, _ = global_csr(graph)
        num_u = graph.num_records
        for u in range(num_u):
            assert (indices[indptr[u]:indptr[u + 1]] >= num_u).all()
        for v in range(num_u, num_u + graph.num_macs):
            assert (indices[indptr[v]:indptr[v + 1]] < num_u).all()


class TestAggregationMatrices:
    def test_full_matrix_rows_stochastic(self):
        graph = build_graph(synthetic_records(8, seed=1))
        indptr, indices, weights = global_csr(graph)
        n = graph.num_records + graph.num_macs
        matrix = full_aggregation_matrix(indptr, indices, weights, n)
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        degrees = np.diff(indptr)
        np.testing.assert_allclose(sums[degrees > 0], 1.0)
        np.testing.assert_allclose(sums[degrees == 0], 0.0)

    def test_sampled_matrix_rows_stochastic(self):
        graph = build_graph(synthetic_records(8, seed=1))
        indptr, indices, weights = global_csr(graph)
        n = graph.num_records + graph.num_macs
        matrix = sampled_aggregation_matrix(indptr, indices, weights, n, 3,
                                            np.random.default_rng(0))
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        assert ((np.abs(sums - 1.0) < 1e-9) | (sums == 0.0)).all()

    def test_sample_none_equals_full(self):
        graph = build_graph(synthetic_records(5, seed=2))
        indptr, indices, weights = global_csr(graph)
        n = graph.num_records + graph.num_macs
        a = sampled_aggregation_matrix(indptr, indices, weights, n, None,
                                       np.random.default_rng(0))
        b = full_aggregation_matrix(indptr, indices, weights, n)
        assert (a != b).nnz == 0


class TestBatchSampling:
    def test_small_degree_kept_whole(self):
        graph = small_graph()
        indptr, indices, weights = global_csr(graph)
        rows, cols, w = sample_neighbors_batch(indptr, indices, weights, 10,
                                               np.random.default_rng(0))
        # Every node has degree <= 10: full adjacency returned.
        assert len(rows) == len(indices)

    def test_large_degree_capped(self):
        graph = WeightedBipartiteGraph()
        graph.add_record(SignalRecord({f"m{i}": -50.0 for i in range(40)}))
        indptr, indices, weights = global_csr(graph)
        rows, cols, w = sample_neighbors_batch(indptr, indices, weights, 5,
                                               np.random.default_rng(0))
        assert (rows == 0).sum() == 5  # the record node was subsampled

    def test_sampled_cols_are_neighbors(self):
        graph = WeightedBipartiteGraph()
        graph.add_record(SignalRecord({f"m{i}": -40.0 - i for i in range(30)}))
        indptr, indices, weights = global_csr(graph)
        rows, cols, _ = sample_neighbors_batch(indptr, indices, weights, 4,
                                               np.random.default_rng(1))
        true_neighbors = set(indices[indptr[0]:indptr[1]].tolist())
        assert set(cols[rows == 0].tolist()) <= true_neighbors

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 12))
    def test_property_weights_positive(self, sample_size):
        graph = build_graph(synthetic_records(6, seed=4))
        indptr, indices, weights = global_csr(graph)
        _, _, w = sample_neighbors_batch(indptr, indices, weights, sample_size,
                                         np.random.default_rng(2))
        assert (w > 0).all()


class TestInitialEmbeddings:
    def test_unit_norm(self):
        rows = initial_embeddings(5, 8, seed=0, salt=1)
        np.testing.assert_allclose(np.linalg.norm(rows, axis=1), 1.0, rtol=1e-9)

    def test_deterministic_per_identity(self):
        np.testing.assert_allclose(initial_embedding_row(8, 0, 1, 5),
                                   initial_embedding_row(8, 0, 1, 5))

    def test_different_identities_differ(self):
        a = initial_embedding_row(8, 0, 1, 5)
        b = initial_embedding_row(8, 0, 1, 6)
        c = initial_embedding_row(8, 0, 2, 5)
        assert not np.allclose(a, b)
        assert not np.allclose(a, c)

    def test_start_offset_consistency(self):
        # Appending nodes later reproduces exactly the same earlier rows.
        all_at_once = initial_embeddings(6, 4, seed=3, salt=0)
        incremental = np.vstack([initial_embeddings(3, 4, seed=3, salt=0),
                                 initial_embeddings(3, 4, seed=3, salt=0, start=3)])
        np.testing.assert_allclose(all_at_once, incremental)

    def test_negative_identity_supported(self):
        row = initial_embedding_row(8, 0, 1, -1)
        assert np.isfinite(row).all()
