"""Seed-determinism properties: equal seeds reproduce bit-identical
worlds and timelines; different seeds produce different ones.

Parametrized over every scenario builder in ``rf/scenarios.py`` (plus
the Table-II user worlds) and every registered dynamics schedule.
Reproducibility here is what makes every benchmark and drift trajectory
in the repo a pure function of its seed.
"""

import pytest

from repro.datasets.users import user_scenario
from repro.rf.dynamics import SCHEDULES, DynamicsTimeline, build_schedule
from repro.rf.scenarios import home_scenario, lab_scenario, multi_floor_building

SCENARIO_BUILDERS = {
    "home-attached": lambda seed: home_scenario(area_m2=50.0, seed=seed),
    "home-detached": lambda seed: home_scenario(area_m2=160.0, detached=True, seed=seed),
    "lab": lambda seed: lab_scenario(seed=seed, transient_aps=3),
    "multi-floor": lambda seed: multi_floor_building(num_floors=3, aps_per_floor=4,
                                                     geofence_floor=1, seed=seed),
    "user-world": lambda seed: user_scenario(3, seed=seed),
}

# Parameters that make every schedule visibly stochastic, so a seed
# change must show up in the fingerprint.
SCHEDULE_PARAMS = {
    "ap-churn": {"rate": 0.5},
    "churn-shock": {"epoch": 1, "fraction": 0.5},
    "tx-power-drift": {"sigma_db": 1.0},
    "mac-randomization": {"cohort_fraction": 0.5, "period": 1},
    "markov-onoff": {"p": 0.5, "q": 0.5},
    "transient-hotspots": {"max_active": 5},
    "device-gain-drift": {"sigma_db": 1.0},
}


def scenario_fingerprint(scenario) -> tuple:
    environment = scenario.environment
    return (
        scenario.name,
        scenario.area_m2,
        tuple((ap.ap_id, ap.position, ap.floor, ap.macs,
               tuple((r.mac, r.band, r.tx_power_dbm) for r in ap.radios))
              for ap in environment.aps),
        tuple((wall.segment.a, wall.segment.b, wall.material.name, wall.floor)
              for wall in environment.walls),
        environment.geofence_floors,
    )


def timeline_fingerprint(timeline) -> tuple:
    return tuple(
        (world.epoch, world.device_gain_db, world.events,
         tuple((ap.ap_id, ap.position, ap.floor, ap.macs,
                tuple(r.tx_power_dbm for r in ap.radios))
               for ap in world.environment.aps))
        for world in timeline)


@pytest.mark.parametrize("name", sorted(SCENARIO_BUILDERS))
class TestScenarioBuilders:
    def test_equal_seeds_bit_identical(self, name):
        build = SCENARIO_BUILDERS[name]
        assert scenario_fingerprint(build(7)) == scenario_fingerprint(build(7))

    def test_different_seeds_differ(self, name):
        build = SCENARIO_BUILDERS[name]
        assert scenario_fingerprint(build(7)) != scenario_fingerprint(build(8))


def make_timeline(schedule_name: str, seed: int) -> DynamicsTimeline:
    scenario = lab_scenario(seed=0, lab_aps=2, corridor_aps=2, building_aps=4)
    schedule = build_schedule(schedule_name, SCHEDULE_PARAMS[schedule_name])
    return DynamicsTimeline(scenario, [schedule], num_epochs=4, seed=seed)


@pytest.mark.parametrize("name", sorted(SCHEDULES))
class TestDynamicsSchedules:
    def test_equal_seeds_bit_identical(self, name):
        assert timeline_fingerprint(make_timeline(name, 5)) == \
               timeline_fingerprint(make_timeline(name, 5))

    def test_different_seeds_differ(self, name):
        assert timeline_fingerprint(make_timeline(name, 5)) != \
               timeline_fingerprint(make_timeline(name, 6))


def test_composed_timeline_deterministic():
    scenario = lab_scenario(seed=2, lab_aps=2, corridor_aps=2, building_aps=4)
    schedules = [build_schedule(name, SCHEDULE_PARAMS[name])
                 for name in sorted(SCHEDULES)]
    one = DynamicsTimeline(scenario, schedules, num_epochs=5, seed=11)
    two = DynamicsTimeline(
        lab_scenario(seed=2, lab_aps=2, corridor_aps=2, building_aps=4),
        schedules, num_epochs=5, seed=11)
    assert timeline_fingerprint(one) == timeline_fingerprint(two)
