"""Regenerate the golden decision fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/golden/regenerate.py

Each fixture is a seed-pinned JSONL of the decisions the **scalar**
reference path (``model.observe`` per record) produces for one arm on
the lab world.  ``tests/test_golden_decisions.py`` then asserts the
*vectorized* path reproduces the files byte-for-byte — so these files
are the frozen ground truth of the batch data plane, regenerated only
when the underlying model maths deliberately changes.

Scores are serialised with ``float.hex()``: bit-exact round-trips, no
repr-precision ambiguity.
"""

from __future__ import annotations

import json
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent

# One entry per fixture: (filename, arm name). "GEM" is the paper's
# tuned BiSAGE + enhanced-histogram system; "GEM(plain-HBOS)" is the
# same graph embedder over the plain histogram (no enhancement, no
# self-update) — together they cover both histogram decision surfaces.
FIXTURES = (
    ("gem_lab_decisions.jsonl", "GEM"),
    ("plain_hbos_lab_decisions.jsonl", "GEM(plain-HBOS)"),
)

SEED = 0
DIM = 8
STREAM_REPEATS = 2  # replay the test sessions twice: updates accumulate


def lab_stream():
    """The pinned lab-world experiment: training set + labeled stream."""
    from repro.datasets.synthetic import generate_dataset
    from repro.rf.scenarios import lab_scenario

    dataset = generate_dataset(lab_scenario(seed=SEED), seed=SEED,
                               train_duration_s=90.0, test_sessions=4,
                               session_duration_s=45.0)
    stream = [labeled.record for labeled in dataset.test] * STREAM_REPEATS
    return dataset.train, stream


def build_model(arm: str):
    from repro.core.config import GEMConfig
    from repro.embedding.bisage import BiSAGEConfig
    from repro.eval.algorithms import arm_spec
    from repro.pipeline import build_pipeline

    gem_config = GEMConfig(bisage=BiSAGEConfig(dim=DIM, epochs=2, seed=SEED),
                           batch_update_size=8)
    return build_pipeline(arm_spec(arm, seed=SEED, dim=DIM, gem_config=gem_config))


def decision_lines(decisions) -> str:
    lines = []
    for i, decision in enumerate(decisions):
        lines.append(json.dumps({
            "i": i,
            "inside": decision.inside,
            "score_hex": float(decision.score).hex(),
            "confident": decision.confident,
            "buffered": decision.buffered,
            "updated": decision.updated,
        }, sort_keys=True))
    return "\n".join(lines) + "\n"


def main() -> None:
    train, stream = lab_stream()
    for filename, arm in FIXTURES:
        model = build_model(arm)
        model.fit(train)
        decisions = [model.observe(record) for record in stream]
        path = GOLDEN_DIR / filename
        path.write_text(decision_lines(decisions))
        inside = sum(d.inside for d in decisions)
        print(f"wrote {path.name}: {len(decisions)} decisions "
              f"({inside} inside, arm={arm})")


if __name__ == "__main__":
    main()
