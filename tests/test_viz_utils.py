"""t-SNE and the utils package."""

import numpy as np
import pytest

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)
from repro.viz import tsne


class TestTsne:
    def test_output_shape(self):
        x = np.random.default_rng(0).standard_normal((30, 8))
        y = tsne(x, dim=2, iterations=50, seed=0)
        assert y.shape == (30, 2)
        assert np.isfinite(y).all()

    def test_separates_two_clusters(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((20, 6)) * 0.2
        b = rng.standard_normal((20, 6)) * 0.2 + 8.0
        y = tsne(np.vstack([a, b]), dim=2, iterations=250, seed=0)
        ya, yb = y[:20], y[20:]
        within = np.linalg.norm(ya - ya.mean(0), axis=1).mean()
        between = np.linalg.norm(ya.mean(0) - yb.mean(0))
        assert between > 2 * within

    def test_deterministic_with_seed(self):
        x = np.random.default_rng(2).standard_normal((12, 4))
        np.testing.assert_allclose(tsne(x, iterations=30, seed=3),
                                   tsne(x, iterations=30, seed=3))

    def test_output_is_centered(self):
        x = np.random.default_rng(3).standard_normal((15, 5))
        y = tsne(x, iterations=40, seed=0)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-9)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            tsne(np.zeros((2, 3)))

    def test_perplexity_clamped(self):
        # Requesting perplexity above (n-1)/3 must still work.
        x = np.random.default_rng(4).standard_normal((6, 3))
        assert tsne(x, perplexity=50.0, iterations=20, seed=0).shape == (6, 2)


class TestRngHelpers:
    def test_as_rng_from_int(self):
        a, b = as_rng(7), as_rng(7)
        assert a.random() == b.random()

    def test_as_rng_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_spawn_independent(self):
        children = spawn_rngs(0, 3)
        values = [c.random() for c in children]
        assert len(set(values)) == 3

    def test_spawn_deterministic(self):
        a = [r.random() for r in spawn_rngs(5, 2)]
        b = [r.random() for r in spawn_rngs(5, 2)]
        assert a == b

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert len(children) == 2

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestValidation:
    def test_check_positive(self):
        assert check_positive(2.0, "x") == 2.0
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_positive(float("nan"), "x")

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValueError):
            check_positive_int(0, "n")
        with pytest.raises(TypeError):
            check_positive_int(2.5, "n")
        with pytest.raises(TypeError):
            check_positive_int(True, "n")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
        with pytest.raises(ValueError):
            check_probability(1.1, "p")

    def test_check_in_range(self):
        assert check_in_range(5.0, "x", 0, 10) == 5.0
        with pytest.raises(ValueError):
            check_in_range(11.0, "x", 0, 10)

    def test_check_finite(self):
        out = check_finite([1.0, 2.0], "a")
        assert out.dtype == float
        with pytest.raises(ValueError):
            check_finite([np.inf], "a")
