"""Fig. 6 — node types separate in the learned embedding space.

The paper's t-SNE plot shows record nodes and MAC nodes forming distinct
clusters.  This test verifies the property directly in embedding space
(cosine separation between the type centroids), and via the 2-D t-SNE
projection the figure uses.
"""

import numpy as np

from repro.embedding import BiSAGE, BiSAGEConfig
from repro.graph import build_graph
from repro.viz import tsne

from conftest import synthetic_records


def _trained_model():
    records = synthetic_records(60, num_macs=12, seed=0)
    graph = build_graph(records)
    return BiSAGE(BiSAGEConfig(dim=16, epochs=4, seed=0)).fit(graph)


def test_record_and_mac_embeddings_separate():
    model = _trained_model()
    records = model.record_embeddings()
    macs = model.mac_embeddings()
    within_record = np.linalg.norm(records - records.mean(0), axis=1).mean()
    between = np.linalg.norm(records.mean(0) - macs.mean(0))
    assert between > 0.3 * within_record  # centroids clearly apart


def test_tsne_projection_separates_types():
    model = _trained_model()
    records = model.record_embeddings()
    macs = model.mac_embeddings()
    projected = tsne(np.vstack([records, macs]), dim=2, perplexity=12,
                     iterations=250, seed=0)
    proj_records = projected[: len(records)]
    proj_macs = projected[len(records):]
    # A trivial nearest-centroid classifier on the 2-D projection should
    # recover the node type far above chance.
    centroid_r = proj_records.mean(0)
    centroid_m = proj_macs.mean(0)
    correct = 0
    for point in proj_records:
        correct += np.linalg.norm(point - centroid_r) < np.linalg.norm(point - centroid_m)
    for point in proj_macs:
        correct += np.linalg.norm(point - centroid_m) < np.linalg.norm(point - centroid_r)
    accuracy = correct / (len(records) + len(macs))
    # Well above the 0.5 chance level (the small MAC population makes the
    # projection noisy; the paper's figure uses hundreds of nodes).
    assert accuracy > 0.6
