"""SignalRecord / LabeledRecord behaviour."""

import math

import pytest

from repro.core.records import LabeledRecord, SignalRecord, rss_bounds, unique_macs


class TestSignalRecord:
    def test_basic_construction(self):
        record = SignalRecord({"aa": -50.0, "bb": -70.0}, timestamp=3.0)
        assert len(record) == 2
        assert record.rss("aa") == -50.0
        assert record.timestamp == 3.0

    def test_readings_are_copied(self):
        source = {"aa": -50.0}
        record = SignalRecord(source)
        source["bb"] = -60.0
        assert "bb" not in record.readings

    def test_empty_record_allowed(self):
        assert len(SignalRecord({})) == 0

    def test_rejects_non_mapping(self):
        with pytest.raises(TypeError):
            SignalRecord([("aa", -50.0)])

    def test_rejects_empty_mac(self):
        with pytest.raises(ValueError):
            SignalRecord({"": -50.0})

    def test_rejects_non_string_mac(self):
        with pytest.raises(ValueError):
            SignalRecord({7: -50.0})

    def test_rejects_nan_rss(self):
        with pytest.raises(ValueError):
            SignalRecord({"aa": math.nan})

    def test_macs_frozenset(self):
        record = SignalRecord({"aa": -50.0, "bb": -60.0})
        assert record.macs == frozenset({"aa", "bb"})

    def test_strongest_mac(self):
        record = SignalRecord({"aa": -50.0, "bb": -40.0, "cc": -70.0})
        assert record.strongest_mac() == "bb"

    def test_strongest_mac_empty(self):
        assert SignalRecord({}).strongest_mac() is None

    def test_restricted_to(self):
        record = SignalRecord({"aa": -50.0, "bb": -60.0}, timestamp=1.0)
        kept = record.restricted_to(["aa", "zz"])
        assert kept.macs == frozenset({"aa"})
        assert kept.timestamp == 1.0

    def test_without(self):
        record = SignalRecord({"aa": -50.0, "bb": -60.0})
        assert record.without({"aa"}).macs == frozenset({"bb"})

    def test_without_preserves_position(self):
        record = SignalRecord({"aa": -50.0}, position=(1.0, 2.0, 0))
        assert record.without({"zz"}).position == (1.0, 2.0, 0)


class TestHelpers:
    def test_unique_macs(self):
        records = [SignalRecord({"aa": -50.0}), SignalRecord({"aa": -51.0, "bb": -60.0})]
        assert unique_macs(records) == {"aa", "bb"}

    def test_unique_macs_empty(self):
        assert unique_macs([]) == set()

    def test_rss_bounds(self):
        records = [SignalRecord({"aa": -50.0}), SignalRecord({"bb": -90.0})]
        assert rss_bounds(records) == (-90.0, -50.0)

    def test_rss_bounds_empty_raises(self):
        with pytest.raises(ValueError):
            rss_bounds([SignalRecord({})])

    def test_labeled_record(self):
        item = LabeledRecord(SignalRecord({"aa": -40.0}), inside=True, meta={"s": 1})
        assert item.inside
        assert item.meta["s"] == 1
