"""SignatureHome and INOA baselines."""

import numpy as np
import pytest

from repro.baselines import INOA, SignatureHome
from repro.core.records import SignalRecord

from conftest import synthetic_records


def home_records(n=40, seed=0):
    """Records with one dominant 'home' AP plus weaker ambient MACs."""
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n):
        readings = {"home-ap": float(-45 + rng.normal(0, 2))}
        for m in range(5):
            readings[f"ambient{m}"] = float(-70 - 4 * m + rng.normal(0, 2))
        records.append(SignalRecord(readings))
    return records


class TestSignatureHome:
    def test_fit_builds_signature(self):
        model = SignatureHome().fit(home_records())
        assert "home-ap" in model.signature
        assert "home-ap" in model.association_set

    def test_association_set_excludes_weak_macs(self):
        model = SignatureHome().fit(home_records())
        assert "ambient4" not in model.association_set

    def test_inside_record_accepted(self):
        model = SignatureHome().fit(home_records())
        assert model.predict(home_records(1, seed=9)[0])

    def test_unknown_world_rejected(self):
        model = SignatureHome().fit(home_records())
        faraway = SignalRecord({"other1": -50.0, "other2": -60.0})
        assert not model.predict(faraway)

    def test_sticky_association_near_boundary(self):
        # Home AP heard above the floor but fewer overlapping MACs: the
        # association keeps the score up (the boundary failure mode).
        model = SignatureHome().fit(home_records())
        boundary = SignalRecord({"home-ap": -60.0, "stranger1": -55.0,
                                 "stranger2": -50.0, "ambient0": -75.0})
        score = model.inside_score(boundary)
        assert score >= 0.5  # association hit dominates

    def test_association_lost_when_weak(self):
        model = SignatureHome().fit(home_records())
        away = SignalRecord({"home-ap": -90.0, "stranger1": -50.0})
        assert model.inside_score(away) < 0.75

    def test_empty_record_scores_zero(self):
        model = SignatureHome().fit(home_records())
        assert model.inside_score(SignalRecord({})) == 0.0

    def test_observe_interface(self):
        model = SignatureHome().fit(home_records())
        decision = model.observe(home_records(1, seed=3)[0])
        assert decision.inside
        assert 0.0 <= decision.score <= 1.0

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SignatureHome().inside_score(SignalRecord({"a": -50.0}))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            SignatureHome().fit([])

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            SignatureHome(association_weight=0.7, overlap_weight=0.5)


class TestINOA:
    def test_fit_builds_pair_learners(self):
        model = INOA(min_support=3).fit(home_records())
        assert model.num_learners > 0

    def test_min_support_filters_rare_pairs(self):
        records = home_records(10)
        records.append(SignalRecord({"rare1": -50.0, "rare2": -60.0}))
        model = INOA(min_support=3).fit(records)
        assert ("rare1", "rare2") not in model._learners

    def test_inside_record_low_score(self):
        model = INOA().fit(home_records())
        assert model.outlier_score(home_records(1, seed=11)[0]) < 0.4

    def test_shifted_rss_high_score(self):
        model = INOA().fit(home_records())
        shifted = SignalRecord({"home-ap": -85.0, "ambient0": -40.0,
                                "ambient1": -45.0})
        assert model.outlier_score(shifted) > 0.5

    def test_unseen_pairs_vote_outlier(self):
        model = INOA().fit(home_records())
        stranger = SignalRecord({"x1": -50.0, "x2": -55.0, "x3": -60.0})
        assert model.outlier_score(stranger) == 1.0

    def test_single_reading_is_outlier(self):
        model = INOA().fit(home_records())
        assert model.outlier_score(SignalRecord({"home-ap": -50.0})) == 1.0

    def test_predict_and_observe_agree(self):
        model = INOA().fit(home_records())
        record = home_records(1, seed=12)[0]
        assert model.predict(record) == model.observe(record).inside

    def test_self_calibration(self):
        model = INOA(threshold=None).fit(home_records())
        assert model.threshold is not None
        assert 0.0 < model.threshold <= 1.0

    def test_fixed_threshold_preserved(self):
        model = INOA(threshold=0.5).fit(home_records())
        assert model.threshold == 0.5

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            INOA().outlier_score(SignalRecord({"a": -50.0, "b": -60.0}))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            INOA().fit([])

    def test_radius_floor_prevents_degenerate_spheres(self):
        # Identical training points would give radius 0 without the floor.
        records = [SignalRecord({"a": -50.0, "b": -60.0}) for _ in range(5)]
        model = INOA(min_support=3).fit(records)
        jittered = SignalRecord({"a": -50.5, "b": -60.5})
        assert model.outlier_score(jittered) == 0.0
