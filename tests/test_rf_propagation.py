"""Propagation model: path loss, walls, floors, shadowing, drift, fading."""

import numpy as np
import pytest

from repro.rf.geometry import Segment
from repro.rf.materials import BRICK, DRYWALL, FLOOR_SLAB, Material
from repro.rf.propagation import BandParams, PropagationConfig, PropagationModel, Wall


def model_with_wall():
    wall = Wall(Segment((5.0, -10.0), (5.0, 10.0)), BRICK, floor=0)
    return PropagationModel([wall], PropagationConfig(seed=1))


def free_space():
    return PropagationModel([], PropagationConfig(seed=1, shadowing_sigma_db=0.0,
                                                  drift_sigma_db=0.0))


class TestMaterials:
    def test_five_ghz_attenuates_more(self):
        for material in (DRYWALL, BRICK, FLOOR_SLAB):
            assert material.attenuation("5") > material.attenuation("2.4")

    def test_unknown_band_rejected(self):
        with pytest.raises(ValueError):
            BRICK.attenuation("60")

    def test_negative_attenuation_rejected(self):
        with pytest.raises(ValueError):
            Material("bad", -1.0, 2.0)


class TestPathLoss:
    def test_monotone_in_distance(self):
        params = BandParams(reference_loss_db=40.0, path_loss_exponent=2.7)
        losses = [params.path_loss(d) for d in (1, 2, 5, 10, 50)]
        assert losses == sorted(losses)

    def test_near_field_clamped(self):
        params = BandParams(reference_loss_db=40.0, path_loss_exponent=2.7)
        assert params.path_loss(0.01) == params.path_loss(0.4)

    def test_rss_decays_with_distance(self):
        model = free_space()
        rss_close = model.mean_rss(17.0, "m", "2.4", (0, 0), 0, (2, 0), 0)
        rss_far = model.mean_rss(17.0, "m", "2.4", (0, 0), 0, (30, 0), 0)
        assert rss_close > rss_far

    def test_five_ghz_weaker_at_same_spot(self):
        model = free_space()
        rss24 = model.mean_rss(17.0, "m", "2.4", (0, 0), 0, (10, 0), 0)
        rss5 = model.mean_rss(17.0, "m", "5", (0, 0), 0, (10, 0), 0)
        assert rss24 > rss5


class TestObstruction:
    def test_wall_crossing_attenuates(self):
        model = model_with_wall()
        blocked = model.wall_loss((0, 0), (10, 0), floor=0, band="2.4")
        assert blocked == pytest.approx(BRICK.attenuation_db_24)

    def test_no_crossing_no_loss(self):
        model = model_with_wall()
        assert model.wall_loss((0, 0), (4, 0), floor=0, band="2.4") == 0.0

    def test_other_floor_walls_ignored(self):
        model = model_with_wall()
        assert model.wall_loss((0, 0), (10, 0), floor=1, band="2.4") == 0.0

    def test_floor_loss_scales_with_floors(self):
        model = free_space()
        one = model.floor_loss(0, 1, "2.4")
        two = model.floor_loss(0, 2, "2.4")
        assert two == pytest.approx(2 * one)
        assert one == pytest.approx(FLOOR_SLAB.attenuation_db_24)

    def test_cross_floor_rss_weaker(self):
        model = free_space()
        same = model.mean_rss(17.0, "m", "2.4", (0, 0), 0, (5, 0), 0)
        other = model.mean_rss(17.0, "m", "2.4", (0, 0), 1, (5, 0), 0)
        assert same > other


class TestShadowingAndDrift:
    def test_shadowing_deterministic(self):
        a = model_with_wall().mean_rss(17.0, "m", "2.4", (0, 0), 0, (3, 3), 0)
        b = model_with_wall().mean_rss(17.0, "m", "2.4", (0, 0), 0, (3, 3), 0)
        assert a == b

    def test_shadowing_spatially_smooth(self):
        model = PropagationModel([], PropagationConfig(seed=3, fading_sigma_db=0.0,
                                                       drift_sigma_db=0.0))
        base = model._shadowing("m", 0, (10.0, 10.0))
        near = model._shadowing("m", 0, (10.5, 10.0))
        far = model._shadowing("m", 0, (60.0, 60.0))
        assert abs(near - base) < 1.5  # within a grid cell: nearly equal
        # Deterministic values exist everywhere.
        assert np.isfinite(far)

    def test_different_macs_different_fields(self):
        model = PropagationModel([], PropagationConfig(seed=3))
        values = {model._shadowing(f"mac{i}", 0, (5.0, 5.0)) for i in range(8)}
        assert len(values) > 1

    def test_drift_zero_when_disabled(self):
        model = PropagationModel([], PropagationConfig(drift_sigma_db=0.0))
        assert model.temporal_drift("m", 1234.0) == 0.0

    def test_drift_continuous_in_time(self):
        model = PropagationModel([], PropagationConfig(seed=5))
        a = model.temporal_drift("m", 100.0)
        b = model.temporal_drift("m", 101.0)
        assert abs(a - b) < 0.5

    def test_drift_decorrelates_over_hours(self):
        model = PropagationModel([], PropagationConfig(seed=5))
        diffs = [abs(model.temporal_drift(f"mac{i}", 0.0)
                     - model.temporal_drift(f"mac{i}", 7200.0)) for i in range(20)]
        assert max(diffs) > 1.0


class TestSampling:
    def test_sample_adds_noise(self):
        model = model_with_wall()
        rng = np.random.default_rng(0)
        samples = [model.sample_rss(17.0, "m", "2.4", (0, 0), 0, (3, 3), 0, rng)
                   for _ in range(20)]
        assert np.std(samples) > 0.1

    def test_crowd_penalty_lowers_rss(self):
        model = free_space()
        rng = np.random.default_rng(0)
        quiet = model.sample_rss(17.0, "m", "2.4", (0, 0), 0, (3, 3), 0,
                                 np.random.default_rng(1))
        busy = model.sample_rss(17.0, "m", "2.4", (0, 0), 0, (3, 3), 0,
                                np.random.default_rng(1), crowd_penalty_db=10.0)
        assert busy == pytest.approx(quiet - 10.0)

    def test_unknown_band_rejected(self):
        with pytest.raises(ValueError):
            free_space().mean_rss(17.0, "m", "60", (0, 0), 0, (1, 0), 0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PropagationConfig(shadowing_sigma_db=-1.0)
        with pytest.raises(ValueError):
            PropagationConfig(deep_fade_probability=1.5)
        with pytest.raises(ValueError):
            PropagationConfig(drift_block_s=0.0)
