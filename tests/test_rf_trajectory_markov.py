"""Trajectories and the ON-OFF Markov model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SignalRecord
from repro.rf.geometry import Rect
from repro.rf.markov import OnOffMarkov, apply_ap_onoff, markov_entropy_rate
from repro.rf.trajectory import linear_walk, perimeter_walk, random_waypoint_walk


class TestTrajectories:
    def test_perimeter_walk_stays_inside(self):
        region = Rect(0, 0, 10, 8)
        poses = perimeter_walk(region, speed=0.8, laps=2)
        assert len(poses) > 10
        assert all(region.contains(p.position) for p in poses)

    def test_perimeter_walk_time_monotone(self):
        poses = perimeter_walk(Rect(0, 0, 10, 8), speed=1.0, laps=1)
        times = [p.time for p in poses]
        assert times == sorted(times)
        assert times[1] - times[0] == pytest.approx(1.0)

    def test_speed_scales_spacing(self):
        region = Rect(0, 0, 20, 20)
        slow = perimeter_walk(region, speed=0.4, laps=1)
        fast = perimeter_walk(region, speed=1.2, laps=1)
        assert len(slow) > len(fast)

    def test_floor_and_start_time_propagate(self):
        poses = perimeter_walk(Rect(0, 0, 5, 5), floor=3, start_time=100.0)
        assert all(p.floor == 3 for p in poses)
        assert poses[0].time == 100.0

    def test_random_waypoint_duration(self):
        region = Rect(0, 0, 10, 10)
        poses = random_waypoint_walk(region, duration=60.0, rng=0)
        assert poses[-1].time <= 60.0 + 1.0
        assert all(region.contains(p.position) for p in poses)

    def test_random_waypoint_moves(self):
        poses = random_waypoint_walk(Rect(0, 0, 10, 10), duration=60.0, rng=0,
                                     pause_probability=0.0)
        positions = {tuple(np.round(p.position, 3)) for p in poses}
        assert len(positions) > 10

    def test_linear_walk_endpoints(self):
        poses = linear_walk((0, 0), (10, 0), speed=1.0)
        assert poses[0].position == (0.0, 0.0)
        assert poses[-1].position[0] <= 10.0
        assert len(poses) == 11

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            perimeter_walk(Rect(0, 0, 5, 5), speed=0.0)


class TestOnOffMarkov:
    def test_stationary_probability(self):
        chain = OnOffMarkov(p=0.2, q=0.8)
        assert chain.stationary_on_probability() == pytest.approx(0.8)

    def test_degenerate_chain_stays_on(self):
        chain = OnOffMarkov(p=0.0, q=0.0)
        assert chain.stationary_on_probability() == 1.0
        assert all(chain.simulate(20, rng=0))

    def test_simulation_length(self):
        assert len(OnOffMarkov(0.5, 0.5).simulate(37, rng=0)) == 37

    def test_empirical_stationary(self):
        chain = OnOffMarkov(p=0.3, q=0.6)
        states = chain.simulate(20000, rng=0)
        assert np.mean(states) == pytest.approx(chain.stationary_on_probability(), abs=0.03)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            OnOffMarkov(p=1.5, q=0.5)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.01, 0.99), st.floats(0.01, 0.99))
    def test_property_entropy_rate_bounds(self, p, q):
        rate = markov_entropy_rate(p, q)
        assert 0.0 <= rate <= 1.0

    def test_entropy_rate_peaks_at_half(self):
        center = markov_entropy_rate(0.5, 0.5)
        for p, q in [(0.1, 0.1), (0.9, 0.9), (0.1, 0.9)]:
            assert center >= markov_entropy_rate(p, q)


class TestApplyOnOff:
    def _records(self, n=90):
        return [SignalRecord({"a": -50.0, "b": -60.0, "c": -70.0}, timestamp=float(i))
                for i in range(n)]

    def test_off_removes_in_blocks(self):
        out = apply_ap_onoff(self._records(), p=0.9, q=0.1, period=30, rng=0)
        assert len(out) == 90
        # Within one 30-sample block, presence of each mac is constant.
        for block in range(3):
            macs = {out[block * 30].macs}
            for record in out[block * 30:(block + 1) * 30]:
                assert record.macs == out[block * 30].macs

    def test_p_zero_keeps_everything(self):
        records = self._records(60)
        out = apply_ap_onoff(records, p=0.0, q=1.0, period=30, rng=0)
        assert all(a.macs == b.macs for a, b in zip(records, out))

    def test_restricted_mac_list(self):
        out = apply_ap_onoff(self._records(60), p=1.0, q=0.0, period=30, rng=0,
                             macs=["a"])
        # Only 'a' can disappear; b and c always survive.
        assert all({"b", "c"} <= record.macs for record in out)

    def test_empty_stream(self):
        assert apply_ap_onoff([], p=0.5, q=0.5) == []

    def test_timestamps_preserved(self):
        records = self._records(30)
        out = apply_ap_onoff(records, p=0.5, q=0.5, period=10, rng=0)
        assert [r.timestamp for r in out] == [r.timestamp for r in records]

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            apply_ap_onoff(self._records(10), p=0.5, q=0.5, period=0)
