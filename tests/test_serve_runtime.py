"""ServingRuntime: sharding, bit-identity, scheduler-driven maintenance."""

import time

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.serve import (GeofenceFleet, MaintenancePolicy, MaintenanceScheduler,
                         ServingRuntime, shard_index)
from repro.serve.checkpoint import flatten_state, load_state

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def tenant_records(tenant: int, n: int = 25, seed_offset: int = 0):
    return synthetic_records(n, num_macs=10, seed=tenant + seed_offset,
                             center=2.0 + tenant)


TENANTS = [f"tenant-{i}" for i in range(5)]


def provision_all(target) -> None:
    for index, tenant in enumerate(TENANTS):
        target.provision(tenant, tenant_records(index))


def interleaved_stream(n: int = 60):
    mixed = synthetic_records(n, num_macs=10, seed=321)
    return [(TENANTS[i % len(TENANTS)], record) for i, record in enumerate(mixed)]


class TestRouting:
    def test_partition_is_stable_and_total(self):
        for tenant in TENANTS:
            index = shard_index(tenant, 4)
            assert 0 <= index < 4
            assert shard_index(tenant, 4) == index  # no per-process salt

    def test_single_shard_routes_everything_to_shard_zero(self, tmp_path):
        runtime = ServingRuntime(tmp_path / "m", num_shards=1,
                                 scheduler_interval=None)
        assert all(runtime.shard_for(t) is runtime.shards[0] for t in TENANTS)
        runtime.close()

    def test_tenants_land_on_their_hash_shard(self, tmp_path):
        with ServingRuntime(tmp_path / "m", num_shards=3, capacity=8,
                            model_factory=make_gem,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            for index, tenant in enumerate(TENANTS):
                shard = runtime.shards[shard_index(tenant, 3)]
                assert tenant in shard.resident_tenants

    def test_bad_shard_count_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="num_shards"):
            ServingRuntime(tmp_path / "m", num_shards=0)


class TestSerialBitIdentity:
    """The determinism contract: single-shard serial == bare fleet."""

    def test_decisions_and_checkpoints_match_plain_fleet(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "fleet", capacity=2,
                              model_factory=make_gem)
        runtime = ServingRuntime(tmp_path / "runtime", num_shards=1, capacity=2,
                                 model_factory=make_gem, incremental=False,
                                 scheduler_interval=None)
        provision_all(fleet)
        provision_all(runtime)
        stream = interleaved_stream()
        fleet_decisions = [fleet.observe(t, r) for t, r in stream]
        runtime_decisions = [runtime.observe(t, r) for t, r in stream]
        assert runtime_decisions == fleet_decisions
        fleet.close()
        runtime.close()
        for tenant in TENANTS:
            state_a, _ = load_state(tmp_path / "fleet" / tenant)
            state_b, _ = load_state(tmp_path / "runtime" / tenant)
            arrays_a, leaves_a = flatten_state(state_a)
            arrays_b, leaves_b = flatten_state(state_b)
            assert set(arrays_a) == set(arrays_b)
            assert all(np.array_equal(arrays_a[k], arrays_b[k]) for k in arrays_a)
            assert leaves_a == leaves_b

    def test_incremental_layout_reconstructs_identical_state(self, tmp_path):
        plain = ServingRuntime(tmp_path / "plain", num_shards=1, capacity=2,
                               model_factory=make_gem, incremental=False,
                               scheduler_interval=None)
        delta = ServingRuntime(tmp_path / "delta", num_shards=1, capacity=2,
                               model_factory=make_gem, incremental=True,
                               scheduler_interval=None)
        provision_all(plain)
        provision_all(delta)
        for tenant, record in interleaved_stream():
            assert plain.observe(tenant, record) == delta.observe(tenant, record)
        plain.close()
        delta.close()
        for tenant in TENANTS:
            state_a, _ = load_state(tmp_path / "plain" / tenant)
            state_b, _ = load_state(tmp_path / "delta" / tenant)
            arrays_a, _ = flatten_state(state_a)
            arrays_b, _ = flatten_state(state_b)
            assert all(np.array_equal(arrays_a[k], arrays_b[k]) for k in arrays_a)

    def test_observe_many_matches_fleet_batching(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "fleet", capacity=2,
                              model_factory=make_gem)
        runtime = ServingRuntime(tmp_path / "runtime", num_shards=1, capacity=2,
                                 model_factory=make_gem, incremental=False,
                                 scheduler_interval=None)
        provision_all(fleet)
        provision_all(runtime)
        batch = interleaved_stream(30)
        assert runtime.observe_many(batch) == fleet.observe_many(batch)
        fleet.close()
        runtime.close()


class TestShardedServing:
    def test_observe_many_reassembles_input_order(self, tmp_path):
        serial = ServingRuntime(tmp_path / "serial", num_shards=1, capacity=8,
                                model_factory=make_gem, scheduler_interval=None)
        sharded = ServingRuntime(tmp_path / "sharded", num_shards=3, capacity=8,
                                 model_factory=make_gem, scheduler_interval=None)
        provision_all(serial)
        provision_all(sharded)
        batch = interleaved_stream(40)
        assert sharded.observe_many(batch) == serial.observe_many(batch)
        serial.close()
        sharded.close()

    def test_telemetry_aggregates_across_shards(self, tmp_path):
        with ServingRuntime(tmp_path / "m", num_shards=3, capacity=8,
                            model_factory=make_gem,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            stream = interleaved_stream(45)
            for tenant, record in stream:
                runtime.observe(tenant, record)
            totals = runtime.telemetry_totals()
            assert totals.observations == len(stream)
            snapshot = runtime.telemetry_snapshot()
            assert sorted(snapshot["tenants"]) == sorted(TENANTS)
            assert snapshot["totals"]["observations"] == len(stream)

    def test_score_and_dirty_and_flush_route(self, tmp_path):
        with ServingRuntime(tmp_path / "m", num_shards=2, capacity=8,
                            model_factory=make_gem,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            record = tenant_records(0, n=1, seed_offset=7)[0]
            assert np.isfinite(runtime.score(TENANTS[0], record)) \
                or runtime.score(TENANTS[0], record) == float("inf")
            runtime.observe(TENANTS[0], record)
            assert runtime.is_dirty(TENANTS[0])
            assert runtime.flush() >= 1
            assert not runtime.is_dirty(TENANTS[0])
            assert runtime.evict(TENANTS[0])
            assert TENANTS[0] not in runtime.resident_tenants


class TestMaintenance:
    def test_serial_maintain_pumps_controller(self, tmp_path):
        policy = MaintenancePolicy(check_every=5, refresh_every=10)
        with ServingRuntime(tmp_path / "m", num_shards=2, capacity=8,
                            model_factory=make_gem, policy=policy,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            for tenant, record in interleaved_stream(80):
                runtime.observe(tenant, record)
            pending = sum(s.pending_decisions for s in runtime.shards)
            assert pending == 80
            drained = runtime.maintain()
            assert drained == 80
            assert any(action == "refresh"
                       for _, action in runtime.maintenance_actions())
            assert runtime.telemetry_totals().refreshes > 0

    def test_background_scheduler_refreshes_off_the_observe_path(self, tmp_path):
        policy = MaintenancePolicy(check_every=5, refresh_every=10)
        with ServingRuntime(tmp_path / "m", num_shards=2, capacity=8,
                            model_factory=make_gem, policy=policy,
                            scheduler_interval=0.01) as runtime:
            provision_all(runtime)
            for tenant, record in interleaved_stream(80):
                runtime.observe(tenant, record)
            deadline = time.monotonic() + 10.0
            while (runtime.telemetry_totals().refreshes == 0
                   and time.monotonic() < deadline):
                time.sleep(0.02)
            assert runtime.telemetry_totals().refreshes > 0
            assert runtime.scheduler.running
        # close() stopped the worker and drained the queues.
        assert not runtime.scheduler.running
        assert all(shard.pending_decisions == 0 for shard in runtime.shards)
        stats = runtime.scheduler.stats()
        assert stats["decisions_drained"] == 80
        assert stats["errors"] == 0

    def test_maintain_refuses_to_race_the_scheduler(self, tmp_path):
        with ServingRuntime(tmp_path / "m", num_shards=1,
                            model_factory=make_gem,
                            policy=MaintenancePolicy(check_every=4),
                            scheduler_interval=0.05) as runtime:
            with pytest.raises(RuntimeError, match="race"):
                runtime.maintain()

    def test_noop_runtime_does_not_accumulate_decisions(self, tmp_path):
        with ServingRuntime(tmp_path / "m", num_shards=1, capacity=8,
                            model_factory=make_gem,
                            scheduler_interval=None) as runtime:
            provision_all(runtime)
            for tenant, record in interleaved_stream(30):
                runtime.observe(tenant, record)
            # No policy, no scheduler: tracking is off, nothing queues.
            assert all(shard.pending_decisions == 0 for shard in runtime.shards)

    def test_unstarted_background_runtime_does_not_queue(self, tmp_path):
        """Constructing a daemon without start()ing it must not leak
        decisions into queues nothing will ever pump; start() arms the
        bus (spec-block policies need it even without a default policy)."""
        runtime = ServingRuntime(tmp_path / "m", num_shards=1, capacity=8,
                                 model_factory=make_gem,
                                 scheduler_interval=0.05)
        provision_all(runtime)
        for tenant, record in interleaved_stream(20):
            runtime.observe(tenant, record)
        assert all(shard.pending_decisions == 0 for shard in runtime.shards)
        assert not any(shard.track_decisions for shard in runtime.shards)
        runtime.start()
        assert all(shard.track_decisions for shard in runtime.shards)
        runtime.close()


class TestScheduler:
    def test_start_stop_idempotent_and_stats(self, tmp_path):
        runtime = ServingRuntime(tmp_path / "m", num_shards=1,
                                 model_factory=make_gem,
                                 policy=MaintenancePolicy(check_every=4),
                                 scheduler_interval=0.01)
        scheduler = runtime.scheduler
        assert isinstance(scheduler, MaintenanceScheduler)
        scheduler.start()
        scheduler.start()  # idempotent
        assert scheduler.running
        scheduler.stop()
        assert not scheduler.running
        stats = scheduler.stats()
        assert stats["ticks"] >= 1
        runtime.close()

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="interval"):
            MaintenanceScheduler([], interval=0.0)
        with pytest.raises(ValueError, match="sweep_every"):
            MaintenanceScheduler([], interval=0.1, sweep_every=-1)

    def test_errors_are_contained_and_bounded(self, tmp_path):
        class ExplodingShard:
            index = 0
            pending_decisions = 0

            def pump(self):
                raise RuntimeError("boom")

            def sweep(self):  # pragma: no cover - pump already raised
                return {}

        scheduler = MaintenanceScheduler([ExplodingShard()], interval=0.01)
        for _ in range(3):
            scheduler.tick()
        assert len(scheduler.errors) == 3
        assert "boom" in scheduler.errors[0][1]
        assert scheduler.stats()["errors"] == 3
