"""Cluster observability: snapshot merging, health rollup, trace stitching."""

import random
import shutil
import threading

import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.obs import (
    MetricsRegistry,
    Tracer,
    merged_family,
    merged_histogram,
    snapshot_to_json,
)
from repro.obs.cluster import (
    ClusterHealthMonitor,
    cluster_families,
    gauge_merge_mode,
    merge_worker_snapshots,
    stitch_traces,
)
from repro.serve import ServingRuntime
from repro.serve.cluster import Router, spawn_local_worker

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))
TENANTS = [f"tenant-{i}" for i in range(4)]


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def tenant_records(tenant: int, n: int = 25):
    return synthetic_records(n, num_macs=10, seed=tenant, center=2.0 + tenant)


def interleaved_stream(n: int = 40):
    mixed = synthetic_records(n, num_macs=10, seed=321)
    return [(TENANTS[i % len(TENANTS)], record) for i, record in enumerate(mixed)]


@pytest.fixture(scope="module")
def seed_registry(tmp_path_factory):
    root = tmp_path_factory.mktemp("obs-cluster-seed") / "registry"
    with ServingRuntime(root, num_shards=1, model_factory=make_gem,
                        scheduler_interval=None) as runtime:
        for index, tenant in enumerate(TENANTS):
            runtime.provision(tenant, tenant_records(index))
    return root


def fresh_copy(seed_registry, tmp_path, name: str):
    target = tmp_path / name
    shutil.copytree(seed_registry, target)
    return target


def local_router(root, **kwargs) -> Router:
    kwargs.setdefault("launcher", spawn_local_worker)
    kwargs.setdefault("num_workers", 3)
    return Router(root, **kwargs)


# ----------------------------------------------------------------------
# Helpers: build snapshot-form families without a live registry.
# ----------------------------------------------------------------------
def counter_family(values: dict[str, float], label: str = "shard") -> dict:
    return {"type": "counter", "help": "t", "labels": [label],
            "series": [{"labels": {label: key}, "value": value}
                       for key, value in sorted(values.items())]}


def gauge_family(values: dict[str, float], label: str = "shard") -> dict:
    family = counter_family(values, label)
    family["type"] = "gauge"
    return family


def registry_with_histogram(samples, bounds=(0.01, 0.1, 1.0)):
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_seconds", help="t",
                                   labels=("shard",), buckets=bounds)
    for shard, value in samples:
        histogram.labels(shard=shard).observe(value)
    return registry.snapshot()["repro_test_seconds"]


# ----------------------------------------------------------------------
# merged_family / merge_worker_snapshots edge cases (satellite)
# ----------------------------------------------------------------------
class TestMergedFamily:
    def test_empty_worker_set_raises(self):
        with pytest.raises(ValueError, match="empty worker set"):
            merged_family([])
        with pytest.raises(ValueError, match="empty worker set"):
            merge_worker_snapshots([])

    def test_bad_gauge_mode_rejected(self):
        with pytest.raises(ValueError, match="gauge_mode"):
            merged_family([gauge_family({"0": 1.0})], gauge_mode="median")

    def test_mismatched_shape_rejected(self):
        counter = counter_family({"0": 1.0})
        with pytest.raises(ValueError, match="mismatched shape"):
            merged_family([counter, gauge_family({"0": 1.0})])
        with pytest.raises(ValueError, match="mismatched shape"):
            merged_family([counter, counter_family({"0": 1.0}, label="op")])

    def test_one_worker_merge_is_byte_for_byte(self):
        # A one-worker cluster's merged export must be exactly that
        # worker's snapshot — canonical JSON equality, not approx.
        registry = MetricsRegistry()
        counter = registry.counter("repro_test_total", help="t",
                                   labels=("shard",))
        counter.labels(shard="0").inc(3)
        histogram = registry.histogram("repro_test_seconds", help="t",
                                       labels=("op",))
        histogram.labels(op="observe").observe(0.25)
        snapshot = registry.snapshot()
        merged = merge_worker_snapshots([snapshot])
        assert snapshot_to_json(merged) == snapshot_to_json(snapshot)

    def test_disjoint_label_children_union(self):
        # Workers number their own shards; a shard only worker 1 served
        # passes through untouched while shared keys sum.
        merged = merged_family([counter_family({"0": 2.0}),
                                counter_family({"0": 3.0, "1": 7.0})])
        series = {entry["labels"]["shard"]: entry["value"]
                  for entry in merged["series"]}
        assert series == {"0": 5.0, "1": 7.0}
        assert [e["labels"]["shard"] for e in merged["series"]] == ["0", "1"]

    def test_counter_totals_are_exact_sums(self):
        # Property: for any worker partition of the same event stream,
        # merged totals equal the per-key sums exactly.
        rng = random.Random(7)
        workers = []
        expected: dict[str, float] = {}
        for _ in range(5):
            values = {str(key): float(rng.randint(0, 100))
                      for key in range(rng.randint(1, 4))}
            workers.append(counter_family(values))
            for key, value in values.items():
                expected[key] = expected.get(key, 0.0) + value
        merged = merged_family(workers)
        assert {entry["labels"]["shard"]: entry["value"]
                for entry in merged["series"]} == expected

    def test_histograms_fold_through_merged_histogram(self):
        rng = random.Random(11)
        parts = [[("0", rng.uniform(0.001, 2.0)) for _ in range(20)]
                 for _ in range(3)]
        families = [registry_with_histogram(part) for part in parts]
        merged = merged_family(families)
        whole = registry_with_histogram([s for part in parts for s in part])
        (entry,), (direct,) = merged["series"], whole["series"]
        # Counts and cumulative buckets are integers: exact.  The sum
        # differs from single-stream order only by float associativity.
        assert (entry["count"], entry["buckets"]) == (
            direct["count"], direct["buckets"])
        assert entry["sum"] == pytest.approx(direct["sum"])
        expected = merged_histogram([f["series"][0] for f in families])
        assert (entry["count"], entry["buckets"], entry["sum"]) == (
            expected["count"], expected["buckets"], expected["sum"])

    def test_gauge_modes(self):
        parts = [gauge_family({"0": 3.0, "1": 1.0}), gauge_family({"0": 2.0})]
        total = merged_family(parts, gauge_mode="sum")
        worst = merged_family(parts, gauge_mode="max")
        assert [e["value"] for e in total["series"]] == [5.0, 1.0]
        assert [e["value"] for e in worst["series"]] == [3.0, 1.0]

    def test_gauge_merge_mode_rules(self):
        assert gauge_merge_mode("repro_tenants_resident") == "sum"
        assert gauge_merge_mode("repro_health_value") == "max"
        assert gauge_merge_mode("repro_scheduler_last_cycle_age_seconds") == "max"
        assert gauge_merge_mode("repro_replication_lag_seconds") == "max"

    def test_merge_worker_snapshots_union_of_families(self):
        merged = merge_worker_snapshots([
            {"repro_a_total": counter_family({"0": 1.0})},
            {"repro_a_total": counter_family({"0": 2.0}),
             "repro_b_total": counter_family({"0": 9.0})},
        ])
        assert sorted(merged) == ["repro_a_total", "repro_b_total"]
        assert merged["repro_a_total"]["series"][0]["value"] == 3.0
        assert merged["repro_b_total"]["series"][0]["value"] == 9.0


class TestClusterFamilies:
    def test_worker_label_added_alongside_aggregate(self):
        out = cluster_families(
            {"repro_router_requests_total": counter_family({"observe": 5.0},
                                                           label="op")},
            {0: {"repro_decisions_total": counter_family({"0": 2.0})},
             1: {"repro_decisions_total": counter_family({"0": 3.0})}})
        family = out["repro_decisions_total"]
        assert family["labels"] == ["shard", "worker"]
        rows = {tuple(sorted(e["labels"].items())): e["value"]
                for e in family["series"]}
        assert rows[(("shard", "0"),)] == 5.0                    # aggregate
        assert rows[(("shard", "0"), ("worker", "0"))] == 2.0
        assert rows[(("shard", "0"), ("worker", "1"))] == 3.0
        # Router-local families pass through untouched.
        assert out["repro_router_requests_total"]["labels"] == ["op"]

    def test_worker_health_gauges_dropped(self):
        out = cluster_families(
            {}, {0: {"repro_health_value": gauge_family({"x": 1.0},
                                                        label="probe")}})
        assert "repro_health_value" not in out


# ----------------------------------------------------------------------
# Trace propagation: inject/extract and cross-process stitching
# ----------------------------------------------------------------------
class TestTraceInjection:
    def test_inject_mints_prefixed_idempotent_ids(self):
        tracer = Tracer(slow_threshold=0.0, trace_prefix="router")
        with tracer.span("cluster.observe") as span:
            context = tracer.inject(span)
            assert context == {"trace_id": "router-1", "span_id": "router-1"}
            assert tracer.inject(span) == context   # idempotent

    def test_context_extraction_links_remote_parent(self):
        router = Tracer(slow_threshold=0.0, trace_prefix="router")
        worker = Tracer(slow_threshold=0.0)
        with router.span("cluster.observe") as parent:
            context = router.inject(parent)
        with worker.span("worker.observe", context=context) as child:
            pass
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id is None        # minted only when propagated on

    def test_inject_unique_under_concurrent_threads(self):
        # itertools.count is atomic under the GIL; hammer it anyway —
        # duplicate span ids would silently cross-wire stitched traces.
        tracer = Tracer(slow_threshold=0.0, trace_prefix="r")
        minted: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def mint(n: int) -> None:
            barrier.wait()
            local: list[str] = []
            for _ in range(n):
                with tracer.span("op") as span:
                    local.append(tracer.inject(span)["span_id"])
            with lock:
                minted.extend(local)

        threads = [threading.Thread(target=mint, args=(200,))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(minted) == 8 * 200
        assert len(set(minted)) == len(minted)


class TestStitchTraces:
    def router_snapshot(self):
        tracer = Tracer(slow_threshold=0.0, trace_prefix="router")
        contexts = []
        for _ in range(2):
            with tracer.span("cluster.observe") as span:
                contexts.append(tracer.inject(span))
        return tracer.snapshot(), contexts

    def worker_snapshot(self, context):
        tracer = Tracer(slow_threshold=0.0)
        with tracer.span("worker.observe", context=context) as span:
            with tracer.span("observe.fleet"):
                pass
        tracer.inject(span)
        return tracer.snapshot()

    def test_worker_roots_graft_under_router_spans(self):
        router, contexts = self.router_snapshot()
        stitched = stitch_traces(router,
                                 {0: self.worker_snapshot(contexts[0]),
                                  1: self.worker_snapshot(contexts[1])})
        roots = stitched["slow_traces"]
        assert [t["span_id"] for t in roots] == ["router-1", "router-2"]
        for index, root in enumerate(roots):
            (child,) = root["children"]
            assert child["name"] == "worker.observe"
            assert child["attrs"]["worker"] == str(index)
            assert child["parent_id"] == root["span_id"]
            assert [g["name"] for g in child["children"]] == ["observe.fleet"]

    def test_unmatched_worker_traces_kept_as_orphans(self):
        router, _ = self.router_snapshot()
        orphan = self.worker_snapshot({"trace_id": "elsewhere-9",
                                       "span_id": "elsewhere-9"})
        stitched = stitch_traces(router, {2: orphan})
        tails = [t for t in stitched["slow_traces"]
                 if t.get("attrs", {}).get("worker") == "2"]
        assert len(tails) == 1
        assert tails[0]["parent_id"] == "elsewhere-9"

    def test_aggregates_merge_by_name_and_inputs_unmutated(self):
        router, contexts = self.router_snapshot()
        worker = self.worker_snapshot(contexts[0])
        before = snapshot_to_json(worker)
        stitched = stitch_traces(router, {0: worker})
        assert stitched["spans"]["cluster.observe"]["count"] == 2
        # Aggregates track roots only; the worker's root merges in.
        assert stitched["spans"]["worker.observe"]["count"] == 1
        # Stitching deep-copies: the shipped snapshot is not mutated.
        assert snapshot_to_json(worker) == before

    def test_no_router_tracer_still_reports_worker_traces(self):
        worker = self.worker_snapshot({"trace_id": "x", "span_id": "x"})
        stitched = stitch_traces(None, {0: worker})
        assert stitched["slow_threshold"] == 0.0
        assert len(stitched["slow_traces"]) == 1


# ----------------------------------------------------------------------
# ClusterHealthMonitor rollup
# ----------------------------------------------------------------------
def probe_dict(name, value=0.0, status="ok", warn_at=1.0, critical_at=2.0,
               detail=""):
    return {"probe": name, "value": value, "status": status,
            "warn_at": warn_at, "critical_at": critical_at, "detail": detail}


class TestClusterHealthMonitor:
    def test_quiet_cluster_is_ok(self):
        monitor = ClusterHealthMonitor()
        report = monitor.report({0: True, 1: True},
                                {0: {"p": probe_dict("p")},
                                 1: {"p": probe_dict("p")}})
        assert report["status"] == "ok"
        assert report["probes"]["worker_up"]["value"] == 0.0
        assert sorted(report["workers"]) == ["0", "1"]

    def test_dead_worker_is_critical(self):
        folded = ClusterHealthMonitor().check({0: True, 1: False, 2: False})
        assert folded["worker_up"].status == "critical"
        assert folded["worker_up"].value == 2.0
        assert "[1, 2]" in folded["worker_up"].detail

    def test_fold_takes_the_worst_worker(self):
        folded = ClusterHealthMonitor().check(
            {0: True, 1: True},
            {0: {"p": probe_dict("p", value=1.0, status="warn",
                                 detail="queue deep")},
             1: {"p": probe_dict("p", value=0.0)}})
        assert folded["p"].status == "warn"
        assert folded["p"].detail == "worker 0: queue deep"

    def test_replication_lag_graded_by_thresholds(self):
        monitor = ClusterHealthMonitor(replication_lag=(1.0, 10.0))
        assert monitor.check({0: True})["replication_lag"].status == "ok"
        lagging = monitor.check({0: True}, replication_lag=5.0)
        assert lagging["replication_lag"].status == "warn"
        assert monitor.check(
            {0: True}, replication_lag=60.0)["replication_lag"].status == "critical"

    def test_unresponsive_worker_probes_skipped(self):
        # A timed-out worker ships None — it must not crash the fold.
        folded = ClusterHealthMonitor().check(
            {0: True, 1: False},
            {0: {"p": probe_dict("p")}, 1: None})
        assert folded["worker_up"].status == "critical"
        assert folded["p"].status == "ok"

    def test_gauges_carry_probe_and_worker_labels(self):
        registry = MetricsRegistry()
        monitor = ClusterHealthMonitor(metrics=registry)
        monitor.check({0: True, 1: False},
                      {0: {"p": probe_dict("p", value=2.0, status="warn")}},
                      replication_lag=0.5)
        snapshot = registry.snapshot()
        value = {(e["labels"]["probe"], e["labels"]["worker"]): e["value"]
                 for e in snapshot["repro_health_value"]["series"]}
        assert value[("worker_up", "cluster")] == 1.0
        assert value[("worker_up", "0")] == 0.0
        assert value[("worker_up", "1")] == 1.0
        assert value[("p", "cluster")] == 2.0
        assert value[("p", "0")] == 2.0
        assert value[("replication_lag", "router")] == 0.5
        status = {(e["labels"]["probe"], e["labels"]["worker"]): e["value"]
                  for e in snapshot["repro_health_status"]["series"]}
        assert status[("p", "cluster")] == 1.0
        assert status[("worker_up", "1")] == 2.0


# ----------------------------------------------------------------------
# Router integration: exact aggregation, identity, live stats, traces
# ----------------------------------------------------------------------
class TestRouterObservability:
    def test_merged_counters_equal_sum_of_worker_series(self, seed_registry,
                                                        tmp_path):
        # Acceptance property: for every counter family, the aggregated
        # series equals the exact sum across worker-labeled series, and
        # histograms equal merged_histogram of the per-worker shipments.
        with local_router(fresh_copy(seed_registry, tmp_path, "r")) as router:
            for tenant, record in interleaved_stream():
                router.observe(tenant, record)
            per_worker = router.worker_metrics()
            families = router.metrics()["families"]
        assert all(snapshot is not None for snapshot in per_worker.values())
        shipped_names = sorted({name for snap in per_worker.values()
                                for name in snap["families"]})
        checked = 0
        for name in shipped_names:
            if name.startswith("repro_health_"):
                continue    # re-expressed by the rollup, dropped from merge
            family = families[name]
            assert family["labels"][-1] == "worker"
            aggregated = [e for e in family["series"]
                          if "worker" not in e["labels"]]
            shipped = [per_worker[i]["families"][name]
                       for i in sorted(per_worker)
                       if name in per_worker[i]["families"]]
            expected = merged_family(shipped, gauge_mode=gauge_merge_mode(name))
            assert aggregated == expected["series"]
            checked += 1
        assert checked >= 3     # decisions, op latency, checkpoint bytes, ...

    def test_decisions_identical_with_obs_on_and_off(self, seed_registry,
                                                     tmp_path):
        stream = interleaved_stream()
        with local_router(fresh_copy(seed_registry, tmp_path, "on"),
                          observability=True) as router:
            on = [router.observe(t, r) for t, r in stream]
        with local_router(fresh_copy(seed_registry, tmp_path, "off"),
                          observability=False) as router:
            off = [router.observe(t, r) for t, r in stream]
        assert on == off

    def test_observability_off_disables_collection_not_health(
            self, seed_registry, tmp_path):
        with local_router(fresh_copy(seed_registry, tmp_path, "off"),
                          observability=False) as router:
            router.observe(*interleaved_stream(1)[0])
            metrics = router.metrics()
            assert router.tracer is None
            assert metrics["traces"]["slow_traces"] == []
            assert "repro_decisions_total" not in metrics["families"]
            # Liveness and replication still grade without worker probes.
            assert metrics["health"]["worker_up"]["status"] == "ok"
            report = router.health_report()
            assert report["status"] == "ok"
            assert report["workers"] == {}

    def test_live_stats_mid_run(self, seed_registry, tmp_path):
        with local_router(fresh_copy(seed_registry, tmp_path, "s")) as router:
            stream = interleaved_stream()
            for tenant, record in stream:
                router.observe(tenant, record)
            stats = router.stats()
        assert stats["live_workers"] == 3
        assert stats["unresponsive"] == []
        assert stats["resident"] == len(TENANTS)
        assert stats["totals"]["observations"] == len(stream)
        assert stats["requests"] == sum(w["requests"]
                                        for w in stats["workers"])

    def test_slow_traces_stitch_router_to_worker(self, seed_registry,
                                                 tmp_path):
        with local_router(fresh_copy(seed_registry, tmp_path, "t"),
                          slow_trace_threshold=0.0) as router:
            router.observe(*interleaved_stream(1)[0])
            traces = router.metrics()["traces"]
        roots = [t for t in traces["slow_traces"]
                 if t["name"] == "cluster.observe"]
        assert roots, "router roots missing from stitched traces"
        root = roots[0]
        assert root["trace_id"].startswith("router-")
        children = [c for c in root.get("children", ())
                    if c["name"] == "worker.observe"]
        assert children and children[0]["trace_id"] == root["trace_id"]
        assert children[0]["parent_id"] == root["span_id"]

    def test_prometheus_export_has_worker_labeled_series(self, seed_registry,
                                                         tmp_path):
        with local_router(fresh_copy(seed_registry, tmp_path, "p")) as router:
            router.observe(*interleaved_stream(1)[0])
            text = router.export_prometheus()
        assert 'repro_decisions_total{' in text
        assert 'worker="0"' in text
        assert 'repro_health_status{probe="worker_up",worker="cluster"} 0' in text
