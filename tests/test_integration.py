"""End-to-end integration tests on small simulated worlds."""

import numpy as np
import pytest

from repro.core import GEM, GEMConfig
from repro.core.records import SignalRecord
from repro.datasets import generate_dataset, remove_macs
from repro.embedding.bisage import BiSAGEConfig
from repro.eval import evaluate_streaming, make_algorithm
from repro.rf.scenarios import home_scenario

FAST_GEM = GEMConfig(bisage=BiSAGEConfig(dim=16, epochs=3, seed=0))


@pytest.fixture(scope="module")
def world():
    scenario = home_scenario(area_m2=40.0, aps_inside=1, aps_near=6, aps_far=3, seed=11)
    return generate_dataset(scenario, seed=12, train_duration_s=180,
                            test_sessions=4, session_duration_s=50)


class TestEndToEnd:
    def test_gem_beats_chance_comfortably(self, world):
        result = evaluate_streaming(GEM(FAST_GEM), world)
        assert result.metrics.f_in > 0.75
        assert result.metrics.f_out > 0.75

    def test_streaming_is_deterministic(self, world):
        a = evaluate_streaming(GEM(FAST_GEM), world)
        b = evaluate_streaming(GEM(FAST_GEM), world)
        assert [d.inside for d in a.decisions] == [d.inside for d in b.decisions]
        np.testing.assert_allclose(a.scores, b.scores)

    def test_update_grows_detector(self, world):
        gem = GEM(FAST_GEM)
        result = evaluate_streaming(gem, world)
        assert result.num_updates > 0
        assert gem.detector.num_samples > len(world.train)

    def test_graph_grows_with_stream(self, world):
        gem = GEM(FAST_GEM)
        evaluate_streaming(gem, world)
        assert gem.graph.num_records == len(world.train) + len(world.test)

    def test_all_arms_run_end_to_end(self, world):
        # Every comparison arm fits and streams without error on a real
        # simulated world (smoke-level integration, correctness above).
        for name in ("SignatureHome", "INOA", "GEM(no-BiSAGE)"):
            result = evaluate_streaming(make_algorithm(name, seed=0), world)
            assert len(result.decisions) == len(world.test)

    def test_scores_separate_classes(self, world):
        gem = GEM(FAST_GEM)
        result = evaluate_streaming(gem, world)
        scores = result.scores
        labels = np.asarray(result.labels)
        finite = np.isfinite(scores)
        inside_scores = scores[labels & finite]
        outside_scores = scores[~labels & finite]
        if len(outside_scores) and len(inside_scores):
            assert np.median(outside_scores) > np.median(inside_scores)

    def test_roc_auc_high(self, world):
        result = evaluate_streaming(GEM(FAST_GEM), world)
        assert result.roc().auc > 0.8


class TestRobustnessPaths:
    def test_mac_removal_does_not_collapse(self, world):
        pruned = remove_macs(world, 0.2, seed=5, which="train")
        result = evaluate_streaming(GEM(FAST_GEM), pruned)
        assert result.metrics.f_in > 0.6
        assert result.metrics.f_out > 0.6

    def test_footnote3_all_new_macs_alerts(self, world):
        gem = GEM(FAST_GEM)
        gem.fit(world.train)
        alien = SignalRecord({"ff:ff:00:00:00:01": -40.0,
                              "ff:ff:00:00:00:02": -45.0})
        decision = gem.observe(alien)
        assert not decision.inside

    def test_empty_records_mid_stream(self, world):
        gem = GEM(FAST_GEM)
        gem.fit(world.train)
        # A scan glitch (empty record) must not corrupt subsequent state.
        assert not gem.observe(SignalRecord({})).inside
        follow_up = gem.observe(world.test[0].record)
        assert isinstance(follow_up.inside, bool)

    def test_duplicate_training_records_ok(self, world):
        train = world.train[:20] + world.train[:20]
        gem = GEM(FAST_GEM)
        gem.fit(train)
        assert gem.detector.num_samples == 40

    def test_single_training_record(self):
        gem = GEM(FAST_GEM)
        gem.fit([SignalRecord({"a": -50.0, "b": -60.0})])
        decision = gem.observe(SignalRecord({"a": -50.0, "b": -60.0}))
        assert isinstance(decision.inside, bool)
