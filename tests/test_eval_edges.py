"""Edge cases: degenerate metric inputs, tied/infinite scores, lazy streams."""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from conftest import synthetic_records

from repro.core.records import LabeledRecord
from repro.eval.harness import evaluate_streaming, score_stream
from repro.eval.metrics import (
    ConfusionCounts,
    InOutMetrics,
    metrics_from_pairs,
    summarize_metrics,
)
from repro.eval.roc import auc, finite_scores, roc_curve


class TestMetricsDegenerate:
    def test_all_inside_stream_yields_zero_out_metrics(self):
        m = metrics_from_pairs([(True, True), (True, True), (True, False)])
        assert m.p_in == 1.0
        assert m.r_in == pytest.approx(2 / 3)
        assert (m.p_out, m.r_out, m.f_out) == (0.0, 0.0, 0.0)
        assert not any(math.isnan(v) for v in m.as_row())

    def test_all_outside_stream_yields_zero_in_metrics(self):
        m = metrics_from_pairs([(False, False), (False, True)])
        assert (m.p_in, m.r_in, m.f_in) == (0.0, 0.0, 0.0)
        assert m.r_out == 0.5
        assert not any(math.isnan(v) for v in m.as_row())

    def test_empty_stream_is_all_zero(self):
        m = metrics_from_pairs([])
        assert m.as_row() == (0.0,) * 6
        assert ConfusionCounts().accuracy() == 0.0

    def test_summarize_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize_metrics([])

    def test_summarize_single_entry(self):
        m = InOutMetrics(1, 1, 1, 0, 0, 0)
        assert summarize_metrics([m])["p_in"] == (1.0, 1.0, 1.0)


class TestRocEdges:
    def test_empty_stream_raises_clearly(self):
        with pytest.raises(ValueError, match="empty stream"):
            roc_curve([], [])

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="both positive and negative"):
            roc_curve([0.1, 0.2], [True, True])
        with pytest.raises(ValueError, match="both positive and negative"):
            roc_curve([0.1, 0.2], [False, False])

    def test_nan_scores_raise_instead_of_misranking(self):
        with pytest.raises(ValueError, match="NaN"):
            roc_curve([0.1, float("nan")], [True, False])

    def test_all_tied_scores_give_chance_auc(self):
        curve = roc_curve([0.5, 0.5, 0.5, 0.5], [True, False, True, False])
        assert curve.auc == pytest.approx(0.5)

    def test_partial_ties_collapse_to_one_point_per_value(self):
        curve = roc_curve([0.9, 0.5, 0.5, 0.1], [True, True, False, False])
        assert len(curve.fpr) == 4  # origin + three distinct thresholds
        # Pairwise: 3 ordered pairs win, the tied (0.5, 0.5) pair counts half.
        assert curve.auc == pytest.approx(0.875)

    def test_perfect_separation(self):
        curve = roc_curve([0.9, 0.8, 0.2, 0.1], [True, True, False, False])
        assert curve.auc == pytest.approx(1.0)

    def test_auc_needs_two_points(self):
        with pytest.raises(ValueError):
            auc([0.0], [0.0])


class TestFiniteScores:
    def test_plus_inf_caps_above_max(self):
        out = finite_scores([1.0, math.inf, 3.0])
        assert out[1] == 4.0
        assert out.tolist() == [1.0, 4.0, 3.0]

    def test_minus_inf_floors_below_min(self):
        out = finite_scores([1.0, -math.inf, 3.0])
        assert out[1] == 0.0

    def test_all_infinite_collapses_to_constants(self):
        out = finite_scores([math.inf, math.inf])
        assert np.isfinite(out).all()
        assert out[0] == out[1]

    def test_empty_ok(self):
        assert finite_scores([]).size == 0

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            finite_scores([float("nan")])


class _ConstantModel:
    """Flags everything as outside with an infinite score."""

    def fit(self, records):
        return self

    def observe(self, record):
        from repro.core.protocols import GeofenceDecision
        return GeofenceDecision(inside=False, score=math.inf)


def _labeled(records, inside=True):
    return [LabeledRecord(r, inside=inside) for r in records]


class TestHarnessEdges:
    def test_all_infinite_scores_roc_does_not_nan(self):
        records = synthetic_records(6, seed=0)
        dataset = SimpleNamespace(train=records,
                                  test=_labeled(records[:3]) + _labeled(records[3:], False),
                                  meta={})
        result = evaluate_streaming(_ConstantModel(), dataset)
        curve = result.roc()  # previously np.nanmax over an empty slice
        assert np.isfinite(curve.auc)

    def test_generator_test_stream(self):
        """evaluate_streaming must accept any iterable, not just Sequence."""
        from repro.eval import make_algorithm
        records = synthetic_records(20, seed=1)
        eager = SimpleNamespace(train=records[:10], test=_labeled(records[10:]),
                                meta={"kind": "eager"})
        lazy = SimpleNamespace(train=records[:10],
                               test=(item for item in _labeled(records[10:])),
                               meta={"kind": "lazy"})
        r_eager = evaluate_streaming(make_algorithm("SignatureHome"), eager)
        r_lazy = evaluate_streaming(make_algorithm("SignatureHome"), lazy)
        assert r_lazy.scores.tolist() == r_eager.scores.tolist()
        assert r_lazy.labels == r_eager.labels
        assert len(r_lazy.decisions) == 10

    def test_generator_with_max_records(self):
        from repro.eval import make_algorithm
        records = synthetic_records(12, seed=2)
        lazy = SimpleNamespace(train=records[:6],
                               test=(item for item in _labeled(records[6:])),
                               meta={})
        result = evaluate_streaming(make_algorithm("SignatureHome"), lazy,
                                    max_test_records=3)
        assert len(result.decisions) == 3

    def test_empty_test_stream(self):
        records = synthetic_records(4, seed=3)
        dataset = SimpleNamespace(train=records, test=iter(()), meta={})
        result = evaluate_streaming(_ConstantModel(), dataset)
        assert result.decisions == []
        assert result.metrics.as_row() == (0.0,) * 6

    def test_score_stream_accepts_generator(self):
        records = synthetic_records(8, seed=4)
        model = _ConstantModel().fit(records)
        scores, outside = score_stream(model, (item for item in _labeled(records)))
        assert scores.shape == (8,)
        assert np.isfinite(scores).all()
        assert outside.tolist() == [False] * 8
