"""Crash consistency: torn writes and the reader retry path.

The checkpoint format promises that a crash at *any* point of a save
leaves the previous complete checkpoint loadable — and that a reader
racing a concurrent save retries against the fresh manifest instead of
failing on the garbage-collected arrays file.  These tests simulate the
kill points and assert zero score drift on what gets restored.
"""

import numpy as np
import pytest

from conftest import synthetic_records

import repro.serve.checkpoint as cp
from repro.core.config import GEMConfig
from repro.core.gem import GEM
from repro.embedding.bisage import BiSAGEConfig
from repro.serve.checkpoint import CheckpointError, load_checkpoint, save_checkpoint

SMALL = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1))


@pytest.fixture
def fitted_model():
    return GEM(SMALL).fit(synthetic_records(25, seed=0))


def probe_scores(model) -> list[float]:
    return [model.score(item.record if hasattr(item, "record") else item)
            for item in synthetic_records(8, seed=99)]


def advance(model) -> None:
    """Mutate the model so the next save differs from the last."""
    for record in synthetic_records(10, seed=5, center=0.5):
        model.observe(record)


def crash_before_manifest(monkeypatch):
    """Make the next save die between the arrays file and the commit."""
    real = cp._replace_into

    def dying(directory, name, writer):
        if name == cp.MANIFEST_NAME:
            raise RuntimeError("simulated power loss before manifest commit")
        real(directory, name, writer)

    monkeypatch.setattr(cp, "_replace_into", dying)


class TestTornWrite:
    def test_kill_between_arrays_and_manifest_restores_previous(
            self, tmp_path, fitted_model, monkeypatch):
        save_checkpoint(fitted_model, tmp_path)
        expected = probe_scores(load_checkpoint(tmp_path))

        advance(fitted_model)
        crash_before_manifest(monkeypatch)
        with pytest.raises(RuntimeError, match="power loss"):
            save_checkpoint(fitted_model, tmp_path)
        monkeypatch.undo()

        # The orphan arrays file of the dead save is present, but the
        # committed manifest still names the old one: the reader must
        # restore the previous checkpoint with zero score drift.
        arrays = list(tmp_path.glob(f"{cp.ARRAYS_PREFIX}*{cp.ARRAYS_SUFFIX}"))
        assert len(arrays) == 2
        assert probe_scores(load_checkpoint(tmp_path)) == expected

    def test_next_save_cleans_up_the_orphan(self, tmp_path, fitted_model, monkeypatch):
        save_checkpoint(fitted_model, tmp_path)
        advance(fitted_model)
        crash_before_manifest(monkeypatch)
        with pytest.raises(RuntimeError):
            save_checkpoint(fitted_model, tmp_path)
        monkeypatch.undo()

        save_checkpoint(fitted_model, tmp_path)
        arrays = list(tmp_path.glob(f"{cp.ARRAYS_PREFIX}*{cp.ARRAYS_SUFFIX}"))
        assert len(arrays) == 1
        manifest = cp.read_manifest(tmp_path)
        assert manifest["arrays_file"] == arrays[0].name

    def test_manually_mixed_pair_rejected_as_torn(self, tmp_path, fitted_model):
        save_checkpoint(fitted_model, tmp_path)
        old_arrays = next(tmp_path.glob(f"{cp.ARRAYS_PREFIX}*{cp.ARRAYS_SUFFIX}"))
        stale = old_arrays.read_bytes()
        advance(fitted_model)
        save_checkpoint(fitted_model, tmp_path)
        new_arrays = next(tmp_path.glob(f"{cp.ARRAYS_PREFIX}*{cp.ARRAYS_SUFFIX}"))
        # Splice the *old* arrays bytes under the *new* committed name:
        # key sets match (same model structure), only the nonce can tell.
        new_arrays.write_bytes(stale)
        with pytest.raises(CheckpointError, match="torn"):
            load_checkpoint(tmp_path)


class TestReaderRetry:
    def test_retry_after_concurrent_save_gc(self, tmp_path, fitted_model, monkeypatch):
        """A reader holding a stale manifest must retry and load the new save."""
        save_checkpoint(fitted_model, tmp_path)
        stale_manifest = cp.read_manifest(tmp_path)

        advance(fitted_model)
        save_checkpoint(fitted_model, tmp_path)  # GCs the old arrays file
        expected = probe_scores(load_checkpoint(tmp_path))

        real_read = cp.read_manifest
        served_stale = []

        def first_read_is_stale(directory):
            if not served_stale:
                served_stale.append(True)
                return dict(stale_manifest)
            return real_read(directory)

        monkeypatch.setattr(cp, "read_manifest", first_read_is_stale)
        model = load_checkpoint(tmp_path)
        assert served_stale  # the stale manifest was actually served first
        assert probe_scores(model) == expected

    def test_truly_missing_arrays_still_error(self, tmp_path, fitted_model):
        save_checkpoint(fitted_model, tmp_path)
        next(tmp_path.glob(f"{cp.ARRAYS_PREFIX}*{cp.ARRAYS_SUFFIX}")).unlink()
        with pytest.raises(CheckpointError, match="missing its arrays file"):
            load_checkpoint(tmp_path)
