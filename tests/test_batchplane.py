"""Unit tests for the batch data plane's serving pieces.

Covers the kernel cache lifecycle (reuse, refresh-commit invalidation,
``load_state_dict`` invalidation, evict/reload weak-key drop,
reprovision), the fallback matrix reasons, the
``repro_batch_fastpath_total`` metric family, the detector
``score_batch`` contract, and the batched telemetry recorder.
"""

from __future__ import annotations

import copy

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.core.protocols import GeofenceDecision
from repro.detection.histogram import HistogramConfig, HistogramDetector
from repro.embedding.bisage import BiSAGEConfig
from repro.obs.metrics import MetricsRegistry
from repro.pipeline import get_component
from repro.serve import GeofenceFleet
from repro.serve.batchplane import BatchPlane, arm_label, fastpath_reason
from repro.serve.telemetry import FleetTelemetry

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def make_gem(**overrides) -> GEM:
    from dataclasses import replace
    return GEM(replace(FAST_CONFIG, **overrides))


def fitted_gem(**overrides) -> GEM:
    return make_gem(**overrides).fit(synthetic_records(40, seed=0))


class TestKernelCache:
    def test_kernel_reused_across_batches_on_stable_state(self):
        gem = fitted_gem()
        plane = BatchPlane()
        stream = synthetic_records(12, seed=5)  # same MAC universe: no rebind
        plane.observe_batch(gem, stream[:6])
        first = plane._kernels[gem][1]
        plane.observe_batch(gem, stream[6:])
        assert plane._kernels[gem][1] is first

    def test_refresh_commit_invalidates_kernel(self):
        """refresh() swaps the embedder inside the *same* model object —
        the weak key survives, so the token comparison must catch it."""
        gem = fitted_gem()
        plane = BatchPlane()
        plane.observe_batch(gem, synthetic_records(6, seed=5))
        stale = plane._kernels[gem][1]
        gem.refresh(synthetic_records(20, seed=6))
        reference = copy.deepcopy(gem)
        probe = synthetic_records(8, seed=7)
        decisions, outcome = plane.observe_batch(gem, probe)
        assert outcome == "engaged"
        assert plane._kernels[gem][1] is not stale
        assert decisions == [reference.observe(r) for r in probe]

    def test_load_state_dict_invalidates_kernel(self):
        gem = fitted_gem()
        plane = BatchPlane()
        plane.observe_batch(gem, synthetic_records(6, seed=5))
        stale = plane._kernels[gem][1]
        gem.load_state_dict(fitted_gem().state_dict())
        plane.observe_batch(gem, synthetic_records(6, seed=8))
        assert plane._kernels[gem][1] is not stale

    def test_cache_extension_for_new_macs_invalidates_kernel(self):
        """Interned-MAC cache extension rebinds the cache lists; the next
        batch must rebuild rather than reuse the stale capture."""
        gem = fitted_gem()
        plane = BatchPlane()
        plane.observe_batch(gem, synthetic_records(4, seed=5))
        stale = plane._kernels[gem][1]
        mixed = synthetic_records(4, seed=9)
        mixed[1].readings["brand-new-mac"] = -70.0  # interns a new MAC
        plane.observe_batch(gem, mixed)
        plane.observe_batch(gem, synthetic_records(4, seed=10))
        assert plane._kernels[gem][1] is not stale

    def test_evict_reload_round_trip_drops_kernel(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "m", capacity=2, model_factory=make_gem,
                              reservoir_size=16)
        fleet.provision("t", synthetic_records(30, seed=0))
        fleet.observe_many([("t", r) for r in synthetic_records(6, seed=5)])
        assert len(fleet.batchplane._kernels) == 1
        fleet.evict("t")
        assert len(fleet.batchplane._kernels) == 0  # weak key died with the model
        # The reloaded model gets a fresh kernel and identical decisions.
        reloaded_ref = copy.deepcopy(fleet.registry.load("t"))
        probe = synthetic_records(6, seed=11)
        decisions = fleet.observe_many([("t", r) for r in probe])
        assert decisions == [reloaded_ref.observe(r) for r in probe]
        fleet.close()

    def test_reprovision_swaps_model_and_kernel(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "m", capacity=2, model_factory=make_gem,
                              reservoir_size=16)
        fleet.provision("t", synthetic_records(30, seed=0))
        fleet.observe_many([("t", r) for r in synthetic_records(6, seed=5)])
        fleet.reprovision("t")
        reference = copy.deepcopy(fleet._cache["t"])
        probe = synthetic_records(6, seed=12)
        decisions = fleet.observe_many([("t", r) for r in probe])
        assert decisions == [reference.observe(r) for r in probe]
        fleet.close()


class TestFallbackMatrix:
    @pytest.mark.filterwarnings("ignore:GEMConfig.refresh_cache_every is deprecated")
    def test_refresh_every_regime_falls_back(self):
        gem = fitted_gem(refresh_cache_every=500)
        assert fastpath_reason(gem) == "refresh_every"
        decisions, outcome = BatchPlane().observe_batch(
            gem, synthetic_records(4, seed=5))
        assert outcome == "fallback_refresh_every"
        assert len(decisions) == 4

    def test_registry_flag_matches_live_capability(self):
        assert get_component("detector", "histogram").supports_batch_score
        assert get_component("model", "gem").supports_batch_score
        for name in ("lof", "iforest", "feature-bagging"):
            assert not get_component("detector", name).supports_batch_score

    def test_arm_label_without_spec_uses_type_name(self):
        assert arm_label(fitted_gem()) == "gem"


class TestFastpathMetrics:
    def test_counter_family_counts_by_arm_and_outcome(self):
        metrics = MetricsRegistry()
        plane = BatchPlane(metrics=metrics, shard="3")
        gem = fitted_gem()
        plane.observe_batch(gem, synthetic_records(4, seed=5))
        plane.observe_batch(gem, synthetic_records(4, seed=6))
        child = metrics.counter("repro_batch_fastpath_total",
                                labels=("shard", "arm", "outcome")).labels(
            shard="3", arm="gem", outcome="engaged")
        assert child.value == 2.0
        assert plane.counts[("gem", "engaged")] == 2
        assert plane.engaged_total() == 2
        from repro.obs.export import render_prometheus
        assert "repro_batch_fastpath_total" in render_prometheus(metrics.snapshot())

    def test_fleet_wires_plane_to_telemetry_metrics(self, tmp_path):
        metrics = MetricsRegistry()
        telemetry = FleetTelemetry(metrics=metrics, shard="7")
        fleet = GeofenceFleet(tmp_path / "m", capacity=2, model_factory=make_gem,
                              telemetry=telemetry, reservoir_size=16)
        fleet.provision("t", synthetic_records(30, seed=0))
        fleet.observe_many([("t", r) for r in synthetic_records(4, seed=5)])
        child = metrics.counter("repro_batch_fastpath_total",
                                labels=("shard", "arm", "outcome")).labels(
            shard="7", arm="gem", outcome="engaged")
        assert child.value == 1.0
        fleet.close()


class TestScoreBatchContract:
    @pytest.mark.parametrize("enhanced", [True, False])
    def test_batch_verdicts_match_scalar_per_row(self, enhanced, rng):
        detector = HistogramDetector(HistogramConfig(enhanced=enhanced))
        detector.fit(rng.normal(size=(200, 6)))
        queries = np.vstack([rng.normal(size=(40, 6)),
                             rng.normal(loc=8.0, size=(10, 6))])
        scores, outliers, confident = detector.score_batch(queries)
        for i, row in enumerate(queries):
            one = row[None, :]
            assert np.float64(scores[i]).tobytes() == \
                np.float64(detector.decision_scores(one)[0]).tobytes()
            assert bool(outliers[i]) == bool(detector.is_outlier(one)[0])
            assert bool(confident[i]) == bool(detector.is_confident_inlier(one)[0])
        assert detector.supports_batch_score()
        if not enhanced:
            assert not confident.any()

    def test_score_batch_requires_fit(self):
        with pytest.raises(RuntimeError, match="not been fitted"):
            HistogramDetector().score_batch(np.zeros((1, 4)))


class TestBatchedTelemetry:
    def test_record_observations_equals_per_decision_recording(self):
        decisions = [
            GeofenceDecision(inside=True, score=0.2, confident=True,
                             buffered=True, updated=False),
            GeofenceDecision(inside=False, score=float("inf")),
            GeofenceDecision(inside=True, score=0.4, confident=True,
                             buffered=True, updated=True),
            GeofenceDecision(inside=False, score=0.99),
        ]
        one = FleetTelemetry()
        many = FleetTelemetry()
        for decision in decisions:
            one.record_observation("t", decision, seconds=0.25)
        many.record_observations("t", decisions, seconds=1.0)
        assert one.snapshot() == many.snapshot()
        many.record_observations("t", [], seconds=5.0)  # no-op
        assert one.snapshot() == many.snapshot()
