"""Unit tests for repro.obs: metrics, tracing, export, health."""

import json
import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    HealthMonitor,
    Histogram,
    MetricsDumper,
    MetricsRegistry,
    ProbeResult,
    Tracer,
    bucket_quantile,
    histogram_percentiles,
    maybe_span,
    merged_histogram,
    render_prometheus,
    snapshot_from_json,
    snapshot_to_json,
)


# ----------------------------------------------------------------------
# bucket_quantile + Histogram percentile math (satellite: the math tests)
# ----------------------------------------------------------------------
class TestBucketQuantile:
    def test_empty_returns_none(self):
        assert bucket_quantile((1.0, 2.0), [0, 0, 0], 0.5) is None

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError, match="quantile"):
            bucket_quantile((1.0,), [1, 0], 1.5)
        with pytest.raises(ValueError, match="quantile"):
            bucket_quantile((1.0,), [1, 0], -0.1)

    def test_single_sample_interpolates_inside_its_bucket(self):
        # One sample in the (1.0, 2.0] bucket: every quantile lands in it.
        counts = [0, 1, 0]
        for q in (0.0, 0.5, 1.0):
            value = bucket_quantile((1.0, 2.0), counts, q)
            assert 1.0 <= value <= 2.0

    def test_first_bucket_interpolates_from_zero(self):
        # 10 samples in the first bucket (le=1.0): p50 = 0 + 0.5 * 1.0.
        assert bucket_quantile((1.0, 2.0), [10, 0, 0], 0.5) == pytest.approx(0.5)

    def test_overflow_clamps_to_largest_finite_bound(self):
        assert bucket_quantile((1.0, 2.0), [0, 0, 5], 0.99) == 2.0

    def test_exact_rank_arithmetic(self):
        # 4 samples le 1.0 and 4 in (1.0, 2.0]: p50 has target rank 4,
        # exactly exhausting the first bucket.
        assert bucket_quantile((1.0, 2.0), [4, 4, 0], 0.5) == pytest.approx(1.0)


class TestHistogram:
    def test_boundary_value_lands_in_le_bucket(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)          # le semantics: exactly 1.0 is <= 1.0
        h.observe(1.0001)
        h.observe(5.0)          # overflow
        assert h.bucket_counts() == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(7.0001)

    def test_empty_percentiles_are_none(self):
        h = Histogram()
        assert h.percentiles() == {"p50": None, "p90": None, "p99": None}
        assert h.quantile(0.5) is None

    def test_single_sample_percentiles_share_a_bucket(self):
        h = Histogram(buckets=(0.001, 0.01, 0.1))
        h.observe(0.005)
        p = h.percentiles()
        for value in p.values():
            assert 0.001 <= value <= 0.01

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Histogram(buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram(buckets=(1.0, 1.0))

    def test_merge_of_per_shard_equals_histogram_of_merged_stream(self):
        # Satellite invariant: shard-wise histograms fold exactly.
        stream_a = [0.0005, 0.003, 0.02, 0.3, 7.0]
        stream_b = [0.0001, 0.0008, 0.05, 0.05, 1.5, 20.0]
        shard_a, shard_b, merged_ref = Histogram(), Histogram(), Histogram()
        for v in stream_a:
            shard_a.observe(v)
            merged_ref.observe(v)
        for v in stream_b:
            shard_b.observe(v)
            merged_ref.observe(v)
        shard_a.merge(shard_b)
        assert shard_a.bucket_counts() == merged_ref.bucket_counts()
        assert shard_a.count == merged_ref.count
        assert shard_a.sum == pytest.approx(merged_ref.sum)
        assert shard_a.percentiles() == merged_ref.percentiles()

    def test_merge_rejects_different_bounds(self):
        with pytest.raises(ValueError, match="different bounds"):
            Histogram(buckets=(1.0,)).merge(Histogram(buckets=(2.0,)))


class TestCounterGauge:
    def test_counter_monotonic(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)
        with pytest.raises(ValueError, match="only go up"):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(5.0)
        g.inc()
        g.dec(3.0)
        assert g.value == pytest.approx(3.0)


class TestRegistry:
    def test_registration_idempotent_and_checked(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labels=("shard",))
        assert reg.counter("x_total", labels=("shard",)) is a
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total", labels=("shard",))
        with pytest.raises(ValueError, match="already registered"):
            reg.counter("x_total", labels=("op",))

    def test_label_validation(self):
        family = MetricsRegistry().counter("y_total", labels=("shard", "op"))
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(shard="0")
        child = family.labels(shard="0", op="observe")
        assert family.labels(op="observe", shard="0") is child

    def test_unlabeled_family_is_the_metric(self):
        reg = MetricsRegistry()
        reg.counter("plain_total").inc(3)
        assert reg.get("plain_total").value == 3

    def test_snapshot_deterministic_bytes(self):
        # Satellite invariant: same state, same serialised bytes.
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total", labels=("shard",)).labels(shard="1").inc(2)
            reg.counter("a_total").inc()
            h = reg.histogram("lat_seconds", labels=("op",))
            h.labels(op="observe").observe(0.004)
            h.labels(op="observe").observe(0.2)
            return reg.snapshot()

        first, second = build(), build()
        assert snapshot_to_json(first) == snapshot_to_json(second)
        assert snapshot_from_json(snapshot_to_json(first)) == first
        assert list(first) == sorted(first)

    def test_merged_histogram_matches_live_merge(self):
        reg = MetricsRegistry()
        fam = reg.histogram("lat_seconds", labels=("shard",))
        for shard, values in (("0", [0.001, 0.3]), ("1", [0.02, 0.02, 9.0])):
            for v in values:
                fam.labels(shard=shard).observe(v)
        entry = merged_histogram(reg.snapshot()["lat_seconds"]["series"])
        reference = Histogram()
        for v in (0.001, 0.3, 0.02, 0.02, 9.0):
            reference.observe(v)
        assert entry["count"] == reference.count
        assert entry["sum"] == pytest.approx(reference.sum)
        assert histogram_percentiles(entry) == reference.percentiles()

    def test_merged_histogram_empty_raises(self):
        with pytest.raises(ValueError, match="no histogram series"):
            merged_histogram([])


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer(slow_threshold=0.0)
        with tracer.span("refresh", tenant="t1"):
            with tracer.span("refresh.build"):
                pass
            with tracer.span("refresh.commit"):
                pass
        (trace,) = tracer.slow_traces()
        assert trace["name"] == "refresh"
        assert [c["name"] for c in trace["children"]] == ["refresh.build",
                                                          "refresh.commit"]
        assert trace["attrs"] == {"tenant": "t1"}
        # Only the root feeds the aggregate.
        assert set(tracer.snapshot()["spans"]) == {"refresh"}

    def test_fast_roots_stay_out_of_the_ring(self):
        tracer = Tracer(slow_threshold=10.0)
        with tracer.span("observe"):
            pass
        assert tracer.slow_traces() == []
        assert tracer.snapshot()["spans"]["observe"]["count"] == 1

    def test_ring_is_bounded(self):
        tracer = Tracer(slow_threshold=0.0, ring_size=3)
        for i in range(10):
            with tracer.span("op", i=i):
                pass
        traces = tracer.slow_traces()
        assert len(traces) == 3
        assert [t["attrs"]["i"] for t in traces] == ["7", "8", "9"]

    def test_exception_is_annotated_and_reraised(self):
        tracer = Tracer(slow_threshold=0.0)
        with pytest.raises(KeyError):
            with tracer.span("observe"):
                raise KeyError("boom")
        (trace,) = tracer.slow_traces()
        assert trace["attrs"]["error"] == "KeyError"

    def test_current_tracks_the_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            with tracer.span("inner"):
                assert tracer.current().name == "inner"
            assert tracer.current().name == "outer"
        assert tracer.current() is None

    def test_threads_do_not_share_stacks(self):
        tracer = Tracer(slow_threshold=0.0)
        seen = []

        def worker():
            with tracer.span("worker"):
                seen.append(tracer.current().name)

        with tracer.span("main"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            # The worker's span completed as its own root, not a child.
            assert tracer.current().name == "main"
        roots = {t["name"] for t in tracer.slow_traces()}
        assert roots == {"worker", "main"}
        assert seen == ["worker"]

    def test_maybe_span_without_tracer_is_shared_noop(self):
        first, second = maybe_span(None, "a"), maybe_span(None, "b", x=1)
        assert first is second
        with first as span:
            assert span is None

    def test_validation(self):
        with pytest.raises(ValueError, match="slow_threshold"):
            Tracer(slow_threshold=-1)
        with pytest.raises(ValueError, match="ring_size"):
            Tracer(ring_size=0)


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def sample_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("req_total", help="requests", labels=("shard",)) \
        .labels(shard="0").inc(7)
    reg.gauge("depth", help="queue depth").set(3)
    h = reg.histogram("lat_seconds", help="latency", labels=("op",),
                      buckets=(0.01, 0.1))
    for v in (0.005, 0.005, 0.05, 5.0):
        h.labels(op="observe").observe(v)
    return reg


class TestPrometheusRender:
    def test_exposition_shape(self):
        text = render_prometheus(sample_registry().snapshot())
        lines = text.splitlines()
        assert "# HELP req_total requests" in lines
        assert "# TYPE req_total counter" in lines
        assert 'req_total{shard="0"} 7' in lines
        assert "# TYPE depth gauge" in lines
        assert "depth 3" in lines
        assert "# TYPE lat_seconds histogram" in lines
        assert 'lat_seconds_bucket{op="observe",le="0.01"} 2' in lines
        assert 'lat_seconds_bucket{op="observe",le="0.1"} 3' in lines
        assert 'lat_seconds_bucket{op="observe",le="+Inf"} 4' in lines
        assert 'lat_seconds_count{op="observe"} 4' in lines
        sum_line = next(l for l in lines if l.startswith("lat_seconds_sum"))
        assert float(sum_line.split()[-1]) == pytest.approx(5.06)

    def test_accepts_full_runtime_metrics_dict(self):
        snapshot = {"families": sample_registry().snapshot(),
                    "health": {"x": {"status": "ok"}}, "traces": {}}
        assert render_prometheus(snapshot) == \
            render_prometheus(snapshot["families"])

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("esc_total", labels=("who",)) \
            .labels(who='a"b\\c\nd').inc()
        text = render_prometheus(reg.snapshot())
        assert r'esc_total{who="a\"b\\c\nd"} 1' in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_histogram_percentiles_match_live(self):
        reg = sample_registry()
        entry = reg.snapshot()["lat_seconds"]["series"][0]
        live = reg.get("lat_seconds").labels(op="observe")
        assert histogram_percentiles(entry) == live.percentiles()


class TestMetricsDumper:
    def test_dump_now_appends_snapshot_lines(self, tmp_path):
        reg = sample_registry()
        path = tmp_path / "metrics.jsonl"
        dumper = MetricsDumper(lambda: reg.snapshot(), path, interval=60.0)
        dumper.dump_now()
        reg.get("req_total").labels(shard="0").inc()
        dumper.dump_now()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert all("at" in line for line in lines)
        assert dumper.lines_written == 2

    def test_stop_writes_a_final_line(self, tmp_path):
        reg = sample_registry()
        path = tmp_path / "metrics.jsonl"
        with MetricsDumper(lambda: reg.snapshot(), path, interval=60.0) as dumper:
            assert dumper.running
        assert not dumper.running
        assert len(path.read_text().splitlines()) == 1

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="interval"):
            MetricsDumper(dict, tmp_path / "m.jsonl", interval=0)


# ----------------------------------------------------------------------
# Health
# ----------------------------------------------------------------------
class FakeController:
    def __init__(self, streaks):
        self._streaks = streaks

    def failed_refresh_streaks(self):
        return dict(self._streaks)


class FakeShard:
    def __init__(self, index, pending=0, streaks=()):
        self.index = index
        self.pending_decisions = pending
        self.controller = FakeController(dict(streaks))


class FakeTotals:
    def __init__(self, observations, inside):
        self.observations = observations
        self.inside = inside


class FakeRuntime:
    def __init__(self, shards, totals, scheduler=None):
        self.shards = shards
        self._totals = totals
        self.scheduler = scheduler

    def telemetry_totals(self):
        return self._totals


class TestHealthMonitor:
    def test_all_ok_on_a_quiet_runtime(self):
        monitor = HealthMonitor()
        runtime = FakeRuntime([FakeShard(0)], FakeTotals(10, 5))
        results = monitor.check(runtime)
        assert set(results) == {"stuck_refresh", "reservoir_starvation",
                                "scheduler_staleness", "decision_bus_depth"}
        assert all(r.status == "ok" for r in results.values())
        # Serial mode: the caller is the scheduler.
        assert results["scheduler_staleness"].detail.startswith("serial mode")

    def test_threshold_grading(self):
        assert ProbeResult("p", 1.0, "ok", 2.0, 4.0).level == 0
        monitor = HealthMonitor(stuck_refresh=(2, 4))
        warn = FakeRuntime([FakeShard(0, streaks={"t": 2})], FakeTotals(0, 0))
        critical = FakeRuntime([FakeShard(0, streaks={"t": 9})], FakeTotals(0, 0))
        assert monitor.check(warn)["stuck_refresh"].status == "warn"
        result = monitor.check(critical)["stuck_refresh"]
        assert result.status == "critical"
        assert "'t'" in result.detail and "9" in result.detail

    def test_starvation_counts_since_last_inside(self):
        monitor = HealthMonitor(starvation_window=100)
        shards = [FakeShard(0)]
        assert monitor.check(
            FakeRuntime(shards, FakeTotals(50, 5)))["reservoir_starvation"].value == 0
        # 150 more observations, no new inside decision: warn.
        result = monitor.check(
            FakeRuntime(shards, FakeTotals(200, 5)))["reservoir_starvation"]
        assert result.value == 150
        assert result.status == "warn"
        # Critical at twice the window.
        assert monitor.check(
            FakeRuntime(shards, FakeTotals(450, 5)))["reservoir_starvation"] \
            .status == "critical"
        # One inside decision resets the window.
        assert monitor.check(
            FakeRuntime(shards, FakeTotals(460, 6)))["reservoir_starvation"] \
            .status == "ok"

    def test_bus_depth_reports_worst_shard(self):
        monitor = HealthMonitor(bus_depth=(10, 100))
        runtime = FakeRuntime([FakeShard(0, pending=3), FakeShard(1, pending=40)],
                              FakeTotals(0, 0))
        result = monitor.check(runtime)["decision_bus_depth"]
        assert result.value == 40
        assert result.status == "warn"
        assert "shard 1" in result.detail

    def test_results_mirror_into_gauges(self):
        reg = MetricsRegistry()
        monitor = HealthMonitor(metrics=reg, bus_depth=(10, 100))
        monitor.check(FakeRuntime([FakeShard(0, pending=25)], FakeTotals(0, 0)))
        value = reg.get("repro_health_value").labels(probe="decision_bus_depth")
        status = reg.get("repro_health_status").labels(probe="decision_bus_depth")
        assert value.value == 25
        assert status.value == 1  # warn

    def test_as_dict_round_trips_through_json(self):
        result = HealthMonitor().check(
            FakeRuntime([FakeShard(0)], FakeTotals(0, 0)))["decision_bus_depth"]
        assert json.loads(json.dumps(result.as_dict()))["probe"] == \
            "decision_bus_depth"
