"""Sparse matmul and initialisers."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.nn import Tensor, row_normalized_csr, spmm
from repro.nn.init import he_uniform, normal, xavier_uniform

from conftest import numerical_gradient


class TestSpmm:
    def test_forward_matches_dense(self):
        rng = np.random.default_rng(0)
        dense = rng.random((4, 5))
        dense[dense < 0.5] = 0.0
        matrix = sp.csr_matrix(dense)
        x = rng.standard_normal((5, 3))
        np.testing.assert_allclose(spmm(matrix, Tensor(x)).numpy(), dense @ x)

    def test_gradient_is_transpose(self):
        rng = np.random.default_rng(1)
        dense = sp.random(4, 5, density=0.5, random_state=2, format="csr")
        x_val = rng.standard_normal((5, 2))
        x = Tensor(x_val, requires_grad=True)
        spmm(dense, x).sum().backward()
        num = numerical_gradient(lambda v: (dense @ v).sum(), x_val.copy())
        np.testing.assert_allclose(x.grad, num, atol=1e-6)

    def test_rejects_dense_first_operand(self):
        with pytest.raises(TypeError):
            spmm(np.eye(3), Tensor(np.zeros((3, 1))))


class TestRowNormalizedCsr:
    def test_rows_sum_to_one(self):
        matrix = row_normalized_csr([0, 0, 1], [1, 2, 0], [2.0, 6.0, 5.0], shape=(3, 3))
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums, [1.0, 1.0, 0.0])

    def test_weights_proportional(self):
        matrix = row_normalized_csr([0, 0], [0, 1], [1.0, 3.0], shape=(1, 2)).toarray()
        np.testing.assert_allclose(matrix, [[0.25, 0.75]])

    def test_duplicate_entries_are_summed(self):
        matrix = row_normalized_csr([0, 0], [1, 1], [1.0, 1.0], shape=(1, 2)).toarray()
        np.testing.assert_allclose(matrix, [[0.0, 1.0]])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            row_normalized_csr([0], [0], [-1.0], shape=(1, 1))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            row_normalized_csr([0, 1], [0], [1.0], shape=(2, 2))


class TestInitialisers:
    def test_xavier_bounds(self):
        w = xavier_uniform((20, 30), rng=0)
        limit = np.sqrt(6.0 / 50.0)
        assert np.abs(w).max() <= limit

    def test_he_bounds(self):
        w = he_uniform((10, 40), rng=0)
        limit = np.sqrt(6.0 / 40.0)
        assert np.abs(w).max() <= limit

    def test_normal_std(self):
        w = normal((2000,), rng=0, std=0.5)
        assert abs(w.std() - 0.5) < 0.05

    def test_deterministic_with_seed(self):
        np.testing.assert_allclose(xavier_uniform((3, 3), rng=7), xavier_uniform((3, 3), rng=7))

    def test_conv_shape_fans(self):
        w = xavier_uniform((8, 4, 5), rng=0)  # (out, in, kernel)
        assert w.shape == (8, 4, 5)

    def test_empty_shape_rejected(self):
        with pytest.raises(ValueError):
            xavier_uniform((), rng=0)
