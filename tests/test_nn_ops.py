"""Functional ops: values, stability, gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn import Tensor, ops

from conftest import numerical_gradient


def grad_of(op, x, atol=1e-5):
    t = Tensor(x, requires_grad=True)
    op(t).sum().backward()
    num = numerical_gradient(lambda v: op(Tensor(v)).numpy().sum(), x.copy())
    np.testing.assert_allclose(t.grad, num, atol=atol)


class TestActivations:
    def test_sigmoid_values(self):
        np.testing.assert_allclose(ops.sigmoid(Tensor([0.0])).numpy(), [0.5])

    def test_sigmoid_extreme_inputs_stable(self):
        out = ops.sigmoid(Tensor([1000.0, -1000.0])).numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [1.0, 0.0], atol=1e-12)

    def test_sigmoid_grad(self):
        grad_of(ops.sigmoid, np.array([-2.0, 0.0, 2.0]))

    def test_tanh_grad(self):
        grad_of(ops.tanh, np.array([-1.0, 0.5, 2.0]))

    def test_relu_values(self):
        np.testing.assert_allclose(ops.relu(Tensor([-1.0, 2.0])).numpy(), [0.0, 2.0])

    def test_relu_grad(self):
        grad_of(ops.relu, np.array([-1.0, 0.5, 2.0]))

    def test_exp_log_inverse(self):
        x = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(ops.log(ops.exp(Tensor(x))).numpy(), x)

    def test_exp_grad(self):
        grad_of(ops.exp, np.array([-1.0, 0.0, 1.0]))

    def test_log_grad(self):
        grad_of(ops.log, np.array([0.5, 1.5, 3.0]))

    def test_softplus_matches_reference(self):
        x = np.array([-30.0, -1.0, 0.0, 1.0, 30.0])
        np.testing.assert_allclose(ops.softplus(Tensor(x)).numpy(),
                                   np.log1p(np.exp(-np.abs(x))) + np.maximum(x, 0))

    def test_softplus_grad(self):
        grad_of(ops.softplus, np.array([-2.0, 0.0, 2.0]))

    def test_log_sigmoid_is_negative_softplus_of_negation(self):
        x = np.array([-5.0, 0.0, 5.0])
        np.testing.assert_allclose(ops.log_sigmoid(Tensor(x)).numpy(),
                                   -(np.log1p(np.exp(-np.abs(-x))) + np.maximum(-x, 0)))

    def test_log_sigmoid_stable_at_large_negative(self):
        out = ops.log_sigmoid(Tensor([-800.0])).numpy()
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, [-800.0], rtol=1e-6)


class TestConcatGatherStack:
    def test_concat_forward(self):
        a, b = Tensor(np.ones((2, 2))), Tensor(np.zeros((2, 3)))
        assert ops.concat([a, b], axis=1).shape == (2, 5)

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            ops.concat([])

    def test_concat_grad_splits(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        out = ops.concat([a, b], axis=1)
        (out * np.arange(10.0).reshape(2, 5)).sum().backward()
        np.testing.assert_allclose(a.grad, [[0, 1], [5, 6]])
        np.testing.assert_allclose(b.grad, [[2, 3, 4], [7, 8, 9]])

    def test_gather_rows_forward(self):
        x = Tensor(np.arange(6.0).reshape(3, 2))
        np.testing.assert_allclose(ops.gather_rows(x, [2, 0]).numpy(), [[4, 5], [0, 1]])

    def test_gather_rows_grad_accumulates_repeats(self):
        x = Tensor(np.zeros((3, 2)), requires_grad=True)
        ops.gather_rows(x, [1, 1, 2]).sum().backward()
        np.testing.assert_allclose(x.grad, [[0, 0], [2, 2], [1, 1]])

    def test_stack_rows(self):
        rows = [Tensor([1.0, 2.0]), Tensor([3.0, 4.0])]
        np.testing.assert_allclose(ops.stack_rows(rows).numpy(), [[1, 2], [3, 4]])

    def test_stack_rows_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (ops.stack_rows([a, b]) * np.array([[1.0, 2], [3, 4]])).sum().backward()
        np.testing.assert_allclose(a.grad, [1, 2])
        np.testing.assert_allclose(b.grad, [3, 4])


class TestRowOps:
    def test_row_dot(self):
        a = Tensor([[1.0, 2], [3, 4]])
        b = Tensor([[5.0, 6], [7, 8]])
        np.testing.assert_allclose(ops.row_dot(a, b).numpy(), [17, 53])

    def test_l2_normalize_rows_unit_norm(self):
        x = Tensor(np.random.default_rng(0).standard_normal((5, 4)))
        out = ops.l2_normalize_rows(x).numpy()
        np.testing.assert_allclose(np.linalg.norm(out, axis=1), np.ones(5), rtol=1e-6)

    def test_l2_normalize_zero_row_finite(self):
        out = ops.l2_normalize_rows(Tensor(np.zeros((1, 3)))).numpy()
        assert np.isfinite(out).all()

    def test_l2_normalize_grad_matches_numerical(self):
        x_val = np.random.default_rng(1).standard_normal((2, 3))
        t = Tensor(x_val, requires_grad=True)
        (ops.l2_normalize_rows(t) * np.arange(6.0).reshape(2, 3)).sum().backward()
        num = numerical_gradient(
            lambda v: (ops.l2_normalize_rows(Tensor(v)).numpy() * np.arange(6.0).reshape(2, 3)).sum(),
            x_val.copy())
        np.testing.assert_allclose(t.grad, num, atol=1e-5)

    def test_mse_loss_value(self):
        loss = ops.mse_loss(Tensor([1.0, 3.0]), [0.0, 0.0])
        assert loss.item() == pytest.approx(5.0)

    def test_mse_loss_grad(self):
        t = Tensor([2.0], requires_grad=True)
        ops.mse_loss(t, [0.0]).backward()
        np.testing.assert_allclose(t.grad, [4.0])


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, (4,), elements=st.floats(-10, 10, allow_nan=False)))
def test_property_sigmoid_in_unit_interval(x):
    out = ops.sigmoid(Tensor(x)).numpy()
    assert ((out >= 0) & (out <= 1)).all()


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, (3, 4), elements=st.floats(-5, 5, allow_nan=False)))
def test_property_normalized_rows_at_most_unit(x):
    out = ops.l2_normalize_rows(Tensor(x)).numpy()
    assert (np.linalg.norm(out, axis=1) <= 1.0 + 1e-9).all()


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, (5,), elements=st.floats(-20, 20, allow_nan=False)))
def test_property_log_sigmoid_nonpositive(x):
    assert (ops.log_sigmoid(Tensor(x)).numpy() <= 0).all()
