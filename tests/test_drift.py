"""Streaming drift harness: streams, metrics, fleet replay, spec block."""

import json

import numpy as np
import pytest

from repro.core.config import GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.drift import DriftHarness, DriftResult, EpochMetrics
from repro.pipeline import ComponentSpec, DriftSpec, PipelineSpec, build_pipeline
from repro.rf.dynamics import APChurn, ChurnShock, DynamicsTimeline
from repro.rf.scenarios import lab_scenario
from repro.serve import GeofenceFleet


SMALL_GEM = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1))


def small_timeline(num_epochs: int = 3, schedules=None, seed: int = 0):
    scenario = lab_scenario(seed=0, lab_aps=2, corridor_aps=2, building_aps=4)
    if schedules is None:
        schedules = [APChurn(rate=0.3)]
    return DynamicsTimeline(scenario, schedules, num_epochs=num_epochs, seed=seed)


def small_harness(**kwargs) -> DriftHarness:
    defaults = dict(seed=0, train_duration_s=60.0, sessions_per_epoch=2,
                    session_duration_s=20.0)
    defaults.update(kwargs)
    timeline = defaults.pop("timeline", None) or small_timeline()
    return DriftHarness(timeline, **defaults)


def small_gem_spec() -> PipelineSpec:
    return PipelineSpec(model=ComponentSpec("gem", SMALL_GEM.to_dict()))


class TestStreams:
    def test_streams_deterministic_and_cached(self):
        one, two = small_harness(), small_harness()
        assert [r.record.readings for r in one.epoch_records(1)] == \
               [r.record.readings for r in two.epoch_records(1)]
        assert one.training_records()[0].readings == two.training_records()[0].readings
        assert one.epoch_records(1) is one.epoch_records(1)

    def test_seed_changes_streams(self):
        one = small_harness(seed=0)
        two = small_harness(seed=1)
        assert [r.record.readings for r in one.epoch_records(0)] != \
               [r.record.readings for r in two.epoch_records(0)]

    def test_sessions_alternate_inside_outside(self):
        harness = small_harness(sessions_per_epoch=4)
        records = harness.epoch_records(0)
        sessions = {item.meta["session"] for item in records}
        assert sessions == {0, 1, 2, 3}
        labels = {item.meta["session"]: item.inside for item in records}
        # Even sessions walk inside regions, odd sessions outside ones
        # (session intent; straddling records may flip individual labels).
        assert labels[0] or labels[2]
        inside_count = sum(1 for item in records if item.inside)
        assert 0 < inside_count < len(records)

    def test_device_gain_applied(self):
        from repro.rf.dynamics import DeviceGainDrift
        timeline = small_timeline(schedules=[DeviceGainDrift(sigma_db=3.0,
                                                             max_gain_db=10.0)])
        harness = small_harness(timeline=timeline)
        assert timeline.world(2).device_gain_db != 0.0
        assert harness.epoch_records(2)  # scans succeed under the offset

    def test_validation(self):
        with pytest.raises(ValueError):
            small_harness(sessions_per_epoch=0)
        with pytest.raises(ValueError):
            small_harness(train_duration_s=0.0)


class TestRun:
    def test_online_run_produces_trajectory(self):
        harness = small_harness()
        result = harness.run(build_pipeline(small_gem_spec()), label="gem")
        assert [m.epoch for m in result.epochs] == [0, 1, 2]
        for m in result.epochs:
            assert m.num_records == len(harness.epoch_records(m.epoch))
            assert 0.0 <= m.fpr <= 1.0 and 0.0 <= m.fnr <= 1.0
            assert m.auc is None or 0.0 <= m.auc <= 1.0
        assert sum(m.updates_buffered for m in result.epochs) > 0
        payload = json.dumps(result.to_dict())
        assert "epochs" in json.loads(payload)

    def test_online_and_static_share_streams_but_diverge_in_state(self):
        harness = small_harness()
        online = harness.run(build_pipeline(small_gem_spec()), online=True)
        static = harness.run(build_pipeline(small_gem_spec()), online=False)
        assert [m.num_records for m in online.epochs] == \
               [m.num_records for m in static.epochs]
        assert all(m.updates_buffered == 0 for m in static.epochs)

    def test_static_requires_score_and_predict(self):
        from repro.eval import make_algorithm
        harness = small_harness()
        with pytest.raises(TypeError, match="static"):
            harness.run(make_algorithm("INOA"), online=False)

    def test_single_class_epoch_has_no_auc(self):
        harness = small_harness(sessions_per_epoch=1)
        result = harness.run(build_pipeline(small_gem_spec()))
        assert all(m.auc is None for m in result.epochs)


class TestFleetReplay:
    def test_fleet_replay_matches_plain_online(self, tmp_path):
        """Evict/reload mid-stream must leave zero metric drift."""
        harness = small_harness()
        spec = small_gem_spec()
        plain = harness.run(build_pipeline(spec), label="plain", online=True)
        with GeofenceFleet(tmp_path / "registry", capacity=1) as fleet:
            fleet.provision("tenant-a", harness.training_records(), spec=spec)
            via_fleet = harness.run_fleet(fleet, "tenant-a")
            loads = fleet.telemetry.totals().loads
        assert [m.to_dict() for m in via_fleet.epochs] == \
               [m.to_dict() for m in plain.epochs]
        # The equivalence is only meaningful if reloads actually happened.
        assert loads >= harness.timeline.num_epochs

    def test_noop_controller_matches_plain_online_bit_for_bit(self, tmp_path):
        """A controller under the no-op policy must be pure observation."""
        from repro.serve import FleetController
        harness = small_harness()
        spec = small_gem_spec()
        plain = harness.run(build_pipeline(spec), label="plain", online=True)
        with GeofenceFleet(tmp_path / "registry", capacity=1) as fleet:
            fleet.provision("tenant-a", harness.training_records(), spec=spec)
            controller = FleetController(fleet)
            controlled = harness.run_fleet(fleet, "tenant-a",
                                           controller=controller)
        assert [m.to_dict() for m in controlled.epochs] == \
               [m.to_dict() for m in plain.epochs]
        assert controller.actions == []
        assert controlled.meta["maintenance"] == {}
        # The control plane still saw every decision go by.
        totals = controller.telemetry.totals()
        assert totals.observations == sum(m.num_records for m in plain.epochs)

    def test_refresh_policy_executes_and_is_recorded(self, tmp_path):
        """A scheduled-refresh controller acts mid-replay and survives the
        forced evict/reload cycle (the reservoir rides the checkpoint)."""
        from repro.serve import FleetController, MaintenancePolicy
        harness = small_harness()
        spec = small_gem_spec()
        per_epoch = len(harness.epoch_records(0))
        policy = MaintenancePolicy(check_every=max(per_epoch // 2, 1),
                                   refresh_every=per_epoch)
        with GeofenceFleet(tmp_path / "registry", capacity=1,
                           reservoir_size=64) as fleet:
            fleet.provision("tenant-a", harness.training_records(), spec=spec)
            controller = FleetController(fleet, policy)
            result = harness.run_fleet(fleet, "tenant-a", controller=controller)
            refreshes = fleet.telemetry.totals().refreshes
        assert refreshes >= harness.timeline.num_epochs - 1
        recorded = [a for acts in result.meta["maintenance"].values() for a in acts]
        assert recorded.count("refresh") == refreshes
        for m in result.epochs:
            assert m.auc is None or 0.0 <= m.auc <= 1.0


class TestRecovery:
    @staticmethod
    def result(aucs, label="x"):
        epochs = [EpochMetrics(epoch=i, num_records=10, auc=auc, fpr=0.0, fnr=0.0,
                               updates_buffered=0, updates_applied=0, unembeddable=0)
                  for i, auc in enumerate(aucs)]
        return DriftResult(label=label, epochs=epochs)

    def test_never_dipped_returns_zero(self):
        assert self.result([0.9, 0.9, 0.9, 0.89, 0.9]).recovery_after(2) == 0

    def test_dip_and_recover(self):
        r = self.result([0.95, 0.95, 0.95, 0.6, 0.7, 0.94, 0.95])
        assert r.recovery_after(3) == 2

    def test_never_recovers(self):
        assert self.result([0.95, 0.95, 0.6, 0.6, 0.6]).recovery_after(2) is None

    def test_no_pre_shock_baseline(self):
        assert self.result([0.6, 0.6]).recovery_after(0) is None
        assert self.result([None, None, 0.9]).recovery_after(2) is None


class TestDriftSpecBlock:
    def drift(self) -> DriftSpec:
        return DriftSpec(num_epochs=4, seed=3, schedules=(
            ComponentSpec("ap-churn", {"rate": 0.2, "protect": [1]}),
            ComponentSpec("churn-shock", {"epoch": 2, "fraction": 0.5}),
        ))

    def test_round_trip(self):
        drift = self.drift()
        assert DriftSpec.from_dict(json.loads(json.dumps(drift.to_dict()))) == drift

    def test_validate_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="unknown dynamics schedule"):
            DriftSpec(schedules=(ComponentSpec("warp-field"),)).validate()

    def test_validate_rejects_bad_params(self):
        with pytest.raises(ValueError, match="accepted"):
            DriftSpec(schedules=(ComponentSpec("ap-churn", {"pace": 1}),)).validate()

    def test_bad_epochs(self):
        with pytest.raises(ValueError):
            DriftSpec(num_epochs=0)

    def test_build_timeline(self):
        scenario = lab_scenario(seed=0, lab_aps=2, corridor_aps=2, building_aps=4)
        timeline = self.drift().build_timeline(scenario)
        assert timeline.num_epochs == 4
        assert timeline.seed == 3
        assert len(timeline.schedules) == 2

    def test_pipeline_spec_carries_drift(self):
        spec = PipelineSpec(model=ComponentSpec("gem"), drift=self.drift())
        spec.validate()
        back = PipelineSpec.from_json(spec.to_json())
        assert back == spec
        assert back.drift.num_epochs == 4

    def test_pipeline_spec_without_drift_unchanged(self):
        spec = PipelineSpec(model=ComponentSpec("gem"))
        assert "drift" not in spec.to_dict()
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_drift_from_plain_mapping(self):
        spec = PipelineSpec(model=ComponentSpec("gem"),
                            drift={"num_epochs": 2, "seed": 0, "schedules": []})
        assert isinstance(spec.drift, DriftSpec)

    def test_build_pipeline_ignores_drift(self):
        spec = PipelineSpec(model=ComponentSpec("gem", SMALL_GEM.to_dict()),
                            drift=self.drift())
        pipeline = build_pipeline(spec)
        assert pipeline.spec is spec
