"""Registry + declarative spec API: round trips, validation, arm specs."""

import json

import pytest

from conftest import synthetic_records
from repro.baselines.inoa import INOA
from repro.baselines.signature_home import SignatureHome
from repro.core.config import GEMConfig
from repro.core.gem import GEM, EmbeddingGeofencer
from repro.detection.lof import LocalOutlierFactor
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.algorithms import ALGORITHM_NAMES, ALGORITHM_SPECS, arm_spec, make_algorithm
from repro.pipeline import (
    ComponentSpec,
    PipelineSpec,
    UnknownComponentError,
    build_pipeline,
    get_component,
    infer_spec,
    known_components,
    register_component,
)
from repro.pipeline.registry import _REGISTRY

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1))


class TestComponentSpec:
    def test_params_normalised_to_json_types(self):
        spec = ComponentSpec("autoencoder", {"channels": (8, 16, 16, 8)})
        assert spec.params["channels"] == [8, 16, 16, 8]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ComponentSpec("")

    def test_from_dict_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            ComponentSpec.from_dict({"name": "lof", "prams": {}})

    def test_unknown_name_lists_known_components(self):
        with pytest.raises(UnknownComponentError) as excinfo:
            ComponentSpec("lofi").resolve("detector")
        message = str(excinfo.value)
        assert "lofi" in message
        for name in ("histogram", "iforest", "lof", "feature-bagging"):
            assert name in message

    def test_unknown_param_lists_accepted(self):
        with pytest.raises(ValueError, match="accepted parameters"):
            ComponentSpec("lof", {"seed": 3}).resolve("detector")


class TestPipelineSpec:
    def test_needs_model_or_both_components(self):
        with pytest.raises(ValueError, match="BOTH"):
            PipelineSpec(embedder=ComponentSpec("bisage"))
        with pytest.raises(ValueError, match="BOTH"):
            PipelineSpec(detector=ComponentSpec("lof"))

    def test_model_excludes_components(self):
        with pytest.raises(ValueError, match="cannot also"):
            PipelineSpec(model=ComponentSpec("gem"), detector=ComponentSpec("lof"))

    def test_model_spec_rejects_pipeline_update_knobs(self):
        # These knobs would be silently dropped by to_dict; the model's
        # own params are the supported place for them.
        with pytest.raises(ValueError, match="model's params"):
            PipelineSpec(model=ComponentSpec("gem"), self_update=False)
        with pytest.raises(ValueError, match="model's params"):
            PipelineSpec(model=ComponentSpec("gem"), batch_update_size=5)
        gem = build_pipeline(PipelineSpec(model=ComponentSpec(
            "gem", {"self_update": False, "batch_update_size": 5})))
        assert gem.self_update is False and gem.batch_update_size == 5

    def test_self_update_needs_updatable_detector(self):
        spec = PipelineSpec(embedder=ComponentSpec("bisage"),
                            detector=ComponentSpec("lof"))
        with pytest.raises(ValueError, match="self_update"):
            spec.validate()

    def test_unsupported_spec_version_rejected(self):
        with pytest.raises(ValueError, match="version"):
            PipelineSpec.from_dict({"spec_version": 99,
                                    "model": {"name": "gem", "params": {}}})

    def test_from_dict_rejects_stringly_typed_self_update(self):
        with pytest.raises(ValueError, match="boolean"):
            PipelineSpec.from_dict({"embedder": {"name": "bisage"},
                                    "detector": {"name": "histogram"},
                                    "self_update": "false"})

    def test_from_dict_rejects_stringly_typed_batch_size(self):
        with pytest.raises(ValueError, match="integer"):
            PipelineSpec.from_dict({"embedder": {"name": "bisage"},
                                    "detector": {"name": "histogram"},
                                    "batch_update_size": "3"})

    def test_require_state_dict_rejects_non_persistable_component(self):
        register_component("detector", "volatile-toy", LocalOutlierFactor, (),
                           supports_state_dict=False)
        try:
            spec = PipelineSpec(embedder=ComponentSpec("imputed-matrix"),
                                detector=ComponentSpec("volatile-toy"),
                                self_update=False)
            spec.validate()  # buildable for in-memory use...
            with pytest.raises(ValueError, match="supports_state_dict"):
                spec.require_state_dict()  # ...but not servable
        finally:
            _REGISTRY.pop(("detector", "volatile-toy"), None)

    def test_json_round_trip_composite(self):
        spec = PipelineSpec(embedder=ComponentSpec("bisage", {"dim": 16}),
                            detector=ComponentSpec("histogram"),
                            self_update=True, batch_update_size=4)
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_describe(self):
        assert ALGORITHM_SPECS["GEM"].describe() == "model gem"
        assert "lof" in ALGORITHM_SPECS["BiSAGE+LOF"].describe()


class TestArmSpecs:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_every_arm_has_a_valid_default_spec(self, name):
        spec = ALGORITHM_SPECS[name]
        spec.validate()

    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_spec_json_round_trip_per_arm(self, name):
        spec = arm_spec(name, gem_config=FAST_CONFIG)
        rebuilt = PipelineSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec

    def test_seedless_arm_rejects_explicit_seed(self):
        with pytest.raises(ValueError, match="seed"):
            arm_spec("MDS+OD", seed=7)

    def test_dimless_arm_rejects_explicit_dim(self):
        with pytest.raises(ValueError, match="dim"):
            arm_spec("GEM(no-BiSAGE)", dim=16)

    def test_shim_warns_instead_of_raising(self):
        with pytest.warns(UserWarning, match="seed"):
            model = make_algorithm("MDS+OD", seed=7)
        assert isinstance(model, EmbeddingGeofencer)

    def test_seeded_arm_consumes_seed_silently(self):
        spec = arm_spec("BiSAGE+LOF", seed=7)
        assert spec.embedder.params["seed"] == 7

    def test_unknown_arm_raises(self):
        with pytest.raises(ValueError, match="MagicNet"):
            arm_spec("MagicNet")

    def test_make_algorithm_types(self):
        assert isinstance(make_algorithm("GEM"), GEM)
        assert isinstance(make_algorithm("SignatureHome"), SignatureHome)
        assert isinstance(make_algorithm("INOA"), INOA)
        assert isinstance(make_algorithm("BiSAGE+LOF"), EmbeddingGeofencer)


class TestBuild:
    def test_build_stamps_spec(self):
        spec = arm_spec("BiSAGE+LOF", gem_config=FAST_CONFIG)
        pipeline = build_pipeline(spec)
        assert pipeline.spec == spec
        assert isinstance(pipeline.detector, LocalOutlierFactor)

    def test_built_arm_matches_paper_wiring(self):
        gem = build_pipeline(arm_spec("GEM", gem_config=FAST_CONFIG))
        assert gem.config.bisage.dim == 32  # arm default dim overrides FAST's 8
        plain = build_pipeline(arm_spec("GEM(plain-HBOS)", gem_config=FAST_CONFIG))
        assert plain.detector.config.enhanced is False
        assert plain.self_update is False

    def test_infer_spec_for_builtins(self):
        assert infer_spec(GEM(FAST_CONFIG)).model.name == "gem"
        assert infer_spec(SignatureHome()).model.name == "signature-home"
        assert infer_spec(INOA()).model.name == "inoa"

    def test_infer_spec_rejects_unknown_models(self):
        with pytest.raises(TypeError, match="PipelineSpec"):
            infer_spec(object())

    def test_infer_spec_prefers_stamped_spec(self):
        spec = arm_spec("GEM", gem_config=FAST_CONFIG)
        assert infer_spec(build_pipeline(spec)) == spec


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_component("detector", "lof", LocalOutlierFactor, ())

    def test_known_components_filter(self):
        names = {entry.name for entry in known_components("detector")}
        assert names == {"histogram", "lof", "iforest", "feature-bagging"}

    def test_capabilities_declared(self):
        assert get_component("detector", "histogram").supports_update
        assert not get_component("detector", "lof").supports_update
        assert get_component("embedder", "bisage").supports_state_dict

    def test_custom_component_builds_and_serves_specs(self):
        class MeanDetector:
            """Toy detector: distance from the training mean."""

            def __init__(self, scale=1.0):
                self.scale = scale
                self._mean = None

            def fit(self, embeddings):
                self._mean = embeddings.mean(axis=0)
                return self

            def decision_scores(self, embeddings):
                return self.scale * ((embeddings - self._mean) ** 2).sum(axis=1)

            def is_outlier(self, embeddings):
                return self.decision_scores(embeddings) > 1e9

        register_component("detector", "mean-toy", MeanDetector, ("scale",),
                           description="test-only")
        try:
            spec = PipelineSpec(embedder=ComponentSpec("imputed-matrix"),
                                detector=ComponentSpec("mean-toy", {"scale": 2.0}),
                                self_update=False)
            pipeline = build_pipeline(spec)
            pipeline.fit(synthetic_records(12, seed=1))
            assert pipeline.detector.scale == 2.0
            record = synthetic_records(1, seed=2)[0]
            assert pipeline.observe(record).score >= 0.0
        finally:
            _REGISTRY.pop(("detector", "mean-toy"), None)
