"""Checkpoint format: round-trip identity, versioning, failure modes."""

import json

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.detection.histogram import HistogramConfig, HistogramDetector
from repro.embedding.bisage import BiSAGE, BiSAGEConfig
from repro.graph.bipartite import WeightedBipartiteGraph
from repro.graph.builder import build_graph
from repro.serve.checkpoint import (
    ARRAYS_PREFIX,
    ARRAYS_SUFFIX,
    CHECKPOINT_VERSION,
    MANIFEST_NAME,
    CheckpointError,
    flatten_state,
    load_checkpoint,
    read_manifest,
    save_checkpoint,
    unflatten_state,
)


def arrays_path(directory):
    manifest = read_manifest(directory)
    return directory / manifest["arrays_file"]

FAST_BISAGE = BiSAGEConfig(dim=8, epochs=1, seed=0)
FAST_CONFIG = GEMConfig(bisage=FAST_BISAGE)


def fitted_gem(center: float = 2.0, n: int = 30, seed: int = 0,
               config: GEMConfig = FAST_CONFIG) -> GEM:
    return GEM(config).fit(synthetic_records(n, seed=seed, center=center))


class TestFlatten:
    def test_roundtrip_nested(self):
        state = {"a": {"b": np.arange(3), "c": 1.5}, "d": [1, 2], "e": {"f": {"g": True}}}
        arrays, leaves = flatten_state(state)
        assert set(arrays) == {"a/b"}
        assert leaves["a/c"] == 1.5 and leaves["e/f/g"] is True
        rebuilt = unflatten_state(arrays, leaves)
        assert rebuilt["d"] == [1, 2]
        np.testing.assert_array_equal(rebuilt["a"]["b"], np.arange(3))

    def test_separator_in_key_rejected(self):
        with pytest.raises(ValueError, match="/"):
            flatten_state({"bad/key": 1})

    def test_numpy_scalars_become_json(self):
        _, leaves = flatten_state({"n": np.int64(3), "x": np.float64(0.5), "b": np.bool_(True)})
        assert json.dumps(leaves)  # all JSON-safe
        assert leaves == {"n": 3, "x": 0.5, "b": True}


class TestGraphState:
    def test_roundtrip_preserves_structure(self):
        graph = build_graph(synthetic_records(12, seed=3))
        clone = WeightedBipartiteGraph.from_state_dict(graph.state_dict())
        assert clone.num_records == graph.num_records
        assert clone.num_macs == graph.num_macs
        assert clone.num_edges == graph.num_edges
        assert clone.known_macs() == graph.known_macs()
        assert list(clone.edges()) == list(graph.edges())
        for j in range(graph.num_macs):
            ours, theirs = graph.neighbors("V", j), clone.neighbors("V", j)
            np.testing.assert_array_equal(ours[0], theirs[0])
            np.testing.assert_array_equal(ours[1], theirs[1])

    def test_inconsistent_edges_rejected(self):
        state = build_graph(synthetic_records(5, seed=0)).state_dict()
        state["edge_weights"] = state["edge_weights"][:-1]
        with pytest.raises(ValueError, match="inconsistent"):
            WeightedBipartiteGraph.from_state_dict(state)

    def test_unknown_mac_index_rejected(self):
        state = build_graph(synthetic_records(5, seed=0)).state_dict()
        state["mac_names"] = state["mac_names"][:1]
        with pytest.raises(ValueError, match="MAC"):
            WeightedBipartiteGraph.from_state_dict(state)

    def test_non_monotonic_indptr_rejected(self):
        state = build_graph(synthetic_records(5, seed=0)).state_dict()
        indptr = state["record_indptr"].copy()
        indptr[1], indptr[2] = indptr[2], indptr[1]   # interior decrease
        state["record_indptr"] = indptr
        with pytest.raises(ValueError, match="inconsistent"):
            WeightedBipartiteGraph.from_state_dict(state)

    def test_negative_mac_index_rejected(self):
        state = build_graph(synthetic_records(5, seed=0)).state_dict()
        state["edge_macs"] = state["edge_macs"].copy()
        state["edge_macs"][0] = -1
        with pytest.raises(ValueError, match="MAC"):
            WeightedBipartiteGraph.from_state_dict(state)


class TestBiSAGEState:
    def test_embeddings_identical_after_reload(self):
        records = synthetic_records(25, seed=1)
        graph = build_graph(records)
        model = BiSAGE(FAST_BISAGE).fit(graph)
        clone = BiSAGE(FAST_BISAGE).load_state_dict(
            model.state_dict(), WeightedBipartiteGraph.from_state_dict(graph.state_dict()))
        np.testing.assert_array_equal(clone.record_embeddings(), model.record_embeddings())
        readings = synthetic_records(1, seed=77)[0].readings
        np.testing.assert_array_equal(clone.embed_readings(readings),
                                      model.embed_readings(readings))

    def test_config_mismatch_rejected(self):
        graph = build_graph(synthetic_records(10, seed=0))
        model = BiSAGE(FAST_BISAGE).fit(graph)
        with pytest.raises(ValueError, match="config"):
            BiSAGE(BiSAGEConfig(dim=4, epochs=1, seed=0)).load_state_dict(
                model.state_dict(), graph)


class TestHistogramState:
    def test_scores_identical_after_reload(self, rng):
        data = rng.normal(size=(60, 6))
        detector = HistogramDetector(HistogramConfig()).fit(data)
        detector.update(rng.normal(size=(5, 6)))
        clone = HistogramDetector(HistogramConfig()).load_state_dict(detector.state_dict())
        queries = rng.normal(size=(20, 6))
        np.testing.assert_array_equal(clone.decision_scores(queries),
                                      detector.decision_scores(queries))
        assert clone.num_updates == detector.num_updates
        assert clone.num_samples == detector.num_samples

    def test_config_mismatch_rejected(self, rng):
        detector = HistogramDetector(HistogramConfig()).fit(rng.normal(size=(30, 4)))
        other = HistogramDetector(HistogramConfig(num_bins=7))
        with pytest.raises(ValueError, match="config"):
            other.load_state_dict(detector.state_dict())


class TestGEMCheckpoint:
    def test_decision_scores_and_decisions_identical(self, tmp_path):
        gem = fitted_gem()
        held = synthetic_records(15, num_macs=10, seed=9, center=2.0)
        save_checkpoint(gem, tmp_path / "ckpt", metadata={"home": "apt-3"})
        clone = load_checkpoint(tmp_path / "ckpt")
        assert [gem.score(r) for r in held] == [clone.score(r) for r in held]
        # Held-out observe stream: decisions (and self-update behaviour)
        # must track the original exactly.
        stream = synthetic_records(10, seed=21, center=2.0)
        assert gem.observe_stream(stream) == clone.observe_stream(stream)
        assert gem.detector.num_samples == clone.detector.num_samples

    def test_partial_update_buffer_survives(self, tmp_path):
        from dataclasses import replace
        gem = fitted_gem(config=replace(FAST_CONFIG, batch_update_size=50))
        gem.observe_stream(synthetic_records(10, seed=5, center=2.0), flush=False)
        assert gem.pending_updates > 0
        save_checkpoint(gem, tmp_path / "ckpt")
        clone = load_checkpoint(tmp_path / "ckpt")
        assert clone.pending_updates == gem.pending_updates

    def test_manifest_contents(self, tmp_path):
        save_checkpoint(fitted_gem(), tmp_path / "ckpt", metadata={"note": "x"})
        manifest = read_manifest(tmp_path / "ckpt")
        assert manifest["format_version"] == CHECKPOINT_VERSION
        assert manifest["model_class"] == "GEM"
        assert manifest["metadata"] == {"note": "x"}
        assert manifest["array_keys"]

    def test_unfitted_model_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="unfitted"):
            save_checkpoint(GEM(FAST_CONFIG), tmp_path / "ckpt")

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            load_checkpoint(tmp_path / "nope")

    def test_future_version_rejected(self, tmp_path):
        from repro.serve.checkpoint import SUPPORTED_VERSIONS
        save_checkpoint(fitted_gem(), tmp_path / "ckpt")
        path = tmp_path / "ckpt" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["format_version"] = max(SUPPORTED_VERSIONS) + 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(tmp_path / "ckpt")

    def test_torn_checkpoint_detected(self, tmp_path):
        save_checkpoint(fitted_gem(), tmp_path / "ckpt")
        path = tmp_path / "ckpt" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["array_keys"] = manifest["array_keys"][:-1]
        path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="torn"):
            load_checkpoint(tmp_path / "ckpt")

    def test_crash_before_manifest_commit_keeps_old_checkpoint(self, tmp_path):
        # Simulate a crash after the new arrays file landed but before
        # the manifest commit: the old checkpoint must load untouched.
        gem = fitted_gem()
        save_checkpoint(gem, tmp_path / "ckpt")
        held = synthetic_records(5, seed=40, center=2.0)
        old_scores = [gem.score(r) for r in held]
        orphan = tmp_path / "ckpt" / f"{ARRAYS_PREFIX}deadbeef{ARRAYS_SUFFIX}"
        orphan.write_bytes(b"half-written garbage")
        clone = load_checkpoint(tmp_path / "ckpt")
        assert [clone.score(r) for r in held] == old_scores
        # The next successful save cleans the orphan up.
        save_checkpoint(gem, tmp_path / "ckpt")
        assert not orphan.exists()

    def test_mixed_generation_files_detected(self, tmp_path):
        # A manually recombined manifest + arrays pair from different
        # saves (same structural key names) is rejected by the nonce.
        gem = fitted_gem()
        save_checkpoint(gem, tmp_path / "ckpt")
        old_arrays = arrays_path(tmp_path / "ckpt")
        blob = old_arrays.read_bytes()
        gem.observe(synthetic_records(1, seed=33, center=2.0)[0])
        save_checkpoint(gem, tmp_path / "ckpt")
        arrays_path(tmp_path / "ckpt").write_bytes(blob)
        with pytest.raises(CheckpointError, match="different saves"):
            load_checkpoint(tmp_path / "ckpt")

    def test_corrupt_manifest_detected(self, tmp_path):
        save_checkpoint(fitted_gem(), tmp_path / "ckpt")
        (tmp_path / "ckpt" / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(tmp_path / "ckpt")

    def test_missing_state_leaf_raises_checkpoint_error(self, tmp_path):
        # Structurally invalid state surfaces as CheckpointError, not a
        # bare KeyError the fleet's error handling would miss.
        save_checkpoint(fitted_gem(), tmp_path / "ckpt")
        path = tmp_path / "ckpt" / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        del manifest["state"]["self_update"]
        path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="structurally invalid"):
            load_checkpoint(tmp_path / "ckpt")

    def test_crashed_save_temp_files_cleaned_up(self, tmp_path):
        save_checkpoint(fitted_gem(), tmp_path / "ckpt")
        orphan = tmp_path / "ckpt" / f".{ARRAYS_PREFIX}old{ARRAYS_SUFFIX}.abc123"
        orphan.write_bytes(b"crashed temp")
        save_checkpoint(fitted_gem(), tmp_path / "ckpt")
        assert not orphan.exists()

    def test_missing_arrays_detected(self, tmp_path):
        save_checkpoint(fitted_gem(), tmp_path / "ckpt")
        arrays_path(tmp_path / "ckpt").unlink()
        with pytest.raises(CheckpointError, match="missing its arrays file"):
            load_checkpoint(tmp_path / "ckpt")

    def test_load_into_mismatched_pipeline_config_rejected(self, tmp_path):
        from dataclasses import replace
        gem = fitted_gem()
        save_checkpoint(gem, tmp_path / "ckpt")
        other = GEM(replace(FAST_CONFIG, batch_update_size=5))
        with pytest.raises(ValueError, match="config"):
            other.load_state_dict(gem.state_dict())

    def test_corrupt_state_leaves_live_model_untouched(self):
        # All-or-nothing restore: a bad detector payload must not leave
        # a live model with a new embedder and the old detector.
        gem = fitted_gem()
        held = synthetic_records(5, seed=41, center=2.0)
        before = [gem.score(r) for r in held]
        state = fitted_gem(seed=1).state_dict()
        state["detector"]["data"] = np.full_like(state["detector"]["data"], np.nan)
        with pytest.raises(ValueError):
            gem.load_state_dict(state)
        assert [gem.score(r) for r in held] == before
