"""``python -m repro`` CLI: spec emit, train, eval, serve, components."""

import json

import pytest

from conftest import synthetic_records
from repro.cli import main
from repro.core.io import record_to_dict, save_records
from repro.serve import ModelRegistry, load_checkpoint


def run(*argv):
    return main(list(argv))


class TestComponentsAndSpec:
    def test_components_lists_registry(self, capsys):
        assert run("components") == 0
        out = capsys.readouterr().out
        for name in ("bisage", "histogram", "lof", "gem", "inoa"):
            assert name in out

    def test_spec_emits_valid_json(self, tmp_path, capsys):
        spec_path = tmp_path / "arm.json"
        assert run("spec", "--arm", "BiSAGE+LOF", "--dim", "16",
                   "-o", str(spec_path)) == 0
        data = json.loads(spec_path.read_text())
        assert data["embedder"]["name"] == "bisage"
        assert data["embedder"]["params"]["dim"] == 16
        assert data["detector"]["name"] == "lof"


class TestTrainEvalServe:
    @pytest.fixture()
    def records_file(self, tmp_path):
        path = tmp_path / "train.jsonl"
        save_records(synthetic_records(30, seed=0, center=2.0), path)
        return path

    def test_train_from_spec_file_to_checkpoint(self, tmp_path, records_file, capsys):
        spec_path = tmp_path / "spec.json"
        assert run("spec", "--arm", "GEM(no-BiSAGE)", "-o", str(spec_path)) == 0
        out_dir = tmp_path / "ckpt"
        assert run("train", "--spec", str(spec_path),
                   "--records", str(records_file), "--out", str(out_dir)) == 0
        model = load_checkpoint(out_dir)
        assert model.spec.embedder.name == "imputed-matrix"

    def test_train_into_registry_then_serve(self, tmp_path, records_file, capsys):
        registry_root = tmp_path / "reg"
        assert run("train", "--arm", "GEM(no-BiSAGE)",
                   "--records", str(records_file),
                   "--registry", str(registry_root), "--tenant", "t1") == 0
        assert "t1" in ModelRegistry(registry_root)

        events = tmp_path / "events.jsonl"
        with events.open("w") as handle:
            for record in synthetic_records(4, seed=5, center=2.0):
                event = record_to_dict(record)
                event["tenant"] = "t1"
                handle.write(json.dumps(event) + "\n")
        out_path = tmp_path / "decisions.jsonl"
        assert run("serve", "--registry", str(registry_root),
                   "--events", str(events), "-o", str(out_path)) == 0
        decisions = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert len(decisions) == 4
        assert all(d["tenant"] == "t1" and isinstance(d["inside"], bool)
                   for d in decisions)

    def test_train_requires_a_destination(self, records_file, capsys):
        assert run("train", "--arm", "GEM", "--records", str(records_file)) == 2

    def test_eval_quick_writes_metrics_json(self, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.json"
        assert run("eval", "--arms", "GEM(no-BiSAGE)", "--quick",
                   "--json", str(metrics_path)) == 0
        payload = json.loads(metrics_path.read_text())
        assert set(payload) == {"GEM(no-BiSAGE)"}
        assert 0.0 <= payload["GEM(no-BiSAGE)"]["f_in"] <= 1.0

    def test_eval_rejects_unknown_arm(self, capsys):
        assert run("eval", "--arms", "MagicNet") == 2

    def test_eval_list(self, capsys):
        assert run("eval", "--list") == 0
        assert "SignatureHome" in capsys.readouterr().out

    def test_serve_rejects_bad_event(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        events.write_text('{"no_tenant": true}\n')
        assert run("serve", "--registry", str(tmp_path / "reg"),
                   "--events", str(events)) == 2


class TestMaintain:
    @pytest.fixture()
    def registry_root(self, tmp_path):
        """Two refresh-capable tenants trained through the CLI."""
        records_path = tmp_path / "train.jsonl"
        save_records(synthetic_records(30, seed=0, center=2.0), records_path)
        spec_path = tmp_path / "spec.json"
        spec = {"spec_version": 1, "model": {"name": "gem", "params": {
            "bisage": {"dim": 8, "epochs": 1}}}}
        spec_path.write_text(json.dumps(spec))
        root = tmp_path / "reg"
        for tenant in ("t1", "t2"):
            assert run("train", "--spec", str(spec_path),
                       "--records", str(records_path),
                       "--registry", str(root), "--tenant", tenant) == 0
        return root

    def test_dry_run_reports_capability_and_reservoir(self, registry_root, capsys):
        assert run("maintain", "--registry", str(registry_root), "--dry-run") == 0
        out = capsys.readouterr().out
        assert "t1" in out and "t2" in out
        assert "model gem" in out
        assert "yes" in out          # refresh-capable
        assert "30" in out           # reservoir seeded from training records

    def test_refresh_all_tenants(self, registry_root, tmp_path, capsys):
        report = tmp_path / "report.json"
        assert run("maintain", "--registry", str(registry_root),
                   "--json", str(report)) == 0
        payload = json.loads(report.read_text())
        assert set(payload) == {"t1", "t2"}
        for entry in payload.values():
            assert entry["status"] == "refresh"
            assert "refit on 30" in entry["outcome"]

    def test_refresh_is_persisted(self, registry_root, capsys):
        from repro.serve import ModelRegistry
        before = ModelRegistry(registry_root).manifest("t1")["save_id"]
        assert run("maintain", "--registry", str(registry_root),
                   "--tenants", "t1") == 0
        after = ModelRegistry(registry_root).manifest("t1")["save_id"]
        assert after != before

    def test_reprovision_action(self, registry_root, capsys):
        assert run("maintain", "--registry", str(registry_root),
                   "--tenants", "t1", "--action", "reprovision") == 0
        assert "refitted GEM from reservoir" in capsys.readouterr().out

    def test_tenant_without_reservoir_is_skipped(self, tmp_path, capsys):
        """Legacy checkpoints (no reservoir) report, not crash."""
        from repro.serve import ModelRegistry
        from repro.pipeline import build_pipeline, PipelineSpec
        spec = PipelineSpec.from_dict({"model": {"name": "gem", "params": {
            "bisage": {"dim": 8, "epochs": 1}}}})
        model = build_pipeline(spec)
        model.fit(synthetic_records(20, seed=0, center=2.0))
        root = tmp_path / "reg"
        ModelRegistry(root).save("legacy", model)
        assert run("maintain", "--registry", str(root)) == 0
        out = capsys.readouterr().out
        assert "skipped" in out

    def test_dry_run_handles_format1_checkpoint(self, tmp_path, capsys):
        """Format-1 manifests (no embedded spec) migrate in the report."""
        from repro.core.config import GEMConfig
        from repro.core.gem import GEM
        from repro.embedding.bisage import BiSAGEConfig
        from repro.serve import save_checkpoint
        from repro.serve.checkpoint import MANIFEST_NAME
        model = GEM(GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1)))
        model.fit(synthetic_records(20, seed=0, center=2.0))
        root = tmp_path / "reg"
        directory = save_checkpoint(model, root / "legacy")
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        del manifest["pipeline_spec"]
        manifest_path.write_text(json.dumps(manifest))
        assert run("maintain", "--registry", str(root), "--dry-run") == 0
        out = capsys.readouterr().out
        assert "legacy" in out and "model gem" in out

    def test_unknown_tenant_exits_two(self, registry_root, capsys):
        assert run("maintain", "--registry", str(registry_root),
                   "--tenants", "nobody") == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_registry_exits_two(self, tmp_path, capsys):
        assert run("maintain", "--registry", str(tmp_path / "empty")) == 2


class TestDrift:
    def test_small_drift_run_emits_trajectories(self, tmp_path, capsys):
        json_path = tmp_path / "drift.json"
        assert run("drift", "--user", "1", "--epochs", "3", "--sessions", "2",
                   "--session-s", "20", "--train-s", "60", "--shock-epoch", "1",
                   "--quick", "--no-baseline", "--json", str(json_path)) == 0
        payload = json.loads(json_path.read_text())
        assert payload["shock_epoch"] == 1
        assert [e["name"] for e in payload["workload"]["schedules"]] == \
               ["ap-churn", "tx-power-drift", "device-gain-drift", "churn-shock"]
        (online,) = payload["runs"]
        assert online["label"] == "online"
        assert [m["epoch"] for m in online["epochs"]] == [0, 1, 2]
        for m in online["epochs"]:
            assert 0.0 <= m["fpr"] <= 1.0
            assert m["auc"] is None or 0.0 <= m["auc"] <= 1.0
        assert "time-to-recovery (online)" in capsys.readouterr().out

    def test_drift_run_is_deterministic(self, tmp_path, capsys):
        args = ("drift", "--user", "1", "--epochs", "3", "--sessions", "2",
                "--session-s", "20", "--train-s", "60", "--shock-epoch", "1",
                "--quick", "--no-baseline")
        assert run(*args, "--json", str(tmp_path / "a.json")) == 0
        assert run(*args, "--json", str(tmp_path / "b.json")) == 0
        assert json.loads((tmp_path / "a.json").read_text()) == \
               json.loads((tmp_path / "b.json").read_text())

    def test_drift_spec_file_with_drift_block(self, tmp_path, capsys):
        spec = {
            "spec_version": 1,
            "model": {"name": "gem", "params": {
                "bisage": {"dim": 8, "epochs": 1}}},
            "drift": {"num_epochs": 3, "seed": 0, "schedules": [
                {"name": "ap-churn", "params": {"rate": 0.2}},
                {"name": "churn-shock", "params": {"epoch": 2, "fraction": 0.4}},
            ]},
        }
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        json_path = tmp_path / "out.json"
        assert run("drift", "--spec", str(spec_path), "--user", "1",
                   "--sessions", "2", "--session-s", "20", "--train-s", "60",
                   "--no-baseline", "--json", str(json_path)) == 0
        payload = json.loads(json_path.read_text())
        # The spec's drift block wins over the CLI flags.
        assert payload["shock_epoch"] == 2
        assert len(payload["runs"][0]["epochs"]) == 3

    def test_drift_bad_shock_epoch(self, capsys):
        assert run("drift", "--epochs", "3", "--shock-epoch", "5") == 2
        assert "error:" in capsys.readouterr().err

    def test_drift_spec_missing_schedule_param_exits_two(self, tmp_path, capsys):
        """Operator mistakes exit 2 with one stderr line, never a traceback."""
        spec = {"spec_version": 1, "model": {"name": "gem", "params": {}},
                "drift": {"num_epochs": 3, "schedules": [
                    {"name": "churn-shock", "params": {"fraction": 0.4}}]}}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        assert run("drift", "--spec", str(spec_path), "--user", "1",
                   "--no-baseline") == 2
        err = capsys.readouterr().err
        assert "error:" in err and "churn-shock" in err

    def test_drift_spec_without_shock_reports_no_recovery(self, tmp_path, capsys):
        spec = {"spec_version": 1,
                "model": {"name": "gem", "params": {"bisage": {"dim": 8, "epochs": 1}}},
                "drift": {"num_epochs": 2, "schedules": [
                    {"name": "ap-churn", "params": {"rate": 0.2}}]}}
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(spec))
        json_path = tmp_path / "out.json"
        assert run("drift", "--spec", str(spec_path), "--user", "1",
                   "--sessions", "2", "--session-s", "20", "--train-s", "60",
                   "--no-baseline", "--json", str(json_path)) == 0
        out = capsys.readouterr().out
        assert "time-to-recovery" not in out
        payload = json.loads(json_path.read_text())
        # No churn-shock schedule: nothing to fabricate a recovery from.
        assert payload["shock_epoch"] is None
        assert payload["recovery_epochs"] == {}
        assert len(payload["runs"][0]["epochs"]) == 2

    @pytest.mark.slow
    def test_quick_drift_shows_recovery_against_static_baseline(self, tmp_path, capsys):
        """The acceptance shape: online GEM recovers from the churn shock,
        the frozen static snapshot stays degraded."""
        json_path = tmp_path / "drift.json"
        assert run("drift", "--quick", "--fleet", "--json", str(json_path)) == 0
        payload = json.loads(json_path.read_text())
        runs = {r["label"]: r for r in payload["runs"]}
        assert set(runs) == {"online", "static", "fleet"}
        assert payload["recovery_epochs"]["online"] is not None
        last_on = runs["online"]["epochs"][-1]
        last_off = runs["static"]["epochs"][-1]
        assert last_on.get("auc") >= last_off.get("auc") + 0.02
        assert last_off["fpr"] >= last_on["fpr"] + 0.3
        # The fleet replay (forced evict/reload mid-stream) matches the
        # plain online replay bit for bit.
        assert runs["fleet"]["epochs"] == runs["online"]["epochs"]


class TestErrorHandling:
    """Operator mistakes exit 2 with one stderr line, never a traceback."""

    def test_spec_unknown_arm(self, capsys):
        assert run("spec", "--arm", "Nope") == 2
        assert "error:" in capsys.readouterr().err

    def test_train_missing_records_file(self, tmp_path, capsys):
        assert run("train", "--arm", "GEM", "--records",
                   str(tmp_path / "missing.jsonl"), "--out", str(tmp_path / "o")) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_unknown_tenant(self, tmp_path, capsys):
        events = tmp_path / "events.jsonl"
        events.write_text('{"tenant": "ghost", "rss": {"aa": -50.0}}\n')
        assert run("serve", "--registry", str(tmp_path / "reg"),
                   "--events", str(events)) == 2
        assert "error:" in capsys.readouterr().err


class TestRuntimeDaemon:
    @pytest.fixture()
    def served_world(self, tmp_path):
        """A registry with one GEM tenant plus an event stream for it."""
        records_path = tmp_path / "train.jsonl"
        save_records(synthetic_records(30, seed=0, center=2.0), records_path)
        registry_root = tmp_path / "reg"
        assert run("train", "--arm", "GEM", "--quick",
                   "--records", str(records_path),
                   "--registry", str(registry_root), "--tenant", "t1") == 0
        events = tmp_path / "events.jsonl"
        with events.open("w") as handle:
            for record in synthetic_records(24, seed=5, center=2.0):
                event = record_to_dict(record)
                event["tenant"] = "t1"
                handle.write(json.dumps(event) + "\n")
        return registry_root, events

    def test_runtime_replays_with_background_maintenance(self, tmp_path,
                                                         served_world, capsys):
        registry_root, events = served_world
        policy_path = tmp_path / "policy.json"
        policy_path.write_text('{"check_every": 4, "refresh_every": 8}\n')
        out_path = tmp_path / "decisions.jsonl"
        assert run("runtime", "--registry", str(registry_root),
                   "--events", str(events), "--shards", "2",
                   "--policy", str(policy_path), "--interval", "0.01",
                   "-o", str(out_path)) == 0
        decisions = [json.loads(line) for line in out_path.read_text().splitlines()]
        assert len(decisions) == 24
        err = capsys.readouterr().err
        assert "across 2 shard(s)" in err
        assert "scheduler:" in err and "drained" in err

    def test_serve_daemon_alias_serial_mode(self, tmp_path, served_world, capsys):
        registry_root, events = served_world
        policy_path = tmp_path / "policy.json"
        policy_path.write_text('{"check_every": 4, "refresh_every": 8}\n')
        assert run("serve-daemon", "--registry", str(registry_root),
                   "--events", str(events), "--interval", "0",
                   "--policy", str(policy_path)) == 0
        err = capsys.readouterr().err
        # Serial mode: maintenance ran synchronously at the end, and no
        # background scheduler line was printed.
        assert "refreshes=" in err
        assert "scheduler:" not in err

    def test_runtime_decisions_match_serve(self, tmp_path, served_world, capsys):
        import shutil
        registry_root, events = served_world
        # Separate registry copies: each replay advances its tenant's
        # checkpoint, so sharing one root would chain the streams.
        runtime_root = tmp_path / "reg-runtime"
        shutil.copytree(registry_root, runtime_root)
        serve_out = tmp_path / "serve.jsonl"
        runtime_out = tmp_path / "runtime.jsonl"
        assert run("serve", "--registry", str(registry_root),
                   "--events", str(events), "-o", str(serve_out)) == 0
        assert run("runtime", "--registry", str(runtime_root),
                   "--events", str(events), "--shards", "1",
                   "--interval", "0", "--no-incremental",
                   "-o", str(runtime_out)) == 0
        assert runtime_out.read_text() == serve_out.read_text()

    def test_runtime_missing_events_file(self, tmp_path, capsys):
        assert run("runtime", "--registry", str(tmp_path / "reg"),
                   "--events", str(tmp_path / "missing.jsonl")) == 2
        assert "error:" in capsys.readouterr().err


class TestObservabilityCLI:
    @pytest.fixture()
    def metrics_file(self, tmp_path, capsys):
        """Run the runtime daemon with --metrics-out; return the JSONL."""
        records_path = tmp_path / "train.jsonl"
        save_records(synthetic_records(30, seed=0, center=2.0), records_path)
        registry_root = tmp_path / "reg"
        assert run("train", "--arm", "GEM", "--quick",
                   "--records", str(records_path),
                   "--registry", str(registry_root), "--tenant", "t1") == 0
        events = tmp_path / "events.jsonl"
        with events.open("w") as handle:
            for record in synthetic_records(12, seed=5, center=2.0):
                event = record_to_dict(record)
                event["tenant"] = "t1"
                handle.write(json.dumps(event) + "\n")
        metrics_path = tmp_path / "metrics.jsonl"
        assert run("runtime", "--registry", str(registry_root),
                   "--events", str(events), "--interval", "0",
                   "--metrics-out", str(metrics_path)) == 0
        assert "metrics snapshots appended to" in capsys.readouterr().err
        return metrics_path

    def test_metrics_out_appends_parseable_snapshots(self, metrics_file):
        lines = metrics_file.read_text().splitlines()
        assert len(lines) >= 1          # at least the final stop() snapshot
        snapshot = json.loads(lines[-1])
        assert "at" in snapshot
        families = snapshot["families"]
        assert "repro_decisions_total" in families
        assert "repro_op_seconds" in families
        assert set(snapshot["health"]) >= {"stuck_refresh", "decision_bus_depth"}

    def test_obs_render_summary(self, metrics_file, capsys):
        assert run("obs", "render", str(metrics_file)) == 0
        out = capsys.readouterr().out
        assert "Latency histograms" in out
        assert "Counters and gauges" in out
        assert "Health probes" in out
        assert "repro_op_seconds" in out

    def test_obs_render_prometheus(self, metrics_file, capsys):
        assert run("obs", "render", str(metrics_file),
                   "--format", "prometheus") == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_op_seconds histogram" in out
        assert 'le="+Inf"' in out

    def test_obs_render_json_to_file(self, metrics_file, tmp_path, capsys):
        out_path = tmp_path / "snapshot.json"
        assert run("obs", "render", str(metrics_file),
                   "--format", "json", "-o", str(out_path)) == 0
        assert "wrote" in capsys.readouterr().out
        snapshot = json.loads(out_path.read_text())
        assert "families" in snapshot

    def test_obs_render_line_selection(self, metrics_file, capsys):
        # --line 1 (first snapshot) and --line 0 (last) both work.
        assert run("obs", "render", str(metrics_file), "--line", "1") == 0
        capsys.readouterr()
        assert run("obs", "render", str(metrics_file), "--line", "99") == 2
        assert "out of range" in capsys.readouterr().err

    def test_obs_render_missing_file(self, tmp_path, capsys):
        assert run("obs", "render", str(tmp_path / "nope.jsonl")) == 2
        assert "no such metrics file" in capsys.readouterr().err

    def test_obs_render_empty_file(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert run("obs", "render", str(empty)) == 2
        assert "no metrics snapshots" in capsys.readouterr().err

    @staticmethod
    def snapshot_line(at, decisions, resident):
        return json.dumps({"at": at, "families": {
            "repro_decisions_total": {
                "type": "counter", "help": "", "labels": ["shard"],
                "series": [{"labels": {"shard": "0"}, "value": decisions}]},
            "repro_tenants_resident": {
                "type": "gauge", "help": "", "labels": ["shard"],
                "series": [{"labels": {"shard": "0"}, "value": resident}]},
        }}) + "\n"

    def test_obs_render_diff_two_files(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(self.snapshot_line(100.0, 10, 2))
        b.write_text(self.snapshot_line(110.0, 15, 2))
        assert run("obs", "render", str(a), str(b), "--diff") == 0
        out = capsys.readouterr().out
        assert "Snapshot deltas over 10.00s" in out
        assert "repro_decisions_total" in out
        assert "0.5" in out                 # 5 decisions / 10s
        # The unchanged gauge still shows its level; value column = 2.
        assert "repro_tenants_resident" in out

    def test_obs_render_diff_single_trail(self, tmp_path, capsys):
        trail = tmp_path / "trail.jsonl"
        trail.write_text(self.snapshot_line(100.0, 10, 2)
                         + self.snapshot_line(105.0, 30, 3))
        assert run("obs", "render", str(trail), "--diff") == 0
        out = capsys.readouterr().out
        assert "Snapshot deltas over 5.00s" in out
        assert "20" in out and "4" in out   # delta and rate/s

    def test_obs_render_diff_json(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        a.write_text(self.snapshot_line(100.0, 10, 2))
        b.write_text(self.snapshot_line(110.0, 15, 4))
        assert run("obs", "render", str(a), str(b), "--diff",
                   "--format", "json") == 0
        diff = json.loads(capsys.readouterr().out)
        assert diff["interval_seconds"] == 10.0
        family = diff["families"]["repro_decisions_total"]
        assert family["series"][0]["delta"] == 5
        assert family["series"][0]["rate"] == pytest.approx(0.5)
        gauge = diff["families"]["repro_tenants_resident"]["series"][0]
        assert (gauge["delta"], gauge["value"]) == (2, 4)

    def test_obs_render_diff_identical_snapshots(self, tmp_path, capsys):
        # Counter-only snapshot: a self-diff is pure noise and says so.
        # (Gauges always render — their level matters even unchanged.)
        trail = tmp_path / "one.jsonl"
        line = json.loads(self.snapshot_line(100.0, 10, 2))
        del line["families"]["repro_tenants_resident"]
        trail.write_text(json.dumps(line) + "\n")
        assert run("obs", "render", str(trail), "--diff") == 0
        assert "(no changes" in capsys.readouterr().out

    def test_obs_render_path_count_errors(self, tmp_path, capsys):
        trail = tmp_path / "t.jsonl"
        trail.write_text(self.snapshot_line(1.0, 1, 1))
        assert run("obs", "render", str(trail), str(trail)) == 2
        assert "one snapshot file, or two with --diff" \
            in capsys.readouterr().err
        assert run("obs", "render", str(trail), str(trail), str(trail),
                   "--diff") == 2
        assert "one snapshot file" in capsys.readouterr().err

    def test_obs_render_diff_rejects_prometheus(self, tmp_path, capsys):
        trail = tmp_path / "t.jsonl"
        trail.write_text(self.snapshot_line(1.0, 1, 1))
        assert run("obs", "render", str(trail), "--diff",
                   "--format", "prometheus") == 2
        assert "no Prometheus exposition form" in capsys.readouterr().err


class TestClusterCLI:
    @pytest.fixture()
    def cluster_world(self, tmp_path):
        """Two provisioned tenants (on different workers of 2) + events."""
        from repro.core import GEM, GEMConfig
        from repro.embedding.bisage import BiSAGEConfig
        from repro.serve import ServingRuntime

        fast = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))
        registry_root = tmp_path / "reg"
        tenants = ["smoke-a", "smoke-d"]    # shard_index(t, 2) = 0 and 1
        with ServingRuntime(registry_root, num_shards=1,
                            model_factory=lambda: GEM(fast),
                            scheduler_interval=None) as runtime:
            for index, tenant in enumerate(tenants):
                runtime.provision(tenant, synthetic_records(
                    25, num_macs=10, seed=index, center=2.0 + index))
        events = tmp_path / "events.jsonl"
        with events.open("w") as handle:
            for position, record in enumerate(synthetic_records(10, num_macs=10,
                                                                seed=77)):
                event = record_to_dict(record)
                event["tenant"] = tenants[position % 2]
                handle.write(json.dumps(event) + "\n")
        return registry_root, events

    def test_cluster_local_replay(self, tmp_path, cluster_world, capsys):
        registry_root, events = cluster_world
        out_path = tmp_path / "decisions.jsonl"
        assert run("cluster", "--registry", str(registry_root),
                   "--events", str(events), "--workers", "2", "--local",
                   "-o", str(out_path)) == 0
        decisions = [json.loads(line)
                     for line in out_path.read_text().splitlines()]
        assert len(decisions) == 10
        assert {d["tenant"] for d in decisions} == {"smoke-a", "smoke-d"}
        err = capsys.readouterr().err
        assert "served 10 events across 2 worker(s)" in err
        assert "worker 0" in err and "worker 1" in err

    def test_cluster_standby_promote_and_metrics(self, tmp_path, cluster_world,
                                                 capsys):
        from repro.serve import ModelRegistry
        registry_root, events = cluster_world
        standby = tmp_path / "standby"
        metrics_path = tmp_path / "metrics.jsonl"
        assert run("cluster", "--registry", str(registry_root),
                   "--events", str(events), "--workers", "2", "--local",
                   "--standby", str(standby), "--promote",
                   "--metrics-out", str(metrics_path),
                   "-o", str(tmp_path / "decisions.jsonl")) == 0
        err = capsys.readouterr().err
        assert "replication:" in err and "rejected" in err
        assert "promoted standby" in err
        # The promoted standby is a complete, loadable registry.
        promoted = ModelRegistry(standby)
        assert sorted(promoted.tenants()) == ["smoke-a", "smoke-d"]
        load_checkpoint(standby / "smoke-a")
        snapshots = [json.loads(line)
                     for line in metrics_path.read_text().splitlines()]
        assert snapshots and "families" in snapshots[-1]
        assert "repro_router_requests_total" in snapshots[-1]["families"]

    def test_cluster_without_registry_or_quick_exits_two(self, capsys):
        assert run("cluster", "--workers", "2") == 2
        assert "--registry and --events" in capsys.readouterr().err

    def test_cluster_promote_needs_standby(self, tmp_path, capsys):
        assert run("cluster", "--registry", str(tmp_path / "reg"),
                   "--events", str(tmp_path / "events.jsonl"),
                   "--promote") == 2
        assert "--promote needs --standby" in capsys.readouterr().err

    def test_cluster_missing_events_file(self, tmp_path, cluster_world, capsys):
        registry_root, _ = cluster_world
        assert run("cluster", "--registry", str(registry_root),
                   "--events", str(tmp_path / "nope.jsonl"), "--local") == 2
        assert "no such events file" in capsys.readouterr().err

    def test_cluster_health_and_live_totals(self, tmp_path, cluster_world,
                                            capsys):
        registry_root, events = cluster_world
        assert run("cluster", "--registry", str(registry_root),
                   "--events", str(events), "--workers", "2", "--local",
                   "--health", "-o", str(tmp_path / "decisions.jsonl")) == 0
        err = capsys.readouterr().err
        # Live Router.stats() aggregate, printed before per-worker lines.
        assert "cluster totals:" in err
        assert "10 observation(s)" in err
        assert "2 resident tenant(s)" in err
        assert "2 live worker(s)" in err
        # Health rollup table: folded grades plus per-worker rows.
        assert "Cluster health: ok" in err
        assert "worker_up" in err and "replication_lag" in err
        for probe_owner in ("cluster", "router", "0", "1"):
            assert probe_owner in err

    def test_cluster_merged_metrics_out(self, tmp_path, cluster_world,
                                        capsys):
        registry_root, events = cluster_world
        metrics_path = tmp_path / "metrics.jsonl"
        assert run("cluster", "--registry", str(registry_root),
                   "--events", str(events), "--workers", "2", "--local",
                   "--metrics-out", str(metrics_path),
                   "-o", str(tmp_path / "decisions.jsonl")) == 0
        capsys.readouterr()
        snapshot = json.loads(metrics_path.read_text().splitlines()[-1])
        families = snapshot["families"]
        decisions = families["repro_decisions_total"]
        assert decisions["labels"] == ["shard", "tenant_class", "result",
                                       "worker"]
        aggregated = sum(e["value"] for e in decisions["series"]
                         if "worker" not in e["labels"])
        per_worker = sum(e["value"] for e in decisions["series"]
                         if "worker" in e["labels"])
        assert aggregated == per_worker == 10
        assert snapshot["health"]["worker_up"]["status"] == "ok"
        # The aggregated JSONL renders through the same obs tooling.
        assert run("obs", "render", str(metrics_path)) == 0
        out = capsys.readouterr().out
        assert "repro_decisions_total" in out
        assert "worker=0" in out or "worker=1" in out


class TestGracefulShutdown:
    def test_signal_sets_flag_and_replay_stops(self, tmp_path):
        import os
        import signal

        from repro.cli import _GracefulShutdown, _replay_events

        events = tmp_path / "events.jsonl"
        with events.open("w") as handle:
            for record in synthetic_records(8, seed=3):
                event = record_to_dict(record)
                event["tenant"] = "t1"
                handle.write(json.dumps(event) + "\n")

        class FakeRuntime:
            def __init__(self):
                self.seen = 0

            def observe(self, tenant, record):
                self.seen += 1
                if self.seen == 3:      # the operator hits ctrl-C mid-replay
                    os.kill(os.getpid(), signal.SIGTERM)
                from repro.core.protocols import GeofenceDecision
                return GeofenceDecision(inside=True, score=0.1)

        fake = FakeRuntime()
        out = tmp_path / "decisions.jsonl"
        with out.open("w") as out_handle:
            with _GracefulShutdown() as shutdown:
                assert not shutdown()
                served = _replay_events(fake.observe, events, out_handle,
                                        should_stop=shutdown)
        assert shutdown() and shutdown.signal_name == "SIGTERM"
        # The in-flight event finished, the rest were skipped cleanly.
        assert served == 3 and fake.seen == 3

    def test_handlers_restored_after_clean_exit(self):
        import signal

        from repro.cli import _GracefulShutdown

        before = signal.getsignal(signal.SIGTERM)
        with _GracefulShutdown() as shutdown:
            assert signal.getsignal(signal.SIGTERM) != before
        assert not shutdown()
        assert signal.getsignal(signal.SIGTERM) == before


class TestConsoleScript:
    def test_entry_point_maps_to_cli_main(self):
        # `pip install .` exposes `repro`; the mapping must point at a
        # real callable even in a source-tree run.
        import tomllib
        from pathlib import Path

        pyproject = Path(__file__).resolve().parents[1] / "pyproject.toml"
        scripts = tomllib.loads(pyproject.read_text())["project"]["scripts"]
        assert scripts["repro"] == "repro.cli:main"
        module_name, _, attr = scripts["repro"].partition(":")
        import importlib
        assert callable(getattr(importlib.import_module(module_name), attr))
