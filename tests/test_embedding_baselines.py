"""GraphSAGE, autoencoder, MDS and the imputed-matrix view."""

import numpy as np
import pytest

from repro.embedding import (
    AutoencoderConfig,
    ClassicalMDS,
    ConvAutoencoder,
    GraphSAGE,
    GraphSAGEConfig,
    MatrixView,
)
from repro.embedding.mds import cosine_distance_matrix, cosine_distances_to
from repro.graph import build_graph

from conftest import make_record, synthetic_records


class TestMatrixView:
    def test_columns_are_mac_union(self):
        records = synthetic_records(10, num_macs=6, seed=0)
        view = MatrixView(records)
        assert view.num_features == len(set(m for r in records for m in r.readings))

    def test_imputation_value(self):
        records = [make_record({"a": -50.0}), make_record({"b": -60.0})]
        view = MatrixView(records)
        matrix = view.transform(records)
        # Each row has one real value and one imputed -120.
        assert (matrix == -120.0).sum() == 2

    def test_unknown_macs_dropped(self):
        view = MatrixView([make_record({"a": -50.0})])
        row = view.transform_one(make_record({"zz": -40.0, "a": -45.0}))
        np.testing.assert_allclose(row, [-45.0])

    def test_coverage(self):
        view = MatrixView([make_record({"a": -50.0})])
        assert view.coverage(make_record({"a": -50.0, "zz": -60.0})) == 0.5
        assert view.coverage(make_record({"zz": -60.0})) == 0.0

    def test_scaling_into_unit_interval(self):
        records = [make_record({"a": -50.0, "b": -120.0})]
        view = MatrixView(records, scale=True)
        row = view.transform_one(records[0])
        assert ((row >= 0) & (row <= 1)).all()
        assert row[view.macs.index("b")] == 0.0

    def test_explicit_universe(self):
        view = MatrixView(macs=["m1", "m2", "m3"])
        assert view.num_features == 3

    def test_empty_universe_rejected(self):
        with pytest.raises(ValueError):
            MatrixView(macs=[])

    def test_needs_records_or_macs(self):
        with pytest.raises(ValueError):
            MatrixView()

    def test_transform_empty_list(self):
        view = MatrixView(macs=["a"])
        assert view.transform([]).shape == (0, 1)


class TestGraphSAGE:
    def test_fit_and_embed(self):
        records = synthetic_records(30, num_macs=8, seed=1)
        graph = build_graph(records)
        model = GraphSAGE(GraphSAGEConfig(dim=8, epochs=2, seed=0)).fit(graph)
        emb = model.record_embeddings()
        assert emb.shape == (30, 8)
        np.testing.assert_allclose(np.linalg.norm(emb, axis=1), 1.0, atol=1e-6)
        assert len(model.loss_history) > 0

    def test_inductive_readings(self):
        records = synthetic_records(20, num_macs=8, seed=2)
        graph = build_graph(records)
        model = GraphSAGE(GraphSAGEConfig(dim=8, epochs=2, seed=0)).fit(graph)
        embedding = model.embed_readings(dict(records[0].readings))
        assert embedding.shape == (8,)
        assert model.embed_readings({"unknown": -50.0}) is None

    def test_deterministic(self):
        records = synthetic_records(15, seed=3)
        cfg = GraphSAGEConfig(dim=8, epochs=2, seed=4)
        a = GraphSAGE(cfg).fit(build_graph(records)).record_embeddings()
        b = GraphSAGE(cfg).fit(build_graph(records)).record_embeddings()
        np.testing.assert_allclose(a, b)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            GraphSAGE().fit(build_graph([]))


class TestConvAutoencoder:
    def test_training_reduces_loss(self):
        rng = np.random.default_rng(0)
        x = rng.random((40, 24))
        model = ConvAutoencoder(24, AutoencoderConfig(dim=8, epochs=10, seed=0))
        model.fit(x)
        assert np.mean(model.loss_history[-5:]) < np.mean(model.loss_history[:5])

    def test_embed_shape(self):
        x = np.random.default_rng(1).random((10, 24))
        model = ConvAutoencoder(24, AutoencoderConfig(dim=6, epochs=2, seed=0)).fit(x)
        assert model.embed(x).shape == (10, 6)
        assert model.embed(x[0]).shape == (1, 6)

    def test_reconstruction_error_per_row(self):
        x = np.random.default_rng(2).random((8, 24))
        model = ConvAutoencoder(24, AutoencoderConfig(dim=6, epochs=2, seed=0)).fit(x)
        errors = model.reconstruction_error(x)
        assert errors.shape == (8,)
        assert (errors >= 0).all()

    def test_wrong_width_rejected(self):
        model = ConvAutoencoder(24, AutoencoderConfig(dim=6, epochs=1, seed=0))
        with pytest.raises(ValueError):
            model.fit(np.zeros((5, 10)))

    def test_empty_fit_rejected(self):
        model = ConvAutoencoder(24, AutoencoderConfig(dim=6, epochs=1, seed=0))
        with pytest.raises(ValueError):
            model.fit(np.zeros((0, 24)))

    def test_requires_four_conv_layers(self):
        with pytest.raises(ValueError, match="four"):
            AutoencoderConfig(channels=(4, 8))


class TestClassicalMDS:
    def test_distance_matrix_properties(self):
        x = np.random.default_rng(0).random((10, 5))
        d = cosine_distance_matrix(x)
        assert d.shape == (10, 10)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-12)
        np.testing.assert_allclose(d, d.T)
        assert (d >= 0).all()

    def test_recovers_cluster_structure(self):
        rng = np.random.default_rng(1)
        a = rng.random((15, 6)) + np.array([10, 0, 0, 0, 0, 0])
        b = rng.random((15, 6)) + np.array([0, 10, 0, 0, 0, 0])
        mds = ClassicalMDS(dim=2).fit(np.vstack([a, b]))
        emb = mds.embedding_
        within = np.linalg.norm(emb[:15] - emb[:15].mean(0), axis=1).mean()
        between = np.linalg.norm(emb[:15].mean(0) - emb[15:].mean(0))
        assert between > within

    def test_out_of_sample_close_to_in_sample(self):
        rng = np.random.default_rng(2)
        x = rng.random((30, 6))
        mds = ClassicalMDS(dim=3).fit(x)
        # Transforming a training row should land near its fitted position.
        projected = mds.transform(x[:5])
        distance = np.linalg.norm(projected - mds.embedding_[:5], axis=1)
        scale = np.linalg.norm(mds.embedding_, axis=1).mean()
        assert (distance < scale).all()

    def test_pads_when_rank_deficient(self):
        x = np.random.default_rng(3).random((4, 3))
        mds = ClassicalMDS(dim=10).fit(x)
        assert mds.embedding_.shape == (4, 10)

    def test_requires_two_rows(self):
        with pytest.raises(ValueError):
            ClassicalMDS(dim=2).fit(np.zeros((1, 3)))

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            ClassicalMDS(dim=2).transform(np.zeros((1, 3)))

    def test_distances_to(self):
        train = np.eye(3)
        query = np.eye(3)[:1]
        d = cosine_distances_to(train, query)
        np.testing.assert_allclose(d, [[0.0, 1.0, 1.0]], atol=1e-12)
