"""Layers: shapes, parameter collection, conv correctness, optimisers."""

import numpy as np
import pytest

from repro.nn import Adam, Conv1d, Linear, Module, Parameter, ReLU, SGD, Sequential, Tensor, ops

from conftest import numerical_gradient


class TestModule:
    def test_parameters_collects_nested(self):
        class Net(Module):
            def __init__(self):
                self.fc1 = Linear(2, 3, rng=0)
                self.stack = Sequential(Linear(3, 3, rng=1), ReLU())
                self.extra = [Parameter(np.zeros(2))]

        net = Net()
        # fc1 (W+b) + inner linear (W+b) + extra = 5 parameters
        assert len(net.parameters()) == 5

    def test_parameters_deduplicates_shared(self):
        shared = Parameter(np.zeros(3))

        class Net(Module):
            def __init__(self):
                self.a = shared
                self.b = shared

        assert len(Net().parameters()) == 1

    def test_zero_grad(self):
        layer = Linear(2, 2, rng=0)
        out = layer(Tensor(np.ones((1, 2))))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self):
        layer = Linear(3, 4, rng=0)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_state_dict_roundtrip(self):
        a = Linear(2, 2, rng=0)
        b = Linear(2, 2, rng=99)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_load_state_dict_shape_mismatch(self):
        a = Linear(2, 2, rng=0)
        b = Linear(2, 3, rng=0)
        with pytest.raises(ValueError):
            b.load_state_dict(a.state_dict())


class TestLinear:
    def test_forward_affine(self):
        layer = Linear(2, 2, rng=0)
        layer.weight.data = np.array([[1.0, 0.0], [0.0, 2.0]])
        layer.bias.data = np.array([1.0, -1.0])
        out = layer(Tensor([[3.0, 4.0]]))
        np.testing.assert_allclose(out.numpy(), [[4.0, 7.0]])

    def test_no_bias(self):
        layer = Linear(2, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 2)

    def test_gradient_matches_numerical(self):
        layer = Linear(3, 2, rng=0)
        x = np.random.default_rng(0).standard_normal((4, 3))
        layer(Tensor(x)).sum().backward()
        w0 = layer.weight.data.copy()

        def loss_at(w):
            saved = layer.weight.data
            layer.weight.data = w
            value = layer(Tensor(x)).numpy().sum()
            layer.weight.data = saved
            return value

        num = numerical_gradient(loss_at, w0)
        np.testing.assert_allclose(layer.weight.grad, num, atol=1e-5)


class TestConv1d:
    def test_output_length(self):
        conv = Conv1d(1, 1, kernel_size=3, stride=2, padding=1, rng=0)
        assert conv.output_length(10) == 5

    def test_forward_matches_manual_convolution(self):
        conv = Conv1d(1, 1, kernel_size=3, stride=1, padding=0, bias=False, rng=0)
        conv.weight.data = np.array([[[1.0, 0.0, -1.0]]])
        x = np.arange(5.0)[None, None, :]
        out = conv(Tensor(x)).numpy()
        # valid conv of [0..4] with kernel [1,0,-1]: x[i] - x[i+2]
        np.testing.assert_allclose(out, [[[-2.0, -2.0, -2.0]]])

    def test_padding_zero_extends(self):
        conv = Conv1d(1, 1, kernel_size=3, stride=1, padding=1, bias=False, rng=0)
        conv.weight.data = np.array([[[0.0, 1.0, 0.0]]])
        x = np.array([[[1.0, 2.0, 3.0]]])
        np.testing.assert_allclose(conv(Tensor(x)).numpy(), x)

    def test_multi_channel_shapes(self):
        conv = Conv1d(3, 5, kernel_size=3, stride=2, padding=1, rng=0)
        out = conv(Tensor(np.zeros((2, 3, 11))))
        assert out.shape == (2, 5, 6)

    def test_rejects_wrong_channels(self):
        conv = Conv1d(2, 1, kernel_size=3, rng=0)
        with pytest.raises(ValueError, match="channels"):
            conv(Tensor(np.zeros((1, 3, 8))))

    def test_rejects_2d_input(self):
        conv = Conv1d(1, 1, kernel_size=3, rng=0)
        with pytest.raises(ValueError, match="batch"):
            conv(Tensor(np.zeros((3, 8))))

    def test_too_short_input(self):
        conv = Conv1d(1, 1, kernel_size=5, rng=0)
        with pytest.raises(ValueError, match="too short"):
            conv(Tensor(np.zeros((1, 1, 3))))

    def test_gradient_matches_numerical(self):
        conv = Conv1d(2, 3, kernel_size=3, stride=2, padding=1, rng=0)
        x_val = np.random.default_rng(1).standard_normal((2, 2, 7))
        x = Tensor(x_val, requires_grad=True)
        conv(x).sum().backward()
        num = numerical_gradient(lambda v: conv(Tensor(v)).numpy().sum(), x_val.copy())
        np.testing.assert_allclose(x.grad, num, atol=1e-5)

    def test_weight_gradient_matches_numerical(self):
        conv = Conv1d(1, 2, kernel_size=3, rng=0)
        x = np.random.default_rng(2).standard_normal((1, 1, 6))
        conv(Tensor(x)).sum().backward()
        w0 = conv.weight.data.copy()

        def loss_at(w):
            saved = conv.weight.data
            conv.weight.data = w
            value = conv(Tensor(x)).numpy().sum()
            conv.weight.data = saved
            return value

        np.testing.assert_allclose(conv.weight.grad, numerical_gradient(loss_at, w0), atol=1e-5)


class TestOptimizers:
    def _quadratic_descends(self, make_optimizer, steps=120, tol=1e-2):
        param = Parameter(np.array([5.0, -3.0]))
        optimizer = make_optimizer([param])
        for _ in range(steps):
            loss = (param * param).sum()
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        assert np.abs(param.data).max() < tol

    def test_sgd_minimises_quadratic(self):
        self._quadratic_descends(lambda p: SGD(p, lr=0.1))

    def test_sgd_momentum_minimises_quadratic(self):
        self._quadratic_descends(lambda p: SGD(p, lr=0.05, momentum=0.9))

    def test_adam_minimises_quadratic(self):
        self._quadratic_descends(lambda p: Adam(p, lr=0.2))

    def test_sgd_weight_decay_shrinks(self):
        param = Parameter(np.array([1.0]))
        optimizer = SGD([param], lr=0.1, weight_decay=1.0)
        param.grad = np.array([0.0])
        optimizer.step()
        assert param.data[0] < 1.0

    def test_skip_params_without_grad(self):
        param = Parameter(np.array([1.0]))
        Adam([param], lr=0.1).step()
        np.testing.assert_allclose(param.data, [1.0])

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], lr=-1.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.1, momentum=1.5)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.9))


class TestSequential:
    def test_chains_modules_and_callables(self):
        net = Sequential(Linear(2, 2, rng=0), ops.relu, Linear(2, 1, rng=1))
        out = net(Tensor(np.ones((3, 2))))
        assert out.shape == (3, 1)
