"""Control plane: MaintenancePolicy, FleetController, coordinated refresh."""

import json
import math

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core.config import GEMConfig
from repro.core.protocols import GeofenceDecision
from repro.core.records import SignalRecord
from repro.embedding.bisage import BiSAGEConfig
from repro.pipeline import ComponentSpec, PipelineSpec, build_pipeline
from repro.serve import (
    RESERVOIR_METADATA_KEY,
    FleetController,
    GeofenceFleet,
    MaintenancePolicy,
    ModelRegistry,
)

SMALL_GEM = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1))


def small_gem_spec() -> PipelineSpec:
    return PipelineSpec(model=ComponentSpec("gem", SMALL_GEM.to_dict()))


def inside(score: float = 0.1, buffered: bool = False) -> GeofenceDecision:
    return GeofenceDecision(inside=True, score=score, buffered=buffered)


def unembeddable() -> GeofenceDecision:
    return GeofenceDecision(inside=False, score=math.inf)


class StubFleet:
    """Records control-plane calls without any models behind them."""

    def __init__(self, refresh_error: Exception | None = None):
        self.calls: list[tuple] = []
        self.refresh_error = refresh_error
        self._dirty: set[str] = set()
        self.resident_tenants: list[str] = []

    def refresh(self, tenant_id):
        if self.refresh_error is not None:
            raise self.refresh_error
        self.calls.append(("refresh", tenant_id))
        return 1

    def reprovision(self, tenant_id):
        self.calls.append(("reprovision", tenant_id))

    def flush(self, tenant_id=None):
        self.calls.append(("flush", tenant_id))
        self._dirty.discard(tenant_id)
        return 1

    def evict(self, tenant_id):
        self.calls.append(("evict", tenant_id))
        self.resident_tenants = [t for t in self.resident_tenants if t != tenant_id]
        return True

    def is_dirty(self, tenant_id):
        return tenant_id in self._dirty

    def resident(self, tenant_id):
        return None

    def of(self, kind: str) -> list[str]:
        return [tid for action, tid in self.calls if action == kind]


# ----------------------------------------------------------------------
# MaintenancePolicy
# ----------------------------------------------------------------------
class TestPolicy:
    def test_defaults_are_noop(self):
        policy = MaintenancePolicy()
        assert policy.is_noop()
        assert not policy.wants_refresh()
        assert policy.to_dict() == {}
        assert policy.describe() == "no-op"

    def test_json_round_trip(self):
        policy = MaintenancePolicy(check_every=10, refresh_every=100,
                                   max_unembeddable_rate=0.3, min_update_rate=0.05,
                                   min_window=20, reprovision_after=2,
                                   flush_every=50, evict_idle_sweeps=3)
        assert MaintenancePolicy.from_json(policy.to_json()) == policy
        assert MaintenancePolicy.from_dict(json.loads(json.dumps(policy.to_dict()))) == policy

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            MaintenancePolicy.from_dict({"refresh_cadence": 5})

    @pytest.mark.parametrize("kwargs", [
        {"check_every": -1}, {"refresh_every": -2}, {"min_window": 0},
        {"max_unembeddable_rate": 1.5}, {"min_update_rate": -0.1},
        {"check_every": 1.5}, {"check_every": True},
        {"max_unembeddable_rate": True},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            MaintenancePolicy(**kwargs)

    def test_wants_refresh_needs_check_every(self):
        # Clauses without an evaluation cadence can never fire.
        assert not MaintenancePolicy(refresh_every=10).wants_refresh()
        assert MaintenancePolicy(check_every=5, refresh_every=10).wants_refresh()
        assert MaintenancePolicy(check_every=5, max_unembeddable_rate=0.5).wants_refresh()
        assert not MaintenancePolicy(check_every=5, flush_every=10).wants_refresh()

    def test_describe_mentions_clauses(self):
        text = MaintenancePolicy(check_every=5, refresh_every=10,
                                 reprovision_after=2).describe()
        assert "refresh every 10" in text and "reprovision" in text


class TestPolicyInPipelineSpec:
    def policy(self) -> MaintenancePolicy:
        return MaintenancePolicy(check_every=8, refresh_every=64, flush_every=32)

    def test_round_trip_through_spec(self):
        spec = PipelineSpec(model=ComponentSpec("gem"), maintenance=self.policy())
        spec.validate()
        back = PipelineSpec.from_json(spec.to_json())
        assert back == spec
        assert back.maintenance == self.policy()

    def test_spec_accepts_plain_mapping(self):
        spec = PipelineSpec(model=ComponentSpec("gem"),
                            maintenance={"check_every": 4, "refresh_every": 16})
        assert isinstance(spec.maintenance, MaintenancePolicy)
        assert spec.maintenance.refresh_every == 16

    def test_spec_without_maintenance_unchanged(self):
        spec = PipelineSpec(model=ComponentSpec("gem"))
        assert "maintenance" not in spec.to_dict()
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_refresh_policy_rejected_on_non_refreshable_arm(self):
        spec = PipelineSpec(embedder=ComponentSpec("mds"),
                            detector=ComponentSpec("histogram"),
                            self_update=False, maintenance=self.policy())
        with pytest.raises(ValueError, match="not refresh-capable"):
            spec.validate()
        with pytest.raises(ValueError, match="not refresh-capable"):
            PipelineSpec(model=ComponentSpec("inoa"),
                         maintenance=self.policy()).validate()

    def test_flush_only_policy_allowed_anywhere(self):
        PipelineSpec(model=ComponentSpec("inoa"),
                     maintenance=MaintenancePolicy(check_every=4,
                                                   flush_every=8)).validate()

    def test_supports_refresh_capability(self):
        assert small_gem_spec().supports_refresh()
        assert PipelineSpec(embedder=ComponentSpec("bisage"),
                            detector=ComponentSpec("lof"),
                            self_update=False).supports_refresh()
        assert not PipelineSpec(embedder=ComponentSpec("imputed-matrix"),
                                detector=ComponentSpec("histogram")).supports_refresh()
        assert not PipelineSpec(model=ComponentSpec("signature-home")).supports_refresh()


# ----------------------------------------------------------------------
# Controller triggering (stub fleet: pure policy arithmetic)
# ----------------------------------------------------------------------
class TestControllerTriggers:
    def test_noop_policy_never_acts(self):
        fleet = StubFleet()
        controller = FleetController(fleet)
        for _ in range(500):
            assert controller.step("t", inside()) == []
        assert fleet.calls == []

    def test_scheduled_refresh_fires_on_cadence(self):
        fleet = StubFleet()
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=10, refresh_every=100))
        acted_at = []
        for i in range(1, 301):
            if "refresh" in controller.step("t", inside()):
                acted_at.append(i)
        assert acted_at == [100, 200, 300]
        assert fleet.of("refresh") == ["t", "t", "t"]

    def test_unembeddable_rate_trigger(self):
        fleet = StubFleet()
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=10, min_window=10,
                                     max_unembeddable_rate=0.4))
        # Clean traffic: no refresh.
        for _ in range(100):
            controller.step("t", inside())
        assert fleet.of("refresh") == []
        # A window where most records are footnote-3 unembeddable: refresh.
        actions = []
        for _ in range(10):
            actions += controller.step("t", unembeddable())
        assert actions == ["refresh"]

    def test_update_rate_trigger(self):
        fleet = StubFleet()
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=10, min_window=10,
                                     min_update_rate=0.5))
        # Healthy: most observations enter the self-update buffer.
        for _ in range(50):
            controller.step("t", inside(buffered=True))
        assert fleet.of("refresh") == []
        # The detector stops trusting its inliers: update rate collapses.
        actions = []
        for _ in range(10):
            actions += controller.step("t", inside(buffered=False))
        assert actions == ["refresh"]

    def test_min_window_gates_rate_triggers(self):
        fleet = StubFleet()
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=2, min_window=50,
                                     max_unembeddable_rate=0.1))
        for _ in range(20):
            controller.step("t", unembeddable())
        # Rate is 100% but the window is too small to be trusted.
        assert fleet.of("refresh") == []

    def test_rate_window_accumulates_across_short_checks(self):
        """check_every < min_window must delay triggers, not disable them:
        the window accumulates across evaluations until it is trustable."""
        fleet = StubFleet()
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=2, min_window=50,
                                     max_unembeddable_rate=0.1))
        fired_at = []
        for i in range(1, 121):
            if "refresh" in controller.step("t", unembeddable()):
                fired_at.append(i)
        assert fired_at[0] == 50          # first trustable window
        assert fired_at[1] == 100         # window resets after firing

    def test_controller_refresh_policy_on_non_capable_tenant_is_recorded(self):
        fleet = StubFleet(refresh_error=TypeError("no coordinated refresh capability"))
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=5, refresh_every=10))
        actions = []
        for _ in range(20):
            actions += controller.step("t", inside())
        # The serving loop survives; the incapacity is visible, not fatal.
        assert actions and all(a.startswith("refresh-failed") for a in actions)

    def test_failed_triggered_refreshes_still_escalate_to_reprovision(self):
        """A tenant whose refreshes cannot succeed (e.g. no capability)
        must still reach the reprovision escape hatch."""
        fleet = StubFleet(refresh_error=TypeError("no coordinated refresh capability"))
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=10, min_window=10,
                                     max_unembeddable_rate=0.4,
                                     reprovision_after=2))
        actions = []
        for _ in range(30):
            actions += controller.step("t", unembeddable())
        assert actions[0].startswith("refresh-failed")
        assert actions[1].startswith("refresh-failed")
        assert actions[2] == "reprovision"
        assert fleet.of("reprovision") == ["t"]

    def test_reprovision_escalation_after_stuck_refreshes(self):
        fleet = StubFleet()
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=10, min_window=10,
                                     max_unembeddable_rate=0.4,
                                     reprovision_after=2))
        actions = []
        for _ in range(60):
            actions += controller.step("t", unembeddable())
        # Two triggered refreshes that didn't clear the trigger, then
        # escalate; the cycle repeats while the trigger stays hot.
        assert actions == ["refresh", "refresh", "reprovision"] * 2
        assert fleet.of("reprovision") == ["t", "t"]

    def test_refresh_failure_is_recorded_not_raised(self):
        fleet = StubFleet(refresh_error=ValueError("empty reservoir"))
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=10, refresh_every=10))
        actions = []
        for _ in range(30):
            actions += controller.step("t", inside())
        assert actions and all(a.startswith("refresh-failed") for a in actions)
        # Back-off: one failure per refresh interval, not per observation.
        assert len(actions) == 3

    def test_flush_cadence(self):
        fleet = StubFleet()
        fleet._dirty.add("t")
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=10, flush_every=20))
        flushed_at = []
        for i in range(1, 41):
            fleet._dirty.add("t")
            if "flush" in controller.step("t", inside()):
                flushed_at.append(i)
        assert flushed_at == [20, 40]

    def test_per_tenant_policy_overrides_default(self):
        fleet = StubFleet()
        controller = FleetController(
            fleet, MaintenancePolicy(),  # default: no-op
            policies={"busy": MaintenancePolicy(check_every=5, refresh_every=5)})
        for _ in range(10):
            controller.step("quiet", inside())
            controller.step("busy", inside())
        assert fleet.of("refresh") == ["busy", "busy"]

    def test_maintain_evicts_idle_tenants(self):
        fleet = StubFleet()
        fleet.resident_tenants = ["idle", "busy"]
        controller = FleetController(
            fleet, MaintenancePolicy(check_every=1, evict_idle_sweeps=2))
        controller.step("busy", inside())
        controller.step("idle", inside())
        assert controller.maintain() == {}          # both saw traffic
        controller.step("busy", inside())
        assert controller.maintain() == {}          # idle: 1 sweep
        controller.step("busy", inside())
        out = controller.maintain()                 # idle: 2 sweeps -> evict
        assert out == {"idle": ["evict-idle"]}
        assert fleet.of("evict") == ["idle"]


# ----------------------------------------------------------------------
# Coordinated refresh through real pipelines and fleets
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def train_records():
    return synthetic_records(40, seed=0, center=2.0)


@pytest.fixture(scope="module")
def drift_records():
    return synthetic_records(12, seed=9, center=2.4)


class TestCoordinatedRefresh:
    def fitted(self, train_records):
        model = build_pipeline(small_gem_spec())
        model.fit(train_records)
        return model

    def test_refresh_determinism(self, train_records, drift_records):
        """Same seed + same records -> bit-identical post-refresh scores."""
        probe = synthetic_records(5, seed=3, center=2.0)
        one, two = self.fitted(train_records), self.fitted(train_records)
        for model in (one, two):
            for record in drift_records:
                model.observe(record)
            assert model.refresh(train_records) > 0
        assert [one.score(r) for r in probe] == [two.score(r) for r in probe]

    def test_refresh_refits_detector_on_reservoir(self, train_records):
        model = self.fitted(train_records)
        before = model.detector.num_samples
        absorbed = model.refresh(train_records[:17])
        assert absorbed == 17
        assert model.detector.num_samples == 17 != before
        assert model.detector.num_updates == 0
        assert model.pending_updates == 0

    def test_refresh_atomic_on_unembeddable_reservoir(self, train_records):
        model = self.fitted(train_records)
        probe = synthetic_records(5, seed=3, center=2.0)
        before = [model.score(r) for r in probe]
        detector_before, embedder_before = model.detector, model.embedder
        with pytest.raises(ValueError, match="pre-refresh state"):
            model.refresh([SignalRecord({"ff:ff:ff:ff:ff:01": -40.0})])
        assert model.detector is detector_before
        assert model.embedder is embedder_before
        assert [model.score(r) for r in probe] == before

    def test_refresh_atomic_on_detector_exception(self, train_records, monkeypatch):
        model = self.fitted(train_records)
        probe = synthetic_records(5, seed=3, center=2.0)
        before = [model.score(r) for r in probe]
        monkeypatch.setattr(type(model.detector), "refit",
                            lambda self, x: (_ for _ in ()).throw(RuntimeError("boom")))
        with pytest.raises(RuntimeError, match="boom"):
            model.refresh(train_records)
        monkeypatch.undo()
        assert [model.score(r) for r in probe] == before

    def test_refresh_requires_capability(self, train_records):
        spec = PipelineSpec(embedder=ComponentSpec("imputed-matrix"),
                            detector=ComponentSpec("histogram"))
        model = build_pipeline(spec)
        model.fit(train_records)
        assert not model.supports_refresh()
        with pytest.raises(TypeError, match="refresh"):
            model.refresh(train_records)

    def test_refresh_rejects_empty(self, train_records):
        model = self.fitted(train_records)
        with pytest.raises(ValueError, match="at least one"):
            model.refresh([])


class TestFleetMaintenance:
    def test_provision_seeds_reservoir_and_refresh_uses_it(self, tmp_path, train_records):
        with GeofenceFleet(tmp_path / "reg", capacity=2, reservoir_size=16) as fleet:
            fleet.provision("a", train_records, spec=small_gem_spec())
            assert len(fleet.reservoir("a")) == 16        # last 16 training records
            absorbed = fleet.refresh("a")
            assert absorbed == 16
            assert fleet.telemetry.tenant("a").refreshes == 1
            assert fleet.is_dirty("a")

    def test_reservoir_survives_evict_reload(self, tmp_path, train_records, drift_records):
        registry = ModelRegistry(tmp_path / "reg")
        with GeofenceFleet(registry, capacity=2, reservoir_size=8) as fleet:
            fleet.provision("a", train_records, spec=small_gem_spec())
            for record in drift_records:
                fleet.observe("a", record)
            resident = [r.readings for r in fleet.reservoir("a")]
            fleet.evict("a")
            assert "a" not in fleet._anchors and "a" not in fleet._recent
            # Reload restores the reservoir from the checkpoint manifest.
            reloaded = [r.readings for r in fleet.reservoir("a")]
            assert reloaded == resident
            # ...and user-facing metadata stays clean of the internal key.
            assert RESERVOIR_METADATA_KEY not in registry.metadata("a")
            assert RESERVOIR_METADATA_KEY in registry.manifest("a")["metadata"]

    def test_outside_and_unembeddable_records_never_enter_reservoir(
            self, tmp_path, train_records):
        with GeofenceFleet(tmp_path / "reg", capacity=2, reservoir_size=64) as fleet:
            fleet.provision("a", train_records, spec=small_gem_spec())
            seeded = len(fleet.reservoir("a"))
            fleet.observe("a", SignalRecord({"ff:ff:ff:ff:ff:01": -40.0}))  # +inf
            far = synthetic_records(3, seed=11, center=60.0)                 # outliers
            for record in far:
                fleet.observe("a", record)
            reservoir = fleet.reservoir("a")
            assert len(reservoir) <= seeded + 3
            assert all(r.readings != {"ff:ff:ff:ff:ff:01": -40.0} for r in reservoir)

    def test_reprovision_refits_from_reservoir(self, tmp_path, train_records):
        with GeofenceFleet(tmp_path / "reg", capacity=2, reservoir_size=32) as fleet:
            old = fleet.provision("a", train_records, spec=small_gem_spec())
            fresh = fleet.reprovision("a")
            assert fresh is not old
            assert fleet.resident("a") is fresh
            assert fleet.telemetry.tenant("a").reprovisions == 1
            # The replacement serves immediately and is persisted on evict.
            record = synthetic_records(1, seed=2, center=2.0)[0]
            fleet.observe("a", record)
            fleet.evict("a")
            assert fleet.score("a", record) == fresh.score(record)

    def test_refresh_without_reservoir_raises(self, tmp_path, train_records):
        with GeofenceFleet(tmp_path / "reg", capacity=2, reservoir_size=0) as fleet:
            fleet.provision("a", train_records, spec=small_gem_spec())
            with pytest.raises(ValueError, match="reservoir"):
                fleet.refresh("a")

    def test_reservoirless_fleet_preserves_persisted_reservoir(
            self, tmp_path, train_records):
        """A reservoir_size=0 fleet's write-backs must carry the persisted
        anchor forward, not destroy it for future maintaining fleets."""
        registry = ModelRegistry(tmp_path / "reg")
        with GeofenceFleet(registry, capacity=2, reservoir_size=16) as fleet:
            fleet.provision("a", train_records, spec=small_gem_spec())
        with GeofenceFleet(registry, capacity=2, reservoir_size=0) as fleet:
            fleet.observe("a", synthetic_records(1, seed=2, center=2.0)[0])
        # dirty write-back happened with reservoirs disabled...
        with GeofenceFleet(registry, capacity=2, reservoir_size=16) as fleet:
            assert len(fleet.reservoir("a")) == 16
            assert fleet.refresh("a") == 16

    def test_controller_uses_spec_maintenance_block(self, tmp_path, train_records):
        spec = PipelineSpec(
            model=ComponentSpec("gem", SMALL_GEM.to_dict()),
            maintenance=MaintenancePolicy(check_every=4, refresh_every=8))
        with GeofenceFleet(tmp_path / "reg", capacity=2, reservoir_size=16) as fleet:
            fleet.provision("a", train_records, spec=spec)
            controller = FleetController(fleet)   # default policy: no-op
            stream = synthetic_records(8, seed=5, center=2.0)
            actions = []
            for record in stream:
                actions += controller.step("a", fleet.observe("a", record))
            assert "refresh" in actions
            assert fleet.telemetry.tenant("a").refreshes >= 1


class TestDeprecatedRefreshFlag:
    def test_gemconfig_warns(self):
        with pytest.warns(DeprecationWarning, match="refresh_cache_every"):
            GEMConfig(refresh_cache_every=50)

    def test_auto_refresh_fire_warns(self, train_records):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            config = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1),
                               refresh_cache_every=2)
        from repro.core.gem import GEM
        model = GEM(config)
        model.fit(train_records)
        stream = synthetic_records(3, seed=7, center=2.0)
        with pytest.warns(DeprecationWarning, match="without refitting"):
            for record in stream:
                model.observe(record)
