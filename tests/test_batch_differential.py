"""Differential bit-identity harness: scalar vs vectorized data plane.

Replays identical record streams — drift epochs, unknown-MAC records,
empty-reading records (+inf scores), empty batches, batch-size 1 vs N
splits — through the scalar per-record loop and through the batch plane
for **every registry arm**, asserting bit-identical decisions and
byte-identical post-stream ``state_dict()`` trees.  Arms without batch
support must come out identical too (the plane falls back to the same
scalar loop), so the whole fallback matrix is exercised, not just the
fast path.
"""

from __future__ import annotations

import copy
import math

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core.config import GEMConfig
from repro.core.records import SignalRecord
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.algorithms import ALGORITHM_NAMES, arm_accepts, arm_spec
from repro.pipeline import build_pipeline
from repro.serve.batchplane import BatchPlane, fastpath_reason

# The outcome the batch plane must report per arm: only graph-embedder +
# histogram compositions may engage; everything else names its reason.
EXPECTED_OUTCOME = {
    "GEM": "engaged",
    "GraphSAGE+OD": "engaged",
    "GEM(plain-HBOS)": "engaged",
    "SignatureHome": "fallback_model",
    "INOA": "fallback_model",
    "Autoencoder+OD": "fallback_embedder",
    "MDS+OD": "fallback_embedder",
    "GEM(no-BiSAGE)": "fallback_embedder",
    "BiSAGE+FeatureBagging": "fallback_detector",
    "BiSAGE+iForest": "fallback_detector",
    "BiSAGE+LOF": "fallback_detector",
}


def small_gem_config() -> GEMConfig:
    return GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1), batch_update_size=4)


def build_arm(name: str):
    dim = 8 if arm_accepts(name, "dim") else 32
    spec = arm_spec(name, dim=dim, gem_config=small_gem_config())
    return build_pipeline(spec)


def adversarial_stream(n: int = 48, seed: int = 7) -> list[SignalRecord]:
    """Drift epochs + unknown MACs + empty readings, deterministically mixed."""
    rng = np.random.default_rng(seed)
    inliers = synthetic_records(n, seed=seed, center=0.0)
    drifted = synthetic_records(n, seed=seed + 1, center=4.0)
    stream = []
    for i in range(n):
        roll = rng.random()
        if roll < 0.08:
            stream.append(SignalRecord({}, timestamp=float(9000 + i)))
        elif roll < 0.18:
            stream.append(SignalRecord({f"zz{m:02d}": -60.0 - m for m in range(3)},
                                       timestamp=float(9000 + i)))
        elif roll < 0.55:
            stream.append(inliers[i])
        else:
            stream.append(drifted[i])
    return stream


def assert_trees_identical(a, b, path="state"):
    """Byte-exact recursive comparison of two state_dict trees."""
    assert type(a) is type(b), f"{path}: {type(a).__name__} vs {type(b).__name__}"
    if isinstance(a, dict):
        assert set(a) == set(b), f"{path}: keys differ: {set(a) ^ set(b)}"
        for key in a:
            assert_trees_identical(a[key], b[key], f"{path}/{key}")
    elif isinstance(a, np.ndarray):
        assert a.shape == b.shape and a.dtype == b.dtype, f"{path}: shape/dtype"
        assert a.tobytes() == b.tobytes(), f"{path}: array bytes differ"
    elif isinstance(a, (list, tuple)):
        assert len(a) == len(b), f"{path}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            assert_trees_identical(x, y, f"{path}[{i}]")
    else:
        assert a == b, f"{path}: {a!r} != {b!r}"


def assert_decisions_identical(scalar, batch):
    assert len(scalar) == len(batch)
    for i, (s, b) in enumerate(zip(scalar, batch)):
        assert s == b, f"decision {i}: scalar {s} vs batch {b}"
        # GeofenceDecision equality covers the floats; make the
        # bit-identity explicit for the score (== would pass -0.0/0.0).
        if not (math.isinf(s.score) or math.isinf(b.score)):
            assert np.float64(s.score).tobytes() == np.float64(b.score).tobytes(), \
                f"decision {i}: score bits differ"


@pytest.mark.parametrize("arm", ALGORITHM_NAMES)
def test_scalar_vs_batch_bit_identity(arm):
    model = build_arm(arm)
    train = synthetic_records(60, seed=3)
    model.fit(train)
    scalar_model = copy.deepcopy(model)
    batch_model = copy.deepcopy(model)
    stream = adversarial_stream()

    plane = BatchPlane()
    scalar = [scalar_model.observe(r) for r in stream]
    batch = []
    outcomes = set()
    for start in range(0, len(stream), 16):
        chunk, outcome = plane.observe_batch(batch_model, stream[start:start + 16])
        batch.extend(chunk)
        outcomes.add(outcome)

    assert outcomes == {EXPECTED_OUTCOME[arm]}
    assert fastpath_reason(model) == (None if EXPECTED_OUTCOME[arm] == "engaged"
                                      else EXPECTED_OUTCOME[arm].removeprefix("fallback_"))
    assert_decisions_identical(scalar, batch)
    assert_trees_identical(scalar_model.state_dict(), batch_model.state_dict())


@pytest.mark.parametrize("arm", ["GEM", "GraphSAGE+OD", "GEM(plain-HBOS)"])
def test_batch_size_one_vs_n_splits(arm):
    """Every split of the same stream yields the same decisions + state."""
    model = build_arm(arm)
    model.fit(synthetic_records(60, seed=3))
    stream = adversarial_stream()

    one = copy.deepcopy(model)
    whole = copy.deepcopy(model)
    ragged = copy.deepcopy(model)

    by_one = []
    for record in stream:
        by_one.extend(one.observe_many([record]))
    at_once = whole.observe_many(stream)
    by_ragged = []
    sizes = [1, 3, 7, 1, 16, 5]
    start = 0
    while start < len(stream):
        size = sizes[start % len(sizes)]
        by_ragged.extend(ragged.observe_many(stream[start:start + size]))
        start += size

    assert_decisions_identical(at_once, by_one)
    assert_decisions_identical(at_once, by_ragged)
    assert_trees_identical(whole.state_dict(), one.state_dict())
    assert_trees_identical(whole.state_dict(), ragged.state_dict())


def test_empty_batch_is_a_no_op():
    model = build_arm("GEM")
    assert model.observe_many([]) == []  # even unfitted, like the scalar loop
    model.fit(synthetic_records(40, seed=3))
    before = model.state_dict()
    assert model.observe_many([]) == []
    assert_trees_identical(before, model.state_dict())


def test_unfitted_observe_many_fails_like_scalar():
    """Upfront validation parity: same exception type and message, and no
    partial state mutation on the vectorized path."""
    scalar_model = build_arm("GEM")
    batch_model = build_arm("GEM")
    stream = adversarial_stream(8)
    with pytest.raises(RuntimeError) as scalar_err:
        scalar_model.observe(stream[0])
    with pytest.raises(RuntimeError) as batch_err:
        batch_model.observe_many(stream)
    assert str(batch_err.value) == str(scalar_err.value)
    # Nothing attached, nothing buffered: fitting afterwards still works
    # and the failed batch left no graph/buffer residue behind.
    assert batch_model.pending_updates == 0
    batch_model.fit(synthetic_records(40, seed=3))
    assert batch_model.embedder.graph.num_records == 40


def test_unknown_macs_score_plus_inf_on_both_paths():
    model = build_arm("GEM")
    model.fit(synthetic_records(40, seed=3))
    alien = SignalRecord({"zz00": -50.0, "zz01": -60.0}, timestamp=1.0)
    scalar = copy.deepcopy(model).observe(alien)
    batch = copy.deepcopy(model).observe_many([alien])[0]
    assert scalar == batch
    assert math.isinf(batch.score) and not batch.inside


def test_threshold_admissions_refresh_matches_scalar():
    """After ``refresh(admit_new_macs_after=N)`` the embedder carries a
    non-None admissions mask, so the kernel's admitted-MAC usable-filter
    extension (not just the plain trained-universe cut) must reproduce
    the scalar loop bit-for-bit."""
    model = build_arm("GEM")
    model.fit(synthetic_records(40, seed=3))
    churn = synthetic_records(30, seed=13)
    for i, record in enumerate(churn):
        record.readings[f"post-train-mac-{i % 4}"] = -65.0 - (i % 4)
    for record in churn:
        model.observe(record)
    model.refresh(synthetic_records(20, seed=14), admit_new_macs_after=2)
    embedder = model.embedder.model
    assert embedder._mac_admitted is not None
    assert embedder._mac_admitted[embedder._macs_aggregated:].any(), \
        "no post-boundary MAC was admitted; the test exercises nothing"

    scalar_model = copy.deepcopy(model)
    batch_model = copy.deepcopy(model)
    probe = synthetic_records(16, seed=15)
    for i, record in enumerate(probe):
        record.readings[f"post-train-mac-{i % 4}"] = -66.0 - (i % 4)
    scalar = [scalar_model.observe(r) for r in probe]
    batch = batch_model.observe_many(probe)
    assert_decisions_identical(scalar, batch)
    assert_trees_identical(scalar_model.state_dict(), batch_model.state_dict())


def test_update_flush_mid_batch_matches_scalar():
    """A detector update inside the batch must re-score the remainder:
    force confident inliers (training-like records) through a tiny
    update buffer and compare against the scalar loop."""
    cfg = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1), batch_update_size=2)
    spec = arm_spec("GEM", dim=8, gem_config=cfg)
    model = build_pipeline(spec)
    model.fit(synthetic_records(60, seed=3))
    stream = synthetic_records(40, seed=11, center=0.0)  # mostly inliers
    scalar_model = copy.deepcopy(model)
    batch_model = copy.deepcopy(model)
    scalar = [scalar_model.observe(r) for r in stream]
    batch = batch_model.observe_many(stream)
    assert any(d.updated for d in scalar), "stream never flushed an update"
    assert_decisions_identical(scalar, batch)
    assert_trees_identical(scalar_model.state_dict(), batch_model.state_dict())
