"""Concurrency: swap-on-commit refresh + multi-threaded serving under a
running MaintenanceScheduler (no torn decisions, telemetry conservation,
clean shutdown)."""

import copy
import math
import threading
import time

import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.core.gem import RefreshJob
from repro.embedding.bisage import BiSAGEConfig
from repro.serve import GeofenceFleet, MaintenancePolicy, ServingRuntime

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def tenant_records(tenant: int, n: int = 25, seed_offset: int = 0):
    return synthetic_records(n, num_macs=10, seed=tenant + seed_offset,
                             center=2.0 + tenant)


class GatedBuild:
    """Patches RefreshJob.build to park until released (and signal entry)."""

    def __init__(self, monkeypatch):
        self.entered = threading.Event()
        self.release = threading.Event()
        original = RefreshJob.build
        gate = self

        def gated(job):
            gate.entered.set()
            assert gate.release.wait(10.0), "gated build never released"
            return original(job)

        monkeypatch.setattr(RefreshJob, "build", gated)


class TestSwapOnCommitRefresh:
    def test_observe_flows_while_refresh_rebuilds(self, tmp_path, monkeypatch):
        """The fleet lock is free during the rebuild phase."""
        fleet = GeofenceFleet(tmp_path / "m", capacity=4, model_factory=make_gem,
                              reservoir_size=16)
        fleet.provision("t", tenant_records(0))
        gate = GatedBuild(monkeypatch)
        result: dict = {}

        def refresher():
            result["absorbed"] = fleet.refresh("t")

        thread = threading.Thread(target=refresher)
        thread.start()
        assert gate.entered.wait(10.0)
        # The refresh is mid-rebuild and parked; observes (on this and
        # any other tenant) must complete anyway.
        decision = fleet.observe("t", tenant_records(0, n=1, seed_offset=9)[0])
        assert decision is not None
        gate.release.set()
        thread.join(10.0)
        assert not thread.is_alive()
        assert result["absorbed"] > 0
        assert fleet.is_dirty("t")
        fleet.close()

    def test_commit_refused_when_tenant_replaced_mid_rebuild(self, tmp_path,
                                                            monkeypatch):
        fleet = GeofenceFleet(tmp_path / "m", capacity=4, model_factory=make_gem,
                              reservoir_size=16)
        fleet.provision("t", tenant_records(0))
        gate = GatedBuild(monkeypatch)
        result: dict = {}

        def refresher():
            try:
                fleet.refresh("t")
            except ValueError as error:
                result["error"] = str(error)

        thread = threading.Thread(target=refresher)
        thread.start()
        assert gate.entered.wait(10.0)
        # Evict (write-back + drop) while the rebuild runs; the reload
        # is a different model object, so the stale result must be
        # discarded, not swapped in.
        fleet.evict("t")
        fleet.observe("t", tenant_records(0, n=1, seed_offset=9)[0])
        gate.release.set()
        thread.join(10.0)
        assert "evicted or replaced" in result.get("error", "")
        fleet.close()

    def test_overlapping_refresh_of_same_tenant_refused(self, tmp_path,
                                                        monkeypatch):
        """Two concurrent refreshes of one tenant would each build from
        the same pre-refresh snapshot and the later commit would
        silently revert the earlier one — the second begin is refused
        instead."""
        fleet = GeofenceFleet(tmp_path / "m", capacity=4, model_factory=make_gem,
                              reservoir_size=16)
        fleet.provision("t", tenant_records(0))
        gate = GatedBuild(monkeypatch)
        thread = threading.Thread(target=fleet.refresh, args=("t",))
        thread.start()
        assert gate.entered.wait(10.0)
        with pytest.raises(ValueError, match="already has a refresh"):
            fleet.refresh("t")
        gate.release.set()
        thread.join(10.0)
        # The guard clears with the first refresh: a sequential one works.
        gate.entered.clear()
        follow_up = threading.Thread(target=fleet.refresh, args=("t",))
        follow_up.start()
        assert gate.entered.wait(10.0)
        gate.release.set()
        follow_up.join(10.0)
        assert fleet.telemetry.totals().refreshes == 2
        fleet.close()

    def test_batch_fastpath_flows_during_refresh_and_rebuilds_kernel(
            self, tmp_path, monkeypatch):
        """Race the vectorized plane against a parked rebuild: the batch
        must complete (fast path engaged, lock free) while the refresh is
        mid-build, and after the commit swap the stale kernel must be
        replaced — post-commit batch decisions equal a scalar loop over a
        deepcopy of the post-refresh resident model."""
        fleet = GeofenceFleet(tmp_path / "m", capacity=4, model_factory=make_gem,
                              reservoir_size=16)
        fleet.provision("t", tenant_records(0))
        gate = GatedBuild(monkeypatch)
        result: dict = {}

        def refresher():
            result["absorbed"] = fleet.refresh("t")

        thread = threading.Thread(target=refresher)
        thread.start()
        assert gate.entered.wait(10.0)
        # Mid-rebuild: the batch path must serve, and engage, anyway.
        mid = fleet.observe_many(
            [("t", r) for r in tenant_records(0, n=8, seed_offset=9)])
        assert len(mid) == 8 and all(d is not None for d in mid)
        assert fleet.batchplane.engaged_total() >= 1
        model = fleet._cache["t"]
        stale_kernel = fleet.batchplane._kernels[model][1]
        gate.release.set()
        thread.join(10.0)
        assert not thread.is_alive()
        assert result["absorbed"] > 0
        # Post-commit: same model object, swapped embedder — the token
        # check must rebuild the kernel and reproduce the scalar loop.
        reference = copy.deepcopy(fleet._cache["t"])
        probe = tenant_records(0, n=8, seed_offset=11)
        decisions = fleet.observe_many([("t", r) for r in probe])
        assert fleet.batchplane._kernels[fleet._cache["t"]][1] is not stale_kernel
        assert decisions == [reference.observe(r) for r in probe]
        fleet.close()

    def test_inline_refresh_requires_built_unconsumed_job(self, tmp_path):
        gem = make_gem().fit(tenant_records(0))
        job = gem.begin_refresh(tenant_records(0, n=5, seed_offset=3))
        with pytest.raises(RuntimeError, match="not been built"):
            gem.commit_refresh(job)
        other = make_gem().fit(tenant_records(1))
        job.build()
        with pytest.raises(ValueError, match="different pipeline"):
            other.commit_refresh(job)
        gem.commit_refresh(job)
        with pytest.raises(RuntimeError, match="already committed"):
            gem.commit_refresh(job)


@pytest.mark.slow
class TestRuntimeStress:
    def test_threaded_observe_under_background_maintenance(self, tmp_path):
        """The tentpole stress test: concurrent observers on a sharded
        runtime whose scheduler keeps refreshing, flushing and evicting.

        Pins the three daemon invariants: no torn decisions (every
        decision is internally consistent), telemetry conservation
        (every issued observation is counted exactly once, fleet- and
        controller-side), and clean shutdown (worker joined, queues
        drained, checkpoints loadable)."""
        num_threads = 4
        per_thread = 40
        tenants = [f"tenant-{i}" for i in range(num_threads)]
        policy = MaintenancePolicy(check_every=6, refresh_every=12,
                                   flush_every=24)
        runtime = ServingRuntime(tmp_path / "m", num_shards=2, capacity=3,
                                 model_factory=make_gem, reservoir_size=16,
                                 policy=policy, scheduler_interval=0.005,
                                 sweep_every=4)
        with runtime:
            for index, tenant in enumerate(tenants):
                runtime.provision(tenant, tenant_records(index))
            streams = {tenant: tenant_records(i, n=per_thread, seed_offset=100)
                       for i, tenant in enumerate(tenants)}
            errors: list[BaseException] = []
            decisions: dict[str, list] = {tenant: [] for tenant in tenants}
            barrier = threading.Barrier(num_threads)

            def worker(tenant: str) -> None:
                try:
                    barrier.wait(10.0)
                    for record in streams[tenant]:
                        decisions[tenant].append(runtime.observe(tenant, record))
                        runtime.score(tenant, record)
                except BaseException as error:  # noqa: BLE001 - recorded for assert
                    errors.append(error)

            pool = [threading.Thread(target=worker, args=(tenant,))
                    for tenant in tenants]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join(60.0)
            assert not any(thread.is_alive() for thread in pool)
            assert not errors, errors
            # Give the worker a beat to act on the tail of the stream.
            time.sleep(0.1)
        # -- clean shutdown ------------------------------------------------
        assert not runtime.scheduler.running
        assert all(shard.pending_decisions == 0 for shard in runtime.shards)
        # -- no torn decisions --------------------------------------------
        for tenant in tenants:
            assert len(decisions[tenant]) == per_thread
            for decision in decisions[tenant]:
                if math.isinf(decision.score):
                    assert not decision.inside  # footnote-3 contract
                if decision.updated:
                    assert decision.buffered
        # -- telemetry conservation ---------------------------------------
        issued = num_threads * per_thread
        assert runtime.telemetry_totals().observations == issued
        controller_total = sum(
            shard.controller.telemetry.totals().observations
            for shard in runtime.shards)
        assert controller_total == issued
        assert runtime.scheduler.stats()["decisions_drained"] == issued
        # Maintenance actually ran, and every failure it hit was the
        # contained operational kind (logged as a *-failed action, e.g. a
        # refresh whose tenant was evicted mid-rebuild), not a crash.
        assert runtime.scheduler.stats()["errors"] == 0
        assert runtime.telemetry_totals().refreshes > 0
        # -- checkpoints remain loadable ----------------------------------
        for tenant in tenants:
            clone = runtime.registry.load(tenant)
            assert clone.observe(tenant_records(0, n=1, seed_offset=500)[0]) \
                is not None

    def test_concurrent_refresh_and_observe_same_tenant(self, tmp_path):
        """Explicit refresh hammering one tenant while observes stream."""
        fleet = GeofenceFleet(tmp_path / "m", capacity=2, model_factory=make_gem,
                              reservoir_size=32, incremental=True)
        fleet.provision("t", tenant_records(0, n=40))
        stream = tenant_records(0, n=120, seed_offset=7)
        stop = threading.Event()
        outcomes = {"refreshes": 0, "stale": 0}
        errors: list[BaseException] = []

        def refresher() -> None:
            try:
                while not stop.is_set():
                    try:
                        fleet.refresh("t")
                        outcomes["refreshes"] += 1
                    except ValueError:
                        outcomes["stale"] += 1  # evicted/replaced mid-rebuild
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        thread = threading.Thread(target=refresher)
        thread.start()
        decisions = []
        for index, record in enumerate(stream):
            decisions.append(fleet.observe("t", record))
            if index % 30 == 29:
                fleet.evict("t")
        stop.set()
        thread.join(30.0)
        assert not thread.is_alive()
        assert not errors, errors
        assert len(decisions) == len(stream)
        assert outcomes["refreshes"] > 0
        fleet.close()
        assert fleet.registry.load("t") is not None
