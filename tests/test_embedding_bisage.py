"""BiSAGE: training, determinism, inductive inference, cache dynamics."""

import numpy as np
import pytest

from repro.core.records import SignalRecord
from repro.embedding import BiSAGE, BiSAGEConfig
from repro.graph import build_graph

from conftest import synthetic_records

FAST = BiSAGEConfig(dim=8, epochs=2, batch_pairs=128, seed=0)


@pytest.fixture(scope="module")
def fitted():
    records = synthetic_records(40, num_macs=10, seed=3)
    graph = build_graph(records)
    return BiSAGE(FAST).fit(graph), graph, records


class TestConfig:
    def test_defaults_match_paper(self):
        config = BiSAGEConfig()
        assert config.dim == 32
        assert config.learning_rate == pytest.approx(0.003)
        assert config.negative_samples == 4
        assert config.negative_power == pytest.approx(0.75)

    def test_invalid_activation(self):
        with pytest.raises(ValueError):
            BiSAGEConfig(activation="swish")

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            BiSAGEConfig(dim=0)

    def test_with_dim(self):
        assert BiSAGEConfig().with_dim(64).dim == 64


class TestTraining:
    def test_fit_learns(self, fitted):
        model, graph, _ = fitted
        assert len(model.loss_history) > 0
        # Loss should drop overall across training.
        head = np.mean(model.loss_history[:3])
        tail = np.mean(model.loss_history[-3:])
        assert tail < head

    def test_embeddings_shape_and_norm(self, fitted):
        model, graph, _ = fitted
        embeddings = model.record_embeddings()
        assert embeddings.shape == (graph.num_records, FAST.dim)
        np.testing.assert_allclose(np.linalg.norm(embeddings, axis=1), 1.0, atol=1e-6)

    def test_mac_embeddings_shape(self, fitted):
        model, graph, _ = fitted
        assert model.mac_embeddings().shape == (graph.num_macs, FAST.dim)

    def test_deterministic_given_seed(self):
        records = synthetic_records(20, seed=5)
        a = BiSAGE(FAST).fit(build_graph(records)).record_embeddings()
        b = BiSAGE(FAST).fit(build_graph(records)).record_embeddings()
        np.testing.assert_allclose(a, b)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError):
            BiSAGE(FAST).fit(build_graph([]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BiSAGE(FAST).record_embeddings()

    def test_embeddings_reflect_similarity(self):
        # Two clusters of records with disjoint-ish MAC strengths should be
        # farther apart than records within a cluster.
        rng = np.random.default_rng(0)
        cluster_a = synthetic_records(20, num_macs=10, seed=1, center=1.0)
        cluster_b = synthetic_records(20, num_macs=10, seed=2, center=8.0)
        graph = build_graph(cluster_a + cluster_b)
        model = BiSAGE(BiSAGEConfig(dim=8, epochs=4, seed=0)).fit(graph)
        # Use the inductive path: all nodes share the inference initial
        # embedding, so distances reflect neighbourhood structure only.
        emb = np.vstack([model.embed_record_node(i) for i in range(40)])
        a, b = emb[:20], emb[20:]
        within = np.linalg.norm(a - a.mean(0), axis=1).mean()
        between = np.linalg.norm(a.mean(0) - b.mean(0))
        assert between > within


class TestInductiveInference:
    def test_embed_readings_known_macs(self, fitted):
        model, graph, records = fitted
        embedding = model.embed_readings(dict(records[0].readings))
        assert embedding.shape == (FAST.dim,)
        assert abs(np.linalg.norm(embedding) - 1.0) < 1e-6

    def test_embed_readings_all_unknown_returns_none(self, fitted):
        model, _, _ = fitted
        assert model.embed_readings({"never-seen": -50.0}) is None

    def test_embed_readings_deterministic(self, fitted):
        model, _, records = fitted
        readings = dict(records[1].readings)
        np.testing.assert_allclose(model.embed_readings(readings),
                                   model.embed_readings(readings))

    def test_embed_record_node_after_attach(self, fitted):
        model, graph, records = fitted
        idx = graph.add_record(SignalRecord(dict(records[2].readings)))
        embedding = model.embed_record_node(idx)
        assert embedding.shape == (FAST.dim,)

    def test_attach_with_new_macs_extends_cache(self, fitted):
        model, graph, records = fitted
        readings = dict(records[0].readings)
        readings["brand-new-mac"] = -60.0
        idx = graph.add_record(SignalRecord(readings))
        embedding = model.embed_record_node(idx)
        assert np.isfinite(embedding).all()
        assert model._cache_hv[0].shape[0] == graph.num_macs

    def test_identical_readings_identical_embeddings(self, fitted):
        model, graph, records = fitted
        readings = dict(records[3].readings)
        i1 = graph.add_record(SignalRecord(readings))
        i2 = graph.add_record(SignalRecord(readings))
        np.testing.assert_allclose(model.embed_record_node(i1),
                                   model.embed_record_node(i2))

    def test_inductive_close_to_training_distribution(self):
        records = synthetic_records(40, num_macs=10, seed=6)
        graph = build_graph(records)
        model = BiSAGE(BiSAGEConfig(dim=8, epochs=3, seed=1)).fit(graph)
        # A record resembling training data should embed near the
        # training cloud.
        probe = model.embed_readings(dict(records[5].readings))
        train = np.vstack([model.embed_record_node(i) for i in range(20)])
        spread = np.linalg.norm(train - train.mean(0), axis=1).mean()
        distance = np.linalg.norm(probe - train.mean(0))
        assert distance < spread * 4

    def test_refresh_cache_updates_new_macs(self, fitted):
        model, graph, records = fitted
        before = model._cache_hv[-1].copy()
        model.refresh_cache()
        after = model._cache_hv[-1]
        assert after.shape[0] == graph.num_macs
        # Layer-0 rows of original MACs are the deterministic initials.
        from repro.graph import MAC
        np.testing.assert_allclose(model._cache_hv[0][0],
                                   model._initial_matrix(MAC, 1, "h")[0])
