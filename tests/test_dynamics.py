"""World-mutation schedules and the dynamics timeline."""

import numpy as np
import pytest

from repro.rf.dynamics import (
    APChurn,
    ChurnShock,
    DeviceGainDrift,
    DynamicsTimeline,
    MacRandomization,
    MarkovOnOff,
    TransientHotspots,
    TxPowerDrift,
    build_schedule,
    home_ap_ids,
    schedule_to_spec,
)
from repro.rf.scenarios import home_scenario, lab_scenario


def small_scenario(seed: int = 0):
    return lab_scenario(seed=seed, lab_aps=2, corridor_aps=2, building_aps=4)


def ap_fingerprint(environment):
    return [(ap.ap_id, ap.position, ap.floor, ap.macs,
             tuple(r.tx_power_dbm for r in ap.radios))
            for ap in environment.aps]


class TestTimeline:
    def test_epoch_zero_is_pristine(self):
        scenario = small_scenario()
        timeline = DynamicsTimeline(scenario, [APChurn(rate=1.0)], num_epochs=3)
        assert timeline.world(0).environment is scenario.environment
        assert timeline.world(0).events == ()

    def test_epochs_are_cached_and_stable(self):
        timeline = DynamicsTimeline(small_scenario(), [APChurn(rate=0.5)],
                                    num_epochs=4, seed=1)
        first = ap_fingerprint(timeline.world(2).environment)
        again = ap_fingerprint(timeline.world(2).environment)
        assert first == again
        assert timeline.world(2) is timeline.world(2)

    def test_random_access_equals_sequential(self):
        args = dict(schedules=[APChurn(rate=0.4), TxPowerDrift()], num_epochs=5, seed=3)
        sequential = DynamicsTimeline(small_scenario(), **args)
        fingerprints = [ap_fingerprint(w.environment) for w in sequential]
        random_access = DynamicsTimeline(small_scenario(), **args)
        assert ap_fingerprint(random_access.world(4).environment) == fingerprints[4]
        assert ap_fingerprint(random_access.world(1).environment) == fingerprints[1]

    def test_iteration_yields_num_epochs_worlds(self):
        timeline = DynamicsTimeline(small_scenario(), [], num_epochs=3)
        worlds = list(timeline)
        assert [w.epoch for w in worlds] == [0, 1, 2]
        assert len(timeline) == 3

    def test_epoch_out_of_range(self):
        timeline = DynamicsTimeline(small_scenario(), [], num_epochs=2)
        with pytest.raises(IndexError):
            timeline.world(2)

    def test_bad_num_epochs(self):
        with pytest.raises(ValueError):
            DynamicsTimeline(small_scenario(), [], num_epochs=0)

    def test_non_schedule_rejected(self):
        with pytest.raises(TypeError):
            DynamicsTimeline(small_scenario(), [object()], num_epochs=2)

    def test_total_retirement_keeps_one_survivor(self):
        # One lone AP always survives APChurn; emptying needs the shock.
        timeline = DynamicsTimeline(small_scenario(), [APChurn(rate=1.0, replace=False)],
                                    num_epochs=4, seed=0)
        assert len(timeline.world(3).environment.aps) == 1


class TestAPChurn:
    def test_replacement_preserves_positions_and_count(self):
        scenario = small_scenario()
        timeline = DynamicsTimeline(scenario, [APChurn(rate=1.0)], num_epochs=2, seed=0)
        before = scenario.environment.aps
        after = timeline.world(1).environment.aps
        assert len(after) == len(before)
        assert sorted(ap.position for ap in after) == sorted(ap.position for ap in before)
        assert set(a.ap_id for a in after).isdisjoint(b.ap_id for b in before)

    def test_fresh_macs_never_collide(self):
        timeline = DynamicsTimeline(small_scenario(), [APChurn(rate=0.6)],
                                    num_epochs=6, seed=0)
        seen: set[str] = set(timeline.world(0).macs)
        for epoch in range(1, 6):
            world = timeline.world(epoch)
            fresh = world.macs - seen
            retired = seen - world.macs
            # A retired MAC never comes back under a different AP.
            assert not (fresh & retired)
            seen |= world.macs

    def test_protect_exempts_aps(self):
        scenario = small_scenario()
        keep = scenario.environment.aps[0].ap_id
        timeline = DynamicsTimeline(scenario, [APChurn(rate=1.0, protect=(keep,))],
                                    num_epochs=3, seed=0)
        for epoch in range(3):
            assert keep in {ap.ap_id for ap in timeline.world(epoch).environment.aps}

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            APChurn(rate=1.5)


class TestChurnShock:
    def test_fires_only_at_its_epoch(self):
        timeline = DynamicsTimeline(small_scenario(),
                                    [ChurnShock(epoch=2, fraction=0.5)],
                                    num_epochs=4, seed=0)
        assert timeline.world(1).events == ()
        assert any("churn-shock" in e for e in timeline.world(2).events)
        assert timeline.world(3).events == ()

    def test_fraction_of_eligible_replaced(self):
        scenario = small_scenario()
        total = len(scenario.environment.aps)
        timeline = DynamicsTimeline(scenario, [ChurnShock(epoch=1, fraction=0.5)],
                                    num_epochs=2, seed=0)
        before_ids = {ap.ap_id for ap in scenario.environment.aps}
        after_ids = {ap.ap_id for ap in timeline.world(1).environment.aps}
        assert len(before_ids - after_ids) == round(0.5 * total)

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            ChurnShock(epoch=0)


class TestTxPowerDrift:
    def test_walk_stays_clamped(self):
        timeline = DynamicsTimeline(small_scenario(),
                                    [TxPowerDrift(sigma_db=5.0, max_drift_db=2.0)],
                                    num_epochs=8, seed=0)
        origins = {ap.ap_id: ap.radios[0].tx_power_dbm
                   for ap in timeline.world(0).environment.aps}
        for epoch in range(1, 8):
            for ap in timeline.world(epoch).environment.aps:
                drift = abs(ap.radios[0].tx_power_dbm - origins[ap.ap_id])
                assert drift <= 2.0 + 1e-9

    def test_zero_sigma_is_identity(self):
        timeline = DynamicsTimeline(small_scenario(), [TxPowerDrift(sigma_db=0.0)],
                                    num_epochs=3, seed=0)
        assert ap_fingerprint(timeline.world(2).environment) == \
               ap_fingerprint(timeline.world(0).environment)


class TestMacRandomization:
    def test_cohort_rotates_every_period(self):
        timeline = DynamicsTimeline(small_scenario(),
                                    [MacRandomization(cohort_fraction=0.5, period=2)],
                                    num_epochs=5, seed=0)
        macs = [timeline.world(e).macs for e in range(5)]
        assert macs[1] == macs[0]           # off-period epoch: unchanged
        assert macs[2] != macs[1]           # rotation epoch
        assert macs[3] == macs[2]
        assert macs[4] != macs[3]

    def test_rotation_keeps_population_size(self):
        scenario = small_scenario()
        timeline = DynamicsTimeline(scenario,
                                    [MacRandomization(cohort_fraction=0.5, period=1)],
                                    num_epochs=4, seed=0)
        for epoch in range(4):
            assert len(timeline.world(epoch).environment.aps) == \
                   len(scenario.environment.aps)


class TestTransientHotspots:
    def test_hotspots_last_one_epoch(self):
        timeline = DynamicsTimeline(small_scenario(),
                                    [TransientHotspots(max_active=4)],
                                    num_epochs=6, seed=1)
        base = timeline.world(0).macs
        previous_extra: frozenset[str] = frozenset()
        saw_any = False
        for epoch in range(1, 6):
            extra = timeline.world(epoch).macs - base
            assert not (extra & previous_extra)   # never carried over
            saw_any = saw_any or bool(extra)
            previous_extra = extra
        assert saw_any

    def test_hotspots_positioned_in_requested_regions(self):
        scenario = small_scenario()
        timeline = DynamicsTimeline(scenario, [TransientHotspots(max_active=4)],
                                    num_epochs=6, seed=1)
        base_ids = {ap.ap_id for ap in scenario.environment.aps}
        regions = scenario.outside_regions
        for epoch in range(1, 6):
            for ap in timeline.world(epoch).environment.aps:
                if ap.ap_id not in base_ids:
                    assert any(polygon.contains(ap.position) and floor == ap.floor
                               for polygon, floor in regions)


class TestDeviceGainDrift:
    def test_gain_clamped_and_moving(self):
        timeline = DynamicsTimeline(small_scenario(),
                                    [DeviceGainDrift(sigma_db=2.0, max_gain_db=1.5)],
                                    num_epochs=8, seed=0)
        gains = [timeline.world(e).device_gain_db for e in range(8)]
        assert gains[0] == 0.0
        assert all(abs(g) <= 1.5 for g in gains)
        assert len(set(gains)) > 1


class TestMarkovOnOff:
    def test_off_aps_return_with_identical_macs(self):
        """Unlike churn, an OFF AP is the *same* device when it returns."""
        scenario = small_scenario()
        baseline = {ap.ap_id: ap.macs for ap in scenario.environment.aps}
        timeline = DynamicsTimeline(scenario, [MarkovOnOff(p=0.6, q=0.6)],
                                    num_epochs=8, seed=1)
        seen_off = seen_return = False
        previous = set(baseline)
        for world in timeline:
            ids = {ap.ap_id for ap in world.environment.aps}
            assert ids <= set(baseline)
            if len(ids) < len(baseline):
                seen_off = True
            if ids - previous:
                seen_return = True
            for ap in world.environment.aps:
                assert ap.macs == baseline[ap.ap_id]
            previous = ids
        assert seen_off and seen_return

    def test_protect_pins_aps_on(self):
        scenario = small_scenario()
        protect = tuple(ap.ap_id for ap in scenario.environment.aps)[:2]
        timeline = DynamicsTimeline(scenario, [MarkovOnOff(p=1.0, q=0.0,
                                                           protect=protect)],
                                    num_epochs=4, seed=0)
        for world in timeline:
            ids = {ap.ap_id for ap in world.environment.aps}
            assert set(protect) <= ids

    def test_never_empties_world(self):
        scenario = small_scenario()
        timeline = DynamicsTimeline(scenario, [MarkovOnOff(p=1.0, q=0.0)],
                                    num_epochs=5, seed=0)
        for world in timeline:
            assert len(world.environment.aps) >= 1

    def test_stationary_probability(self):
        assert MarkovOnOff(p=0.2, q=0.6).stationary_on_probability() == pytest.approx(0.75)
        assert MarkovOnOff(p=0.0, q=0.0).stationary_on_probability() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovOnOff(p=1.5)
        with pytest.raises(ValueError):
            MarkovOnOff(q=-0.1)

    def test_off_aps_escape_concurrent_churn(self):
        """A powered-down AP is invisible to other schedules while OFF."""
        scenario = small_scenario()
        baseline_ids = {ap.ap_id for ap in scenario.environment.aps}
        timeline = DynamicsTimeline(
            scenario, [MarkovOnOff(p=0.5, q=0.5), APChurn(rate=0.0)],
            num_epochs=6, seed=3)
        for world in timeline:
            assert {ap.ap_id for ap in world.environment.aps} <= baseline_ids


class TestDeclarativeRegistry:
    @pytest.mark.parametrize("name", ["ap-churn", "churn-shock", "tx-power-drift",
                                      "mac-randomization", "markov-onoff",
                                      "transient-hotspots", "device-gain-drift"])
    def test_round_trip(self, name):
        schedule = build_schedule(name, {"epoch": 2} if name == "churn-shock" else {})
        back_name, params = schedule_to_spec(schedule)
        assert back_name == name
        assert build_schedule(back_name, params) == schedule

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown dynamics schedule"):
            build_schedule("nope")

    def test_unknown_param_lists_accepted(self):
        with pytest.raises(ValueError, match="accepted"):
            build_schedule("ap-churn", {"rtae": 0.1})

    def test_missing_required_param_is_a_value_error(self):
        # churn-shock has no default epoch; the TypeError from the
        # constructor must surface as operator-input ValueError.
        with pytest.raises(ValueError, match="churn-shock"):
            build_schedule("churn-shock", {"fraction": 0.4})

    def test_protect_list_coerced(self):
        schedule = build_schedule("ap-churn", {"protect": [1, 2]})
        assert schedule.protect == (1, 2)

    def test_unregistered_instance_rejected(self):
        with pytest.raises(ValueError):
            schedule_to_spec(object())


class TestHomeApIds:
    def test_home_aps_are_the_inside_ones(self):
        scenario = home_scenario(area_m2=50.0, aps_inside=2, aps_near=4,
                                 aps_far=2, seed=0)
        ids = home_ap_ids(scenario)
        assert set(ids) == {1, 2}
