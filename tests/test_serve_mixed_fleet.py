"""Spec-embedded checkpoints: any arm round-trips; fleets serve mixed arms.

Covers the acceptance bar of the declarative-pipeline redesign: every
``ALGORITHM_NAMES`` arm builds from a spec, survives save -> load ->
serve with bit-identical decision scores, mixed-arm fleets evict and
reload heterogeneous tenants without drift, and PR-1-format (version 1)
GEM checkpoints still load through the manifest migration.
"""

import json
import warnings

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core.config import GEMConfig
from repro.core.gem import GEM
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.algorithms import ALGORITHM_NAMES, arm_spec
from repro.pipeline import ComponentSpec, PipelineSpec, build_pipeline
from repro.serve import (
    CHECKPOINT_VERSION,
    CheckpointError,
    GeofenceFleet,
    ModelRegistry,
    load_checkpoint,
    load_checkpoint_with_manifest,
    read_manifest,
    save_checkpoint,
    spec_from_manifest,
)
from repro.serve.checkpoint import MANIFEST_NAME

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1))

TRAIN = synthetic_records(35, seed=0, center=2.0)
PROBE = synthetic_records(8, seed=9, center=3.5)


def fast_arm_spec(name: str):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return arm_spec(name, seed=0, dim=8, gem_config=FAST_CONFIG, strict=False)


def scores_of(model, records=PROBE):
    return [model.observe(record).score for record in records]


class TestEveryArmRoundTrips:
    @pytest.mark.parametrize("name", ALGORITHM_NAMES)
    def test_save_load_serve_bit_identical(self, name, tmp_path):
        spec = fast_arm_spec(name)
        model = build_pipeline(spec).fit(TRAIN)
        save_checkpoint(model, tmp_path / "ckpt")
        loaded, manifest = load_checkpoint_with_manifest(tmp_path / "ckpt")
        assert manifest["format_version"] == CHECKPOINT_VERSION
        assert PipelineSpec.from_dict(manifest["pipeline_spec"]) == spec
        assert loaded.spec == spec
        # Observing mutates both models identically, so stepwise equality
        # proves the restored state matches, not just the first score.
        original = scores_of(model)
        restored = scores_of(loaded)
        for a, b in zip(original, restored):
            assert a == b or (np.isinf(a) and np.isinf(b))


class TestMixedFleet:
    ARMS = ("GEM", "BiSAGE+LOF", "GEM(no-BiSAGE)")

    def provision(self, root, capacity):
        fleet = GeofenceFleet(ModelRegistry(root), capacity=capacity)
        for i, arm in enumerate(self.ARMS):
            fleet.provision(f"tenant-{i}", synthetic_records(30, seed=i, center=float(i)),
                            spec=fast_arm_spec(arm))
        return fleet

    def test_each_tenant_serves_its_own_arm(self, tmp_path):
        fleet = self.provision(tmp_path, capacity=len(self.ARMS))
        assert isinstance(fleet._cache["tenant-0"], GEM)
        assert fleet._cache["tenant-1"].spec.detector.name == "lof"
        assert fleet._cache["tenant-2"].spec.embedder.name == "imputed-matrix"

    def test_eviction_churn_matches_all_resident(self, tmp_path):
        stream = [(f"tenant-{i}", record)
                  for record in synthetic_records(12, seed=77, center=1.0)
                  for i in range(len(self.ARMS))]
        with self.provision(tmp_path / "roomy", capacity=3) as roomy, \
                self.provision(tmp_path / "tight", capacity=1) as tight:
            expected = roomy.observe_many(stream)
            churned = tight.observe_many(stream)
            assert tight.telemetry.totals().evictions > 0
        for a, b in zip(expected, churned):
            assert a.inside == b.inside
            assert a.score == b.score or (np.isinf(a.score) and np.isinf(b.score))

    def test_evict_then_reload_restores_arm(self, tmp_path):
        fleet = self.provision(tmp_path, capacity=len(self.ARMS))
        assert fleet.evict("tenant-1")
        assert "tenant-1" not in fleet.resident_tenants
        decision = fleet.observe("tenant-1", PROBE[0])
        assert fleet._cache["tenant-1"].spec.detector.name == "lof"
        assert decision.score == fleet._cache["tenant-1"].score(PROBE[0])


class TestFormatMigration:
    def make_v1_checkpoint(self, tmp_path):
        """Rewrite a fresh checkpoint into the exact PR-1 (v1) shape."""
        model = GEM(FAST_CONFIG).fit(TRAIN)
        directory = save_checkpoint(model, tmp_path / "legacy")
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 1
        del manifest["pipeline_spec"]
        manifest_path.write_text(json.dumps(manifest))
        return model, directory

    def test_v1_gem_checkpoint_loads_via_migration(self, tmp_path):
        model, directory = self.make_v1_checkpoint(tmp_path)
        assert read_manifest(directory)["format_version"] == 1
        loaded = load_checkpoint(directory)
        assert isinstance(loaded, GEM)
        assert loaded.config == model.config
        assert scores_of(loaded) == scores_of(model)
        # The migrated spec is the GEM model spec with the saved config.
        assert loaded.spec.model.name == "gem"

    def test_v1_resave_upgrades_to_current_format(self, tmp_path):
        _, directory = self.make_v1_checkpoint(tmp_path)
        loaded = load_checkpoint(directory)
        save_checkpoint(loaded, directory)
        manifest = read_manifest(directory)
        assert manifest["format_version"] == CHECKPOINT_VERSION
        assert "pipeline_spec" in manifest

    def test_v1_non_gem_rejected(self, tmp_path):
        _, directory = self.make_v1_checkpoint(tmp_path)
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["model_class"] = "Mystery"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="pipeline_spec"):
            load_checkpoint(directory)

    def test_future_version_rejected(self, tmp_path):
        from repro.serve.checkpoint import SUPPORTED_VERSIONS
        _, directory = self.make_v1_checkpoint(tmp_path)
        manifest_path = directory / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = max(SUPPORTED_VERSIONS) + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(directory)

    def test_bad_embedded_spec_is_a_checkpoint_error(self):
        with pytest.raises(CheckpointError, match="pipeline_spec"):
            spec_from_manifest({"format_version": 2, "pipeline_spec": {"bogus": 1}}, {})

    def test_corrupt_v1_config_is_a_checkpoint_error(self):
        # A non-JSON-safe leaf inside a legacy config must surface as a
        # CheckpointError (the documented contract), not a raw TypeError.
        manifest = {"format_version": 1, "model_class": "GEM"}
        with pytest.raises(CheckpointError, match="unmigratable"):
            spec_from_manifest(manifest, {"config": {"bisage": object()}})


class TestSaveRequiresSpec:
    def test_unspecced_composite_pipeline_rejected(self, tmp_path):
        from repro.core.embedders import ImputedMatrixEmbedder
        from repro.core.gem import EmbeddingGeofencer
        from repro.detection.histogram import HistogramDetector
        pipeline = EmbeddingGeofencer(ImputedMatrixEmbedder(), HistogramDetector()).fit(TRAIN)
        pipeline.spec = None
        with pytest.raises(TypeError, match="build_pipeline"):
            save_checkpoint(pipeline, tmp_path / "nope")

    def test_explicit_spec_argument_wins(self, tmp_path):
        spec = fast_arm_spec("GEM(no-BiSAGE)")
        pipeline = build_pipeline(spec).fit(TRAIN)
        pipeline.spec = None
        save_checkpoint(pipeline, tmp_path / "ckpt", spec=spec)
        loaded = load_checkpoint(tmp_path / "ckpt")
        assert loaded.spec == spec
