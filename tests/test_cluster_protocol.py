"""Framing protocol: frames, handshake, codecs, malformed peers."""

import io
import math

import pytest

from conftest import make_record
from repro.core.protocols import GeofenceDecision
from repro.serve.cluster.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    check_hello,
    decode_decision,
    decode_record,
    encode_decision,
    encode_record,
    hello_frame,
    read_frame,
    write_frame,
)


def roundtrip(header, blobs=()):
    stream = io.BytesIO()
    write_frame(stream, header, blobs)
    stream.seek(0)
    return read_frame(stream), stream


class TestFraming:
    def test_header_only_roundtrip(self):
        (header, blobs), _ = roundtrip({"type": "request", "id": 7, "op": "ping"})
        assert header == {"type": "request", "id": 7, "op": "ping"}
        assert blobs == []

    def test_blobs_roundtrip_in_order(self):
        payload = [b"alpha", b"", b"\x00\x01\x02" * 100]
        (header, blobs), _ = roundtrip({"type": "replicate"}, payload)
        assert blobs == payload
        assert "blobs" not in header      # consumed into the blob list

    def test_write_does_not_mutate_caller_header(self):
        header = {"type": "replicate"}
        write_frame(io.BytesIO(), header, [b"x"])
        assert header == {"type": "replicate"}

    def test_multiple_frames_on_one_stream(self):
        stream = io.BytesIO()
        write_frame(stream, {"type": "a"})
        write_frame(stream, {"type": "b"}, [b"bb"])
        stream.seek(0)
        assert read_frame(stream)[0]["type"] == "a"
        header, blobs = read_frame(stream)
        assert header["type"] == "b" and blobs == [b"bb"]
        assert read_frame(stream) is None

    def test_clean_eof_at_boundary_is_none(self):
        assert read_frame(io.BytesIO()) is None

    def test_eof_inside_header_raises(self):
        stream = io.BytesIO()
        write_frame(stream, {"type": "request", "id": 1, "op": "x"})
        truncated = io.BytesIO(stream.getvalue()[:-3])
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(truncated)

    def test_eof_inside_blob_raises(self):
        stream = io.BytesIO()
        write_frame(stream, {"type": "replicate"}, [b"0123456789"])
        truncated = io.BytesIO(stream.getvalue()[:-4])
        with pytest.raises(ProtocolError, match="truncated"):
            read_frame(truncated)

    def test_absurd_length_prefix_rejected(self):
        stream = io.BytesIO((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(ProtocolError, match="desynchronised"):
            read_frame(stream)

    def test_zero_length_prefix_rejected(self):
        with pytest.raises(ProtocolError, match="desynchronised"):
            read_frame(io.BytesIO((0).to_bytes(4, "big") * 2))

    def test_non_json_header_rejected(self):
        garbage = b"\xff\xfe\xfd\xfc"
        stream = io.BytesIO(len(garbage).to_bytes(4, "big") + garbage)
        with pytest.raises(ProtocolError, match="not JSON"):
            read_frame(stream)

    def test_untyped_header_rejected(self):
        payload = b'["a", "list"]'
        stream = io.BytesIO(len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(ProtocolError, match="typed object"):
            read_frame(stream)

    def test_bad_blob_length_rejected(self):
        payload = b'{"type": "replicate", "blobs": [-5]}'
        stream = io.BytesIO(len(payload).to_bytes(4, "big") + payload)
        with pytest.raises(ProtocolError, match="blob length"):
            read_frame(stream)


class TestHandshake:
    def test_hello_roundtrip(self):
        (header, _), _ = roundtrip(hello_frame(worker=3, pid=123))
        checked = check_hello(header, who="worker 3")
        assert checked["version"] == PROTOCOL_VERSION
        assert checked["worker"] == 3

    def test_version_mismatch_is_error_not_downgrade(self):
        hello = hello_frame()
        hello["version"] = PROTOCOL_VERSION + 1
        with pytest.raises(ProtocolError, match="no downgrade"):
            check_hello(hello, who="peer")

    def test_non_hello_first_frame_rejected(self):
        with pytest.raises(ProtocolError, match="before the handshake"):
            check_hello({"type": "request", "id": 1}, who="peer")


class TestCodecs:
    def test_record_roundtrip_is_bit_exact(self):
        record = make_record({"aa": -50.123456789012345, "bb": -61.0}, t=17.25)
        back = decode_record(encode_record(record))
        assert back.readings == record.readings
        assert back.timestamp == record.timestamp

    def test_decision_roundtrip_is_bit_exact(self):
        decision = GeofenceDecision(inside=True, score=0.1 + 0.2,  # 0.30000000000000004
                                    confident=False, buffered=True, updated=False)
        back = decode_decision(encode_decision(decision))
        assert back == decision
        assert back.score == decision.score          # exact, not approx

    def test_decision_with_infinite_score_survives_json(self):
        import json
        decision = GeofenceDecision(inside=False, score=math.inf,
                                    confident=True, buffered=False, updated=False)
        wire = json.loads(json.dumps(encode_decision(decision)))
        assert decode_decision(wire) == decision

    def test_malformed_decision_payload_raises(self):
        with pytest.raises(ProtocolError, match="malformed decision"):
            decode_decision({"inside": True})
