"""Alias tables, weighted neighbour sampling, negative sampling, walks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SignalRecord
from repro.graph import (
    MAC,
    RECORD,
    AliasTable,
    NegativeSampler,
    RandomWalker,
    WalkConfig,
    WeightedBipartiteGraph,
    WeightedNeighborSampler,
    walk_pairs,
)


def chain_graph():
    """r0 - {a,b}, r1 - {b,c}: a 5-node path in bipartite form."""
    graph = WeightedBipartiteGraph()
    graph.add_record(SignalRecord({"a": -50.0, "b": -60.0}))
    graph.add_record(SignalRecord({"b": -55.0, "c": -70.0}))
    return graph


class TestAliasTable:
    def test_probabilities_normalised(self):
        table = AliasTable([1.0, 3.0])
        np.testing.assert_allclose(table.probabilities, [0.25, 0.75])

    def test_empirical_distribution_matches(self):
        table = AliasTable([1.0, 2.0, 7.0])
        rng = np.random.default_rng(0)
        draws = table.sample(rng, size=20000)
        freq = np.bincount(draws, minlength=3) / 20000
        np.testing.assert_allclose(freq, [0.1, 0.2, 0.7], atol=0.02)

    def test_single_draw_returns_int(self):
        assert isinstance(AliasTable([1.0]).sample(np.random.default_rng(0)), int)

    def test_zero_weight_never_sampled(self):
        table = AliasTable([0.0, 1.0])
        draws = table.sample(np.random.default_rng(0), size=1000)
        assert (draws == 1).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AliasTable([])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            AliasTable([1.0, -1.0])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            AliasTable([0.0, 0.0])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(0.01, 10.0), min_size=1, max_size=10))
    def test_property_draws_in_range(self, weights):
        table = AliasTable(weights)
        draws = table.sample(np.random.default_rng(1), size=100)
        assert ((draws >= 0) & (draws < len(weights))).all()


class TestWeightedNeighborSampler:
    def test_small_degree_returns_full_neighborhood(self):
        graph = chain_graph()
        sampler = WeightedNeighborSampler(graph, sample_size=10, rng=0)
        neighbors, weights = sampler.sample(RECORD, 0)
        assert len(neighbors) == 2

    def test_large_degree_subsamples(self):
        graph = WeightedBipartiteGraph()
        graph.add_record(SignalRecord({f"m{i}": -50.0 for i in range(30)}))
        sampler = WeightedNeighborSampler(graph, sample_size=5, rng=0)
        neighbors, _ = sampler.sample(RECORD, 0)
        assert len(neighbors) == 5

    def test_weight_bias(self):
        # Degree (6) exceeds the sample size (2) so true sampling happens;
        # 'strong' (w=90) should dominate the five weak MACs (w=10 each).
        graph = WeightedBipartiteGraph()
        readings = {f"weak{i}": -110.0 for i in range(5)}
        readings["strong"] = -30.0
        graph.add_record(SignalRecord(readings))
        sampler = WeightedNeighborSampler(graph, sample_size=2, rng=0)
        strong_idx = graph.mac_index("strong")
        hits = 0
        total = 0
        for _ in range(300):
            sampled, _ = sampler.sample(RECORD, 0)
            hits += (sampled == strong_idx).sum()
            total += len(sampled)
        assert hits / total > 0.5  # 90/140 ≈ 0.64 expected vs 0.167 uniform

    def test_isolated_node_empty(self):
        graph = chain_graph()
        idx = graph.add_record(SignalRecord({}))
        sampler = WeightedNeighborSampler(graph, sample_size=5, rng=0)
        neighbors, weights = sampler.sample(RECORD, idx)
        assert len(neighbors) == 0

    def test_invalid_sample_size(self):
        with pytest.raises(ValueError):
            WeightedNeighborSampler(chain_graph(), sample_size=0)


class TestNegativeSampler:
    def test_returns_requested_count(self):
        sampler = NegativeSampler(chain_graph(), rng=0)
        assert len(sampler.sample(7)) == 7

    def test_refs_are_valid(self):
        graph = chain_graph()
        sampler = NegativeSampler(graph, rng=0)
        for side, index in sampler.sample(50):
            if side == RECORD:
                assert 0 <= index < graph.num_records
            else:
                assert side == MAC and 0 <= index < graph.num_macs

    def test_degree_bias(self):
        # MAC 'b' has degree 2, others degree 1: it should be sampled most
        # among MAC nodes under deg^{3/4}.
        graph = chain_graph()
        sampler = NegativeSampler(graph, power=0.75, rng=0)
        counts = {}
        for side, index in sampler.sample(6000):
            if side == MAC:
                counts[index] = counts.get(index, 0) + 1
        b = graph.mac_index("b")
        assert counts[b] == max(counts.values())

    def test_rebuilds_after_growth(self):
        graph = chain_graph()
        sampler = NegativeSampler(graph, rng=0)
        sampler.sample(5)
        graph.add_record(SignalRecord({"zz": -40.0}))
        refs = sampler.sample(200)
        assert any(side == MAC and index == graph.mac_index("zz") for side, index in refs)

    def test_sample_global_range(self):
        graph = chain_graph()
        sampler = NegativeSampler(graph, rng=0)
        ids = sampler.sample_global(100)
        assert ((ids >= 0) & (ids < graph.num_records + graph.num_macs)).all()

    def test_invalid_power(self):
        with pytest.raises(ValueError):
            NegativeSampler(chain_graph(), power=-1.0)


class TestRandomWalks:
    def test_walk_alternates_partitions(self):
        walker = RandomWalker(chain_graph(), WalkConfig(walk_length=5), rng=0)
        walk = walker.walk_from(RECORD, 0)
        for (side_a, _), (side_b, _) in zip(walk[:-1], walk[1:]):
            assert side_a != side_b

    def test_walk_respects_length(self):
        walker = RandomWalker(chain_graph(), WalkConfig(walk_length=4), rng=0)
        assert len(walker.walk_from(RECORD, 0)) == 4

    def test_walk_stops_at_isolated_node(self):
        graph = chain_graph()
        idx = graph.add_record(SignalRecord({}))
        walker = RandomWalker(graph, WalkConfig(walk_length=5), rng=0)
        assert walker.walk_from(RECORD, idx) == [(RECORD, idx)]

    def test_corpus_skips_isolated_nodes(self):
        graph = chain_graph()
        graph.add_record(SignalRecord({}))
        walker = RandomWalker(graph, WalkConfig(walk_length=3, walks_per_node=2), rng=0)
        corpus = walker.corpus()
        # 5 connected nodes x 2 walks (isolated record excluded)
        assert len(corpus) == 10

    def test_walk_weight_bias(self):
        graph = WeightedBipartiteGraph()
        graph.add_record(SignalRecord({"strong": -25.0, "weak": -115.0}))
        walker = RandomWalker(graph, WalkConfig(walk_length=2), rng=0)
        strong = graph.mac_index("strong")
        hits = sum(walker.walk_from(RECORD, 0)[1] == (MAC, strong) for _ in range(200))
        assert hits > 160

    def test_walk_pairs_window_one(self):
        walk = [(RECORD, 0), (MAC, 1), (RECORD, 2)]
        pairs = walk_pairs([walk], window=1)
        assert pairs == [((RECORD, 0), (MAC, 1)), ((MAC, 1), (RECORD, 2))]

    def test_walk_pairs_window_two(self):
        walk = [(RECORD, 0), (MAC, 1), (RECORD, 2)]
        pairs = walk_pairs([walk], window=2)
        assert ((RECORD, 0), (RECORD, 2)) in pairs
        assert len(pairs) == 3

    def test_walk_pairs_invalid_window(self):
        with pytest.raises(ValueError):
            walk_pairs([], window=0)

    def test_walk_config_validation(self):
        with pytest.raises(ValueError):
            WalkConfig(walk_length=0)
