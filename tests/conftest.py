"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.records import SignalRecord


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        f_plus = fn(x)
        flat[i] = original - eps
        f_minus = fn(x)
        flat[i] = original
        grad_flat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def make_record(macs_rss: dict[str, float] | None = None, t: float = 0.0) -> SignalRecord:
    """A small deterministic record for unit tests."""
    readings = macs_rss if macs_rss is not None else {"aa": -50.0, "bb": -60.0, "cc": -70.0}
    return SignalRecord(readings, timestamp=t)


def synthetic_records(n: int, num_macs: int = 8, seed: int = 0,
                      center: float = 0.0) -> list[SignalRecord]:
    """Records whose RSS pattern depends smoothly on ``center``.

    Gives embedding/detection tests a cheap stand-in for real scans:
    records generated at nearby centers look similar, distant centers
    look different, and each record senses a random subset of MACs.
    """
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        readings = {}
        for m in range(num_macs):
            rss = -45.0 - 6.0 * abs(m - center) + rng.normal(0, 1.5)
            if rss > -95 and rng.random() < 0.9:
                readings[f"mac{m:02d}"] = float(rss)
        if not readings:
            readings["mac00"] = -80.0
        records.append(SignalRecord(readings, timestamp=float(i)))
    return records


@pytest.fixture
def rng():
    return np.random.default_rng(12345)
