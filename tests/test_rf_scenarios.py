"""Scenario builders: geometry sanity and RF plausibility."""

import numpy as np
import pytest

from repro.rf.scenarios import home_scenario, lab_scenario, multi_floor_building
from repro.rf.scanner import Scanner
from repro.rf.trajectory import TimedPosition


class TestHomeScenario:
    def test_geofence_area_close_to_request(self):
        scenario = home_scenario(area_m2=50.0, seed=0)
        assert scenario.environment.geofence.area == pytest.approx(50.0, rel=0.05)

    def test_regions_are_disjoint_from_geofence(self):
        scenario = home_scenario(area_m2=50.0, seed=0)
        geofence = scenario.environment.geofence
        rng = np.random.default_rng(0)
        for region, floor in scenario.outside_regions:
            for _ in range(10):
                point = region.sample_point(rng)
                assert not (geofence.contains(point) and
                            floor in scenario.environment.geofence_floors)

    def test_detached_has_two_floors(self):
        scenario = home_scenario(area_m2=200.0, detached=True, seed=0)
        assert scenario.environment.geofence_floors == (0, 1)
        assert len(scenario.inside_regions) == 2

    def test_attached_single_floor(self):
        scenario = home_scenario(area_m2=50.0, detached=False, seed=0)
        assert scenario.environment.geofence_floors == (0,)

    def test_ap_counts(self):
        scenario = home_scenario(aps_inside=2, aps_near=5, aps_far=3, seed=0)
        assert len(scenario.environment.aps) == 10

    def test_deterministic_in_seed(self):
        a = home_scenario(seed=5)
        b = home_scenario(seed=5)
        assert [ap.position for ap in a.environment.aps] == \
               [ap.position for ap in b.environment.aps]

    def test_different_seeds_differ(self):
        a = home_scenario(seed=5)
        b = home_scenario(seed=6)
        assert [ap.position for ap in a.environment.aps] != \
               [ap.position for ap in b.environment.aps]

    def test_inside_rss_stronger_than_outside(self):
        # The home AP should read stronger inside than in the away region.
        scenario = home_scenario(area_m2=50.0, seed=1)
        env = scenario.environment
        home_mac = env.aps[0].macs[0]
        inside_rss = env.propagation.mean_rss(
            env.aps[0].radios[0].tx_power_dbm, home_mac, "2.4",
            env.aps[0].position, env.aps[0].floor,
            env.geofence.centroid(), 0)
        away_region, away_floor = scenario.outside_regions[-1]
        away_rss = env.propagation.mean_rss(
            env.aps[0].radios[0].tx_power_dbm, home_mac, "2.4",
            env.aps[0].position, env.aps[0].floor,
            away_region.centroid(), away_floor)
        assert inside_rss > away_rss + 10


class TestLabScenario:
    def test_corridor_is_outside(self):
        scenario = lab_scenario(seed=0)
        corridor, floor = scenario.outside_regions[0]
        assert not scenario.environment.is_inside(corridor.centroid(), floor)

    def test_transient_aps_add_macs(self):
        quiet = lab_scenario(seed=0, transient_aps=0)
        busy = lab_scenario(seed=0, transient_aps=8)
        assert len(busy.environment.aps) == len(quiet.environment.aps) + 8

    def test_lab_area(self):
        scenario = lab_scenario(seed=0)
        assert scenario.area_m2 == pytest.approx(15 * 8)


class TestMultiFloorBuilding:
    def test_geofence_is_one_floor(self):
        scenario = multi_floor_building(num_floors=5, geofence_floor=2, seed=0)
        assert scenario.environment.geofence_floors == (2,)
        assert len(scenario.outside_regions) == 4

    def test_invalid_geofence_floor(self):
        with pytest.raises(ValueError):
            multi_floor_building(num_floors=3, geofence_floor=5)

    def test_aps_spread_over_floors(self):
        scenario = multi_floor_building(num_floors=4, aps_per_floor=6, seed=0)
        floors = {ap.floor for ap in scenario.environment.aps}
        assert floors == {0, 1, 2, 3}

    def test_cross_floor_attenuation_visible(self):
        # A scan two floors away should read the same AP much weaker.
        scenario = multi_floor_building(num_floors=3, geofence_floor=1, seed=0)
        env = scenario.environment
        scanner = Scanner(env, rng=0)
        ap = env.aps[0]
        same = env.propagation.mean_rss(ap.radios[0].tx_power_dbm, ap.macs[0], "2.4",
                                        ap.position, ap.floor, ap.position, ap.floor)
        far = env.propagation.mean_rss(ap.radios[0].tx_power_dbm, ap.macs[0], "2.4",
                                       ap.position, ap.floor, ap.position, ap.floor + 2)
        assert same - far > 20

    def test_extras_recorded(self):
        scenario = multi_floor_building(num_floors=5, geofence_floor=2, seed=0)
        assert scenario.extras["num_floors"] == 5
        assert scenario.extras["geofence_floor"] == 2
