"""Timing probes used by the Fig. 14 bench."""

import numpy as np
import pytest

from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.timing import InferenceTiming, measure_batch_update, measure_inference_breakdown

from conftest import synthetic_records

FAST = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


@pytest.fixture(scope="module")
def gem():
    model = GEM(FAST)
    model.fit(synthetic_records(40, seed=0, center=2.0))
    return model


class TestBreakdown:
    def test_measures_all_steps(self, gem):
        probe = synthetic_records(10, seed=1, center=2.0)
        timing = measure_inference_breakdown(gem, probe)
        assert timing.embed_ms >= 0
        assert timing.detect_ms >= 0
        assert timing.update_ms > 0  # update is forced per record
        assert timing.total_ms == pytest.approx(
            timing.embed_ms + timing.detect_ms + timing.update_ms)

    def test_empty_records_rejected(self, gem):
        with pytest.raises(ValueError):
            measure_inference_breakdown(gem, [])

    def test_dataclass_fields(self):
        timing = InferenceTiming(embed_ms=1.0, detect_ms=2.0, update_ms=3.0)
        assert timing.total_ms == 6.0


class TestBatchUpdate:
    def test_returns_per_batch_and_total(self, gem):
        stream = np.random.default_rng(0).standard_normal((30, 8)) * 0.05
        per_batch, total = measure_batch_update(gem, stream, batch_size=10)
        assert per_batch > 0
        assert total >= per_batch

    def test_absorbs_all_samples(self, gem):
        before = gem.detector.num_samples
        stream = np.random.default_rng(1).standard_normal((12, 8)) * 0.05
        measure_batch_update(gem, stream, batch_size=5)
        assert gem.detector.num_samples == before + 12

    def test_invalid_batch_size(self, gem):
        with pytest.raises(ValueError):
            measure_batch_update(gem, np.zeros((4, 8)), batch_size=0)
