"""RecordEmbedder adapters: graph plumbing and matrix plumbing."""

import numpy as np
import pytest

from repro.core.embedders import (
    AutoencoderEmbedder,
    BiSAGEEmbedder,
    GraphSAGEEmbedder,
    ImputedMatrixEmbedder,
    MDSEmbedder,
)
from repro.core.records import SignalRecord
from repro.embedding.autoencoder import AutoencoderConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.embedding.graphsage import GraphSAGEConfig

from conftest import synthetic_records

FAST_BISAGE = BiSAGEConfig(dim=8, epochs=1, seed=0)
FAST_SAGE = GraphSAGEConfig(dim=8, epochs=1, seed=0)


class TestGraphEmbedders:
    def test_training_embeddings_shape(self):
        records = synthetic_records(25, seed=0)
        embedder = BiSAGEEmbedder(FAST_BISAGE).fit(records)
        assert embedder.training_embeddings().shape == (25, 8)

    def test_training_embeddings_stable_after_stream(self):
        # Attaching streamed records must not change the reported
        # *training* embeddings count.
        records = synthetic_records(20, seed=0)
        embedder = BiSAGEEmbedder(FAST_BISAGE).fit(records)
        embedder.embed(synthetic_records(1, seed=5)[0], attach=True)
        assert embedder.training_embeddings().shape == (20, 8)

    def test_attach_grows_graph(self):
        embedder = BiSAGEEmbedder(FAST_BISAGE).fit(synthetic_records(20, seed=0))
        before = embedder.graph.num_records
        embedder.embed(synthetic_records(1, seed=5)[0], attach=True)
        assert embedder.graph.num_records == before + 1

    def test_no_attach_leaves_graph(self):
        embedder = BiSAGEEmbedder(FAST_BISAGE).fit(synthetic_records(20, seed=0))
        before = embedder.graph.num_records
        embedder.embed(synthetic_records(1, seed=5)[0], attach=False)
        assert embedder.graph.num_records == before

    def test_unknown_macs_return_none_but_attach(self):
        embedder = BiSAGEEmbedder(FAST_BISAGE).fit(synthetic_records(20, seed=0))
        record = SignalRecord({"unseen-mac": -44.0})
        assert embedder.embed(record, attach=True) is None
        # The record (and its MAC) still joined the graph.
        assert embedder.graph.mac_index("unseen-mac") is not None

    def test_refresh_every_triggers(self):
        embedder = BiSAGEEmbedder(FAST_BISAGE, refresh_every=3)
        embedder.fit(synthetic_records(20, seed=0))
        macs_before = embedder.model._macs_aggregated
        stream = synthetic_records(3, seed=5)
        novel = SignalRecord({**stream[0].readings, "brand-new": -50.0})
        embedder.embed(novel, attach=True)
        embedder.embed(stream[1], attach=True)
        # The raw auto-refresh still works (the naive baseline the
        # coordinated path is benchmarked against) but is deprecated.
        with pytest.warns(DeprecationWarning, match="without refitting"):
            embedder.embed(stream[2], attach=True)  # refresh fires here
        assert embedder.model._macs_aggregated > macs_before

    def test_graphsage_adapter(self):
        embedder = GraphSAGEEmbedder(FAST_SAGE).fit(synthetic_records(20, seed=0))
        assert embedder.training_embeddings().shape == (20, 8)
        out = embedder.embed(synthetic_records(1, seed=6)[0], attach=True)
        assert out.shape == (8,)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            BiSAGEEmbedder(FAST_BISAGE).embed(SignalRecord({"a": -50.0}))

    def test_empty_training_rejected(self):
        with pytest.raises(ValueError):
            BiSAGEEmbedder(FAST_BISAGE).fit([])


class TestMatrixEmbedders:
    def test_imputed_matrix_identity(self):
        records = synthetic_records(15, seed=0)
        embedder = ImputedMatrixEmbedder().fit(records)
        training = embedder.training_embeddings()
        assert training.shape[0] == 15
        row = embedder.embed(records[0])
        np.testing.assert_allclose(row, training[0])

    def test_imputed_unknown_record_none(self):
        embedder = ImputedMatrixEmbedder().fit(synthetic_records(15, seed=0))
        assert embedder.embed(SignalRecord({"nope": -50.0})) is None

    def test_autoencoder_adapter(self):
        records = synthetic_records(25, num_macs=24, seed=0)
        embedder = AutoencoderEmbedder(AutoencoderConfig(dim=6, epochs=2, seed=0))
        embedder.fit(records)
        assert embedder.training_embeddings().shape == (25, 6)
        assert embedder.embed(records[0]).shape == (6,)

    def test_mds_adapter(self):
        records = synthetic_records(25, seed=0)
        embedder = MDSEmbedder(dim=6).fit(records)
        assert embedder.training_embeddings().shape == (25, 6)
        assert embedder.embed(records[0]).shape == (6,)

    def test_mds_unfitted(self):
        with pytest.raises(RuntimeError):
            MDSEmbedder(dim=4).training_embeddings()
