"""Quarantine buffers + starvation recovery: admission, determinism,
persistence, the recovery control path, and bit-identity when disabled."""

import json

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.core.protocols import GeofenceDecision
from repro.core.records import SignalRecord
from repro.embedding.bisage import BiSAGEConfig
from repro.obs.metrics import MetricsRegistry
from repro.serve import (
    QUARANTINE_METADATA_KEY,
    ConsistencyGate,
    FleetController,
    GeofenceFleet,
    MaintenancePolicy,
    ModelRegistry,
    QuarantineBuffer,
    RecoveryPolicy,
    ServingRuntime,
    home_anchor_macs,
)

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def train_records(n: int = 30):
    return synthetic_records(n, num_macs=10, seed=0, center=2.0)


def new_world_record(i: int, home, rng) -> SignalRecord:
    """Post-shock scan: home APs still near the top, ambient replaced."""
    readings = {}
    for mac in sorted(home)[:3]:
        readings[mac] = float(-50.0 + rng.normal(0, 2.0))
    for k in range(5):
        readings[f"new{k:02d}"] = float(-55.0 - 4 * k + rng.normal(0, 2.0))
    return SignalRecord(readings, timestamp=1000.0 + i)


def drive_new_world(fleet, tenant: str, home, n: int = 120, seed: int = 7):
    rng = np.random.default_rng(seed)
    return [fleet.observe(tenant, new_world_record(i, home, rng))
            for i in range(n)]


class AcceptAll:
    def predict(self, record):
        return True


class RejectAll:
    def predict(self, record):
        return False


# ----------------------------------------------------------------------
# home_anchor_macs
# ----------------------------------------------------------------------
class TestHomeAnchorMacs:
    def test_majority_macs_only(self):
        records = [SignalRecord({"home": -50.0, f"amb{i}": -70.0})
                   for i in range(5)]
        assert home_anchor_macs(records) == {"home"}

    def test_threshold_is_inclusive(self):
        records = [SignalRecord({"a": -50.0, "b": -60.0}),
                   SignalRecord({"a": -50.0, "b": -60.0}),
                   SignalRecord({"a": -50.0, "c": -60.0}),
                   SignalRecord({"a": -50.0, "c": -60.0}),
                   SignalRecord({"a": -50.0, "d": -60.0})]
        # a: 5/5; b, c: 2/5; with min_fraction 0.4 b and c qualify.
        assert home_anchor_macs(records, min_fraction=0.4) == {"a", "b", "c"}

    def test_empty_records(self):
        assert home_anchor_macs([]) == frozenset()

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5])
    def test_bad_fraction(self, bad):
        with pytest.raises(ValueError, match="min_fraction"):
            home_anchor_macs([SignalRecord({"a": -50.0})], min_fraction=bad)


# ----------------------------------------------------------------------
# ConsistencyGate
# ----------------------------------------------------------------------
class TestConsistencyGate:
    def test_augment_is_deterministic_per_rng(self):
        gate = ConsistencyGate()
        record = SignalRecord({f"m{i}": -50.0 - i for i in range(8)})
        a = gate.augment(record, np.random.default_rng(3))
        b = gate.augment(record, np.random.default_rng(3))
        assert a.readings == b.readings

    def test_augment_keeps_at_least_one_reading(self):
        gate = ConsistencyGate(dropout=0.99)
        record = SignalRecord({"a": -50.0, "b": -60.0})
        for seed in range(20):
            out = gate.augment(record, np.random.default_rng(seed))
            assert out.readings
            # When everything drops, the strongest survives.
            if len(out.readings) == 1 and "b" not in out.readings:
                assert "a" in out.readings

    def test_gain_is_global_and_clamped(self):
        gate = ConsistencyGate(dropout=0.0, gain_sigma_db=50.0, max_gain_db=3.0)
        record = SignalRecord({"a": -50.0, "b": -60.0})
        out = gate.augment(record, np.random.default_rng(0))
        shifts = {out.readings["a"] - (-50.0), out.readings["b"] - (-60.0)}
        assert len({round(s, 9) for s in shifts}) == 1     # one global offset
        assert abs(next(iter(shifts))) <= 3.0 + 1e-9

    def test_stable_rejection_semantics(self):
        gate = ConsistencyGate(passes=3)
        record = SignalRecord({"a": -50.0, "b": -60.0})
        assert gate.stable_rejection(RejectAll(), record,
                                     np.random.default_rng(0))
        assert not gate.stable_rejection(AcceptAll(), record,
                                         np.random.default_rng(0))

    @pytest.mark.parametrize("kwargs", [{"passes": 0}, {"passes": True},
                                        {"dropout": 1.0}, {"dropout": -0.1},
                                        {"gain_sigma_db": -1.0}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConsistencyGate(**kwargs)


# ----------------------------------------------------------------------
# QuarantineBuffer unit behaviour
# ----------------------------------------------------------------------
def anchored_record(i: int) -> SignalRecord:
    return SignalRecord({"home": -50.0, f"amb{i % 7}": -60.0},
                        timestamp=float(i))


class TestQuarantineBuffer:
    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            QuarantineBuffer(0)

    def test_no_anchor_is_rejected_without_rng_use(self):
        buffer = QuarantineBuffer(4)
        buffer.set_home({"home"})
        far = SignalRecord({"home": -90.0, "amb": -40.0})    # 50 dB off the top
        assert buffer.consider(RejectAll(), far) == "no-anchor"
        assert buffer.offered == 0 and buffer.seen == 0

    def test_anchor_margin(self):
        buffer = QuarantineBuffer(4, anchor_margin_db=12.0)
        buffer.set_home({"home"})
        assert buffer.anchored(SignalRecord({"home": -61.9, "amb": -50.0}))
        assert not buffer.anchored(SignalRecord({"home": -62.1, "amb": -50.0}))

    def test_inconsistent_candidates_are_dropped(self):
        buffer = QuarantineBuffer(4, gate=ConsistencyGate())
        buffer.set_home({"home"})
        assert buffer.consider(AcceptAll(), anchored_record(0)) == "inconsistent"
        assert buffer.offered == 1 and buffer.seen == 0 and buffer.depth == 0

    def test_bounded_with_reservoir_turnover(self):
        buffer = QuarantineBuffer(8, seed=1, tenant_key="t")
        buffer.set_home({"home"})
        outcomes = [buffer.consider(RejectAll(), anchored_record(i))
                    for i in range(100)]
        assert buffer.depth == 8
        assert buffer.seen == 100
        assert outcomes[:8] == ["admitted"] * 8
        tail = outcomes[8:]
        assert "sampled-out" in tail and "admitted" in tail

    def test_retained_set_is_seed_deterministic(self):
        def run(seed):
            buffer = QuarantineBuffer(8, seed=seed, tenant_key="t")
            buffer.set_home({"home"})
            for i in range(200):
                buffer.consider(RejectAll(), anchored_record(i))
            return [r.timestamp for r in buffer.records]

        assert run(seed=5) == run(seed=5)
        assert run(seed=5) != run(seed=6)

    def test_round_trip_mid_stream_matches_uninterrupted(self):
        """Evict/reload anywhere in the stream must not change the sample."""
        def uninterrupted():
            buffer = QuarantineBuffer(8, seed=3, tenant_key="t")
            buffer.set_home({"home"})
            for i in range(150):
                buffer.consider(RejectAll(), anchored_record(i))
            return buffer

        for cut in (0, 7, 8, 80, 149):
            buffer = QuarantineBuffer(8, seed=3, tenant_key="t")
            buffer.set_home({"home"})
            for i in range(cut):
                buffer.consider(RejectAll(), anchored_record(i))
            reloaded = QuarantineBuffer.from_state(
                buffer.state_dict(), capacity=8, seed=3, tenant_key="t")
            for i in range(cut, 150):
                reloaded.consider(RejectAll(), anchored_record(i))
            want = uninterrupted()
            assert [r.timestamp for r in reloaded.records] \
                == [r.timestamp for r in want.records]
            assert (reloaded.seen, reloaded.offered) == (want.seen, want.offered)

    def test_gate_rng_round_trips_via_offered_counter(self):
        """The gate's per-candidate randomness keys on ``offered``, so a
        reloaded buffer grades the next candidate identically."""
        gate = ConsistencyGate()
        a = QuarantineBuffer(4, seed=2, tenant_key="t", gate=gate)
        a.set_home({"home"})
        for i in range(10):
            a.consider(RejectAll(), anchored_record(i))
        b = QuarantineBuffer.from_state(a.state_dict(), capacity=4, seed=2,
                                        tenant_key="t", gate=gate)
        probe = anchored_record(999)
        assert a._candidate_rng(a.offered).random() \
            == b._candidate_rng(b.offered).random()
        assert a.consider(RejectAll(), probe) == b.consider(RejectAll(), probe)

    def test_state_dict_round_trip_and_shrunk_capacity(self):
        buffer = QuarantineBuffer(8, seed=1, tenant_key="t")
        buffer.set_home({"home", "other"})
        for i in range(20):
            buffer.consider(RejectAll(), anchored_record(i))
        state = json.loads(json.dumps(buffer.state_dict()))   # JSON-safe
        same = QuarantineBuffer.from_state(state, capacity=8, seed=1,
                                           tenant_key="t")
        assert [r.readings for r in same.records] \
            == [r.readings for r in buffer.records]
        assert same.home_macs == buffer.home_macs
        smaller = QuarantineBuffer.from_state(state, capacity=3, seed=1,
                                              tenant_key="t")
        assert smaller.depth == 3
        assert [r.timestamp for r in smaller.records] \
            == [r.timestamp for r in buffer.records[:3]]

    def test_dormant_and_clear(self):
        buffer = QuarantineBuffer(4)
        assert buffer.dormant
        buffer.set_home({"home"})
        buffer.consider(RejectAll(), anchored_record(0))
        assert not buffer.dormant
        assert buffer.saturation == 0.25
        buffer.clear()
        assert buffer.dormant and buffer.depth == 0
        assert (buffer.seen, buffer.offered) == (0, 0)


# ----------------------------------------------------------------------
# RecoveryPolicy / MaintenancePolicy embedding
# ----------------------------------------------------------------------
class TestRecoveryPolicy:
    def test_defaults_serialise_empty(self):
        assert RecoveryPolicy().to_dict() == {}

    def test_json_round_trip(self):
        policy = RecoveryPolicy(after_stuck=3, starvation_window=50,
                                min_quarantine=24, auto=True, max_fpr=0.3)
        clone = RecoveryPolicy.from_dict(json.loads(json.dumps(policy.to_dict())))
        assert clone == policy

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown keys"):
            RecoveryPolicy.from_dict({"after_stuck": 2, "typo": 1})

    @pytest.mark.parametrize("kwargs", [{"after_stuck": 0},
                                        {"min_quarantine": 0},
                                        {"starvation_window": 0},
                                        {"auto": 1},
                                        {"max_fpr": 1.5}])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RecoveryPolicy(**kwargs)

    def test_describe_mentions_mode_and_guard(self):
        text = RecoveryPolicy(auto=True).describe()
        assert "auto" in text and "roll back" in text
        assert "propose" in RecoveryPolicy(max_fpr=None).describe()

    def test_maintenance_policy_coerces_mapping(self):
        policy = MaintenancePolicy(check_every=4,
                                   recovery={"after_stuck": 3, "auto": True})
        assert isinstance(policy.recovery, RecoveryPolicy)
        assert policy.recovery.after_stuck == 3
        clone = MaintenancePolicy.from_json(policy.to_json())
        assert clone == policy
        assert "recovery" in json.loads(policy.to_json())

    def test_maintenance_policy_rejects_bad_recovery(self):
        with pytest.raises(ValueError, match="recovery"):
            MaintenancePolicy(recovery="yes please")

    def test_describe_includes_recovery_clause(self):
        policy = MaintenancePolicy(check_every=4, recovery=RecoveryPolicy())
        assert "recovery" in policy.describe()


# ----------------------------------------------------------------------
# Fleet integration: bit-identity, persistence, recovery mechanics
# ----------------------------------------------------------------------
@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "models")


def provisioned_fleet(registry, quarantine_size, **kwargs):
    fleet = GeofenceFleet(registry, capacity=2, model_factory=make_gem,
                          quarantine_size=quarantine_size, **kwargs)
    fleet.provision("t", train_records())
    return fleet


class TestFleetQuarantine:
    def test_quarantine_off_is_bit_identical(self, tmp_path):
        """Differential: the quarantine feed must not perturb decisions."""
        streams = {}
        for size in (0, 32):
            registry = ModelRegistry(tmp_path / f"m{size}")
            fleet = provisioned_fleet(registry, quarantine_size=size)
            home = home_anchor_macs(train_records())
            decisions = drive_new_world(fleet, "t", home, n=60)
            inliers = [fleet.observe("t", record)
                       for record in train_records(10)]
            streams[size] = [(d.inside, d.score, d.buffered, d.updated)
                             for d in decisions + inliers]
            fleet.close()
        assert streams[0] == streams[32]

    def test_negative_size_rejected(self, registry):
        with pytest.raises(ValueError, match="quarantine_size"):
            GeofenceFleet(registry, quarantine_size=-1)

    def test_inside_decisions_never_feed_quarantine(self, registry):
        fleet = provisioned_fleet(registry, quarantine_size=32)
        rejected = set()
        for record in train_records(20):
            if not fleet.observe("t", record).inside:
                rejected.add(record.timestamp)
        assert {r.timestamp for r in fleet.quarantine("t")} <= rejected

    @pytest.mark.parametrize("incremental", [False, True])
    def test_survives_evict_reload(self, registry, incremental):
        """Carry-forward across write-back + reload, full and delta formats."""
        fleet = provisioned_fleet(registry, quarantine_size=32,
                                  incremental=incremental)
        home = home_anchor_macs(train_records())
        drive_new_world(fleet, "t", home, n=40)
        depth = fleet.quarantine_depth("t")
        assert depth > 0
        evidence = [r.readings for r in fleet.quarantine("t")]
        assert fleet.evict("t")
        assert fleet.quarantine_depth("t") == 0        # load-free by design
        assert [r.readings for r in fleet.quarantine("t")] == evidence
        assert fleet.quarantine_depth("t") == depth
        fleet.close()

    def test_reload_continues_the_same_sample(self, tmp_path):
        """A fleet evicted mid-stream retains exactly the records an
        uninterrupted fleet would have."""
        home = home_anchor_macs(train_records())

        def run(root, evict_at):
            fleet = provisioned_fleet(ModelRegistry(root), quarantine_size=8)
            rng = np.random.default_rng(7)
            for i in range(90):
                if i == evict_at:
                    fleet.evict("t")
                fleet.observe("t", new_world_record(i, home, rng))
            evidence = [r.timestamp for r in fleet.quarantine("t")]
            fleet.close()
            return evidence

        assert run(tmp_path / "a", evict_at=45) == run(tmp_path / "b", evict_at=-1)

    def test_registry_metadata_is_stripped(self, registry):
        fleet = provisioned_fleet(registry, quarantine_size=32)
        home = home_anchor_macs(train_records())
        drive_new_world(fleet, "t", home, n=40)
        fleet.flush("t")
        assert registry.metadata("t") == {}
        manifest = json.loads((registry.path_for("t") / "manifest.json").read_text())
        assert QUARANTINE_METADATA_KEY in manifest["metadata"]

    def test_disabled_fleet_carries_metadata_forward(self, registry):
        """A quarantine_size=0 fleet must neither consume nor drop the
        persisted buffer of a fleet that ran with it enabled."""
        fleet = provisioned_fleet(registry, quarantine_size=32)
        home = home_anchor_macs(train_records())
        drive_new_world(fleet, "t", home, n=40)
        fleet.close()
        plain = GeofenceFleet(registry, capacity=2, model_factory=make_gem)
        for record in train_records(5):
            plain.observe("t", record)
        plain.close()
        revived = GeofenceFleet(registry, capacity=2, model_factory=make_gem,
                                quarantine_size=32)
        assert revived.quarantine("t")
        revived.close()

    def test_recovery_refits_and_consumes_evidence(self, registry):
        fleet = provisioned_fleet(registry, quarantine_size=32)
        home = home_anchor_macs(train_records())
        drive_new_world(fleet, "t", home, n=120)
        evidence = fleet.quarantine("t")
        assert len(evidence) == 32
        fresh = fleet.reprovision_from_quarantine("t", max_fpr=0.5)
        # The evidence set became the pinned anchor...
        assert [r.readings for r in fleet.reservoir("t")] \
            == [r.readings for r in evidence]
        # ...the buffer was consumed, and its home anchor moved on.
        assert fleet.quarantine_depth("t") == 0
        accepted = sum(fresh.predict(record) for record in evidence)
        assert accepted / len(evidence) >= 0.5
        assert fleet.is_dirty("t")

    def test_recovery_rolls_back_on_high_fpr(self, registry):
        fleet = provisioned_fleet(registry, quarantine_size=32)
        home = home_anchor_macs(train_records())
        drive_new_world(fleet, "t", home, n=120)
        probe = new_world_record(999, home, np.random.default_rng(1))
        before = fleet.score("t", probe)
        with pytest.raises(ValueError, match="rolled back"):
            fleet.reprovision_from_quarantine("t", max_fpr=0.0)
        # Old model keeps serving, evidence intact: that *is* the snapshot.
        assert fleet.score("t", probe) == before
        assert fleet.quarantine_depth("t") == 32

    def test_recovery_requires_quarantine(self, registry):
        fleet = provisioned_fleet(registry, quarantine_size=0)
        with pytest.raises(ValueError, match="quarantine_size=0"):
            fleet.reprovision_from_quarantine("t")
        armed = GeofenceFleet(registry, capacity=2, model_factory=make_gem,
                              quarantine_size=32)
        with pytest.raises(ValueError, match="empty quarantine"):
            armed.reprovision_from_quarantine("t")


# ----------------------------------------------------------------------
# Controller: arming, auto recovery, proposals
# ----------------------------------------------------------------------
class StarvedFleet:
    """Refreshes always fail; quarantine is pre-filled; recovery succeeds."""

    def __init__(self, depth=32, recover_error=None):
        self.depth = depth
        self.recover_error = recover_error
        self.recoveries: list[str] = []
        self.resident_tenants: list[str] = []

    def refresh(self, tenant_id):
        raise ValueError("reservoir starved")

    def quarantine_depth(self, tenant_id):
        return self.depth

    def reprovision_from_quarantine(self, tenant_id, max_fpr=0.5):
        if self.recover_error is not None:
            raise self.recover_error
        self.recoveries.append(tenant_id)
        return object()

    def resident(self, tenant_id):
        return None

    def is_dirty(self, tenant_id):
        return False


def starving_policy(auto, **recovery_kwargs):
    recovery = RecoveryPolicy(after_stuck=2, starvation_window=8,
                              min_quarantine=4, auto=auto, **recovery_kwargs)
    return MaintenancePolicy(check_every=4, refresh_every=4, recovery=recovery)


def drive_outside(controller, tenant: str, rounds: int):
    decision = GeofenceDecision(inside=False, score=5.0)
    for _ in range(rounds * 4):
        controller.step(tenant, decision)


class TestControllerRecovery:
    def test_auto_recovery_fires_once_armed(self):
        fleet = StarvedFleet()
        controller = FleetController(fleet,
                                     policies={"t": starving_policy(auto=True)})
        drive_outside(controller, "t", rounds=3)
        assert fleet.recoveries == ["t"]
        actions = [a for _, a in controller.actions]
        assert "recover" in actions
        # Recovery consumed the maintenance slot and reset the streaks.
        assert controller.stuck_streaks() == {}
        assert controller.pending_recoveries() == {}

    def test_arming_needs_all_three_signals(self):
        # Deep quarantine + stuck refreshes, but inside decisions keep
        # arriving: not starving, so no recovery.
        fleet = StarvedFleet()
        controller = FleetController(fleet,
                                     policies={"t": starving_policy(auto=True)})
        inside = GeofenceDecision(inside=True, score=0.1)
        for _ in range(12):
            controller.step("t", inside)
        assert fleet.recoveries == []
        # Starving + stuck, but the quarantine is too shallow.
        shallow = StarvedFleet(depth=2)
        controller = FleetController(shallow,
                                     policies={"t": starving_policy(auto=True)})
        drive_outside(controller, "t", rounds=4)
        assert shallow.recoveries == []

    def test_stuck_streaks_fold_in_trigger_streak(self):
        """Mechanically-successful refreshes that never clear their trigger
        must still read as stuck — the starvation signature."""

        class PlaceboFleet(StarvedFleet):
            def refresh(self, tenant_id):
                return 1                      # succeeds, fixes nothing

        fleet = PlaceboFleet()
        policy = MaintenancePolicy(check_every=4, min_update_rate=0.9,
                                   min_window=4)
        controller = FleetController(fleet, policies={"t": policy})
        drive_outside(controller, "t", rounds=3)
        assert controller.failed_refresh_streaks() == {}
        assert controller.stuck_streaks().get("t", 0) >= 2

    def test_proposal_path_and_approval(self):
        fleet = StarvedFleet()
        controller = FleetController(fleet,
                                     policies={"t": starving_policy(auto=False)})
        drive_outside(controller, "t", rounds=3)
        assert fleet.recoveries == []                   # nothing executed
        proposals = controller.pending_recoveries()
        assert set(proposals) == {"t"}
        evidence = proposals["t"]
        assert evidence["quarantine_depth"] == 32
        assert evidence["stuck_streak"] >= 2
        # Proposing again is idempotent.
        drive_outside(controller, "t", rounds=2)
        assert [a for _, a in controller.actions].count("recover-proposed") == 1
        controller.approve_recovery("t")
        assert fleet.recoveries == ["t"]
        assert controller.pending_recoveries() == {}
        assert controller.stuck_streaks() == {}

    def test_deny_recovery(self):
        fleet = StarvedFleet()
        controller = FleetController(fleet,
                                     policies={"t": starving_policy(auto=False)})
        drive_outside(controller, "t", rounds=3)
        assert controller.deny_recovery("t")
        assert not controller.deny_recovery("t")
        assert fleet.recoveries == []
        with pytest.raises(ValueError, match="no pending recovery"):
            controller.approve_recovery("t")

    def test_failed_auto_recovery_is_operational(self):
        fleet = StarvedFleet(recover_error=ValueError("rolled back"))
        controller = FleetController(fleet,
                                     policies={"t": starving_policy(auto=True)})
        drive_outside(controller, "t", rounds=3)
        failed = [a for _, a in controller.actions
                  if a.startswith("recover-failed")]
        assert failed and "rolled back" in failed[0]
        assert controller.stuck_streaks()["t"] >= 1


# ----------------------------------------------------------------------
# Runtime surfaces: probe, metrics, end-to-end recovery
# ----------------------------------------------------------------------
class TestRuntimeQuarantine:
    def build(self, tmp_path, quarantine_size, policy=None):
        runtime = ServingRuntime(str(tmp_path / "reg"), num_shards=1,
                                 model_factory=make_gem,
                                 scheduler_interval=None, policy=policy,
                                 quarantine_size=quarantine_size)
        runtime.provision("t", train_records())
        return runtime

    def test_probe_is_capability_gated(self, tmp_path):
        plain = self.build(tmp_path / "off", quarantine_size=0)
        assert "quarantine_saturation" not in plain.metrics()["health"]
        plain.close()

    def test_probe_metrics_and_passthroughs(self, tmp_path):
        runtime = self.build(tmp_path, quarantine_size=16)
        home = home_anchor_macs(train_records())
        drive_new_world(runtime, "t", home, n=60)
        snapshot = runtime.metrics()
        probe = snapshot["health"]["quarantine_saturation"]
        assert probe["status"] in ("warn", "critical")
        assert probe["value"] == 1.0
        assert "t" in probe["detail"]
        families = snapshot["families"]
        depth = families["repro_quarantine_depth"]["series"][0]["value"]
        assert depth == 16 == len(runtime.quarantine("t"))
        admissions = {s["labels"]["outcome"]: s["value"]
                      for s in families["repro_quarantine_admissions_total"]["series"]}
        assert admissions["admitted"] >= 16
        assert 16 <= sum(admissions.values()) <= 60
        runtime.close()

    def test_policy_driven_recovery_end_to_end(self, tmp_path):
        recovery = RecoveryPolicy(after_stuck=1, starvation_window=30,
                                  min_quarantine=16, auto=True, max_fpr=0.9)
        policy = MaintenancePolicy(check_every=10, min_update_rate=0.05,
                                   min_window=10, recovery=recovery)
        runtime = self.build(tmp_path, quarantine_size=64, policy=policy)
        runtime.shards[0].track_decisions = True
        home = home_anchor_macs(train_records())
        rng = np.random.default_rng(7)
        recovered = False
        for i in range(300):
            runtime.observe("t", new_world_record(i, home, rng))
            runtime.maintain()
            if any(a == "recover" for _, a in runtime.maintenance_actions()):
                recovered = True
                break
        assert recovered, "auto recovery never fired"
        assert runtime.pending_recoveries() == {}
        runtime.close()

    def test_proposal_surfaces_through_runtime(self, tmp_path):
        recovery = RecoveryPolicy(after_stuck=1, starvation_window=30,
                                  min_quarantine=16, auto=False, max_fpr=0.9)
        policy = MaintenancePolicy(check_every=10, min_update_rate=0.05,
                                   min_window=10, recovery=recovery)
        runtime = self.build(tmp_path, quarantine_size=64, policy=policy)
        runtime.shards[0].track_decisions = True
        home = home_anchor_macs(train_records())
        rng = np.random.default_rng(7)
        for i in range(200):
            runtime.observe("t", new_world_record(i, home, rng))
            runtime.maintain()
            if runtime.pending_recoveries():
                break
        assert set(runtime.pending_recoveries()) == {"t"}
        runtime.approve_recovery("t")
        assert runtime.pending_recoveries() == {}
        actions = [a for _, a in runtime.maintenance_actions()]
        assert "recover-proposed" in actions and "recover" in actions
        assert not runtime.deny_recovery("t")
        runtime.close()
