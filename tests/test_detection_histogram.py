"""Enhanced histogram detector: Eq. 10-12 behaviour, updates, edge cases."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.detection import HistogramConfig, HistogramDetector


def gaussian_blob(n=200, d=4, seed=0, center=0.0, scale=1.0):
    rng = np.random.default_rng(seed)
    return center + scale * rng.standard_normal((n, d))


class TestConfig:
    def test_defaults_valid(self):
        HistogramConfig()

    def test_tau_ordering_enforced(self):
        with pytest.raises(ValueError, match="tau_lower"):
            HistogramConfig(tau_upper=0.1, tau_lower=0.2)

    def test_invalid_bins(self):
        with pytest.raises(ValueError):
            HistogramConfig(num_bins=0)

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            HistogramConfig(temperature=0.0)

    def test_negative_smoothing(self):
        with pytest.raises(ValueError):
            HistogramConfig(smoothing_passes=-1)


class TestFitAndScore:
    def test_training_scores_in_unit_interval(self):
        detector = HistogramDetector().fit(gaussian_blob())
        scores = detector.normalized_scores(gaussian_blob())
        assert ((scores >= 0) & (scores <= 1)).all()

    def test_far_outlier_scores_high(self):
        detector = HistogramDetector().fit(gaussian_blob())
        outlier = np.full((1, 4), 100.0)
        assert detector.normalized_scores(outlier)[0] == pytest.approx(1.0)
        assert detector.is_outlier(outlier)[0]

    def test_center_point_scores_low(self):
        detector = HistogramDetector().fit(gaussian_blob(n=500))
        center = np.zeros((1, 4))
        assert detector.normalized_scores(center)[0] < 0.4
        assert not detector.is_outlier(center)[0]

    def test_enhanced_scores_are_sigmoid_of_normalized(self):
        detector = HistogramDetector().fit(gaussian_blob())
        x = gaussian_blob(n=10, seed=5)
        normalized = detector.normalized_scores(x)
        enhanced = detector.enhanced_scores(x)
        expected = 1.0 / (1.0 + np.exp(-(2 * normalized - 1) / detector.config.temperature))
        np.testing.assert_allclose(enhanced, expected, atol=1e-12)

    def test_enhanced_monotone_in_normalized(self):
        detector = HistogramDetector().fit(gaussian_blob())
        x = gaussian_blob(n=50, seed=7)
        normalized = detector.normalized_scores(x)
        enhanced = detector.enhanced_scores(x)
        order = np.argsort(normalized)
        assert (np.diff(enhanced[order]) >= -1e-12).all()

    def test_single_sample_training(self):
        detector = HistogramDetector().fit(np.zeros((1, 3)))
        assert detector.num_samples == 1
        # The training point itself is not an outlier.
        assert not detector.is_outlier(np.zeros((1, 3)))[0]

    def test_constant_dimension_handled(self):
        data = gaussian_blob()
        data[:, 0] = 5.0  # degenerate dim
        detector = HistogramDetector().fit(data)
        assert np.isfinite(detector.decision_scores(data)).all()

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HistogramDetector().fit(np.empty((0, 3)))

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            HistogramDetector().fit(np.array([[np.nan, 1.0]]))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            HistogramDetector().decision_scores(np.zeros((1, 2)))


class TestPlainMode:
    def test_plain_uses_contamination_threshold(self):
        config = HistogramConfig(enhanced=False, contamination=0.1)
        detector = HistogramDetector(config).fit(gaussian_blob(n=300))
        flagged = detector.is_outlier(gaussian_blob(n=300)).mean()
        assert 0.02 < flagged < 0.35

    def test_plain_never_confident(self):
        config = HistogramConfig(enhanced=False)
        detector = HistogramDetector(config).fit(gaussian_blob())
        assert not detector.is_confident_inlier(np.zeros((5, 4))).any()

    def test_plain_decision_scores_are_normalized(self):
        config = HistogramConfig(enhanced=False)
        detector = HistogramDetector(config).fit(gaussian_blob())
        x = gaussian_blob(n=10, seed=3)
        np.testing.assert_allclose(detector.decision_scores(x), detector.normalized_scores(x))


class TestOnlineUpdate:
    def test_update_absorbs_samples(self):
        detector = HistogramDetector().fit(gaussian_blob(n=100))
        detector.update(gaussian_blob(n=20, seed=1))
        assert detector.num_samples == 120
        assert detector.num_updates == 20

    def test_update_single_vector(self):
        detector = HistogramDetector().fit(gaussian_blob())
        detector.update(np.zeros(4))
        assert detector.num_updates == 1

    def test_update_shifts_distribution(self):
        # Absorbing a second cluster should stop flagging it.
        detector = HistogramDetector().fit(gaussian_blob(n=300))
        shifted = gaussian_blob(n=300, seed=2, center=4.0, scale=0.5)
        before = detector.normalized_scores(shifted).mean()
        detector.update(shifted)
        after = detector.normalized_scores(shifted).mean()
        assert after < before

    def test_update_dimension_mismatch(self):
        detector = HistogramDetector().fit(gaussian_blob())
        with pytest.raises(ValueError, match="dimension"):
            detector.update(np.zeros((1, 5)))

    def test_update_rejects_nonfinite(self):
        detector = HistogramDetector().fit(gaussian_blob())
        with pytest.raises(ValueError):
            detector.update(np.array([[np.inf] * 4]))

    def test_update_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HistogramDetector().update(np.zeros((1, 2)))

    def test_confident_inlier_implies_inlier(self):
        detector = HistogramDetector().fit(gaussian_blob(n=500))
        x = gaussian_blob(n=100, seed=9)
        confident = detector.is_confident_inlier(x)
        outlier = detector.is_outlier(x)
        assert not (confident & outlier).any()


class TestSmoothing:
    def test_smoothing_preserves_total_count(self):
        config = HistogramConfig(smoothing_passes=2)
        detector = HistogramDetector(config).fit(gaussian_blob(n=200))
        # Binomial kernel with edge padding approximately preserves mass.
        assert detector._counts.sum() == pytest.approx(200 * 4, rel=0.15)

    def test_zero_smoothing_keeps_integer_counts(self):
        config = HistogramConfig(smoothing_passes=0)
        detector = HistogramDetector(config).fit(gaussian_blob(n=50))
        assert np.allclose(detector._counts, np.round(detector._counts))


@settings(max_examples=20, deadline=None)
@given(arrays(np.float64, (30, 3), elements=st.floats(-5, 5, allow_nan=False)))
def test_property_scores_finite_and_bounded(data):
    detector = HistogramDetector().fit(data)
    scores = detector.normalized_scores(data)
    assert np.isfinite(scores).all()
    assert ((scores >= 0) & (scores <= 1)).all()
    enhanced = detector.enhanced_scores(data)
    assert ((enhanced >= 0) & (enhanced <= 1)).all()


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 40))
def test_property_update_grows_sample_count(n):
    detector = HistogramDetector().fit(gaussian_blob(n=50))
    detector.update(gaussian_blob(n=n, seed=3))
    assert detector.num_samples == 50 + n
