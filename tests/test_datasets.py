"""Dataset generators: protocol fidelity, labels, reproducibility."""

import numpy as np
import pytest

from repro.core.records import SignalRecord
from repro.datasets import (
    GeofenceDataset,
    generate_dataset,
    mall_dataset,
    remove_macs,
    uji_building_split,
    uji_like_dataset,
    user_dataset,
    user_scenario,
)
from repro.datasets.users import USER_SPECS
from repro.rf.scenarios import home_scenario


@pytest.fixture(scope="module")
def small_dataset():
    scenario = home_scenario(area_m2=30.0, seed=2)
    return generate_dataset(scenario, seed=3, train_duration_s=120,
                            test_sessions=4, session_duration_s=30)


class TestGenerateDataset:
    def test_training_labels_all_inside(self, small_dataset):
        env = small_dataset.scenario.environment
        for record in small_dataset.train:
            x, y, floor = record.position
            assert env.is_inside((x, y), floor)

    def test_test_labels_match_geometry(self, small_dataset):
        env = small_dataset.scenario.environment
        for item in small_dataset.test:
            x, y, floor = item.record.position
            assert item.inside == env.is_inside((x, y), floor)

    def test_both_classes_present(self, small_dataset):
        fraction = small_dataset.test_inside_fraction()
        assert 0.2 < fraction < 0.8

    def test_stream_is_time_ordered(self, small_dataset):
        times = [item.record.timestamp for item in small_dataset.test]
        assert times == sorted(times)

    def test_test_starts_after_training(self, small_dataset):
        assert small_dataset.test[0].record.timestamp > \
            small_dataset.train[-1].timestamp

    def test_reproducible(self):
        scenario = home_scenario(area_m2=30.0, seed=2)
        a = generate_dataset(scenario, seed=3, train_duration_s=60,
                             test_sessions=2, session_duration_s=20)
        b = generate_dataset(home_scenario(area_m2=30.0, seed=2), seed=3,
                             train_duration_s=60, test_sessions=2,
                             session_duration_s=20)
        assert [r.readings for r in a.train] == [r.readings for r in b.train]

    def test_invalid_sessions(self):
        with pytest.raises(ValueError):
            generate_dataset(home_scenario(seed=0), test_sessions=0)

    def test_num_macs_seen(self, small_dataset):
        assert small_dataset.num_macs_seen > 0


class TestRemoveMacs:
    def test_train_removal_leaves_test(self, small_dataset):
        pruned = remove_macs(small_dataset, 0.3, seed=0, which="train")
        before = set().union(*[r.macs for r in small_dataset.train])
        after = set().union(*[r.macs for r in pruned.train])
        assert len(after) < len(before)
        assert [item.record.readings for item in pruned.test] == \
            [item.record.readings for item in small_dataset.test]

    def test_test_removal_leaves_train(self, small_dataset):
        pruned = remove_macs(small_dataset, 0.3, seed=0, which="test")
        assert [r.readings for r in pruned.train] == \
            [r.readings for r in small_dataset.train]

    def test_zero_fraction_noop(self, small_dataset):
        pruned = remove_macs(small_dataset, 0.0, seed=0)
        assert [r.readings for r in pruned.train] == \
            [r.readings for r in small_dataset.train]

    def test_invalid_fraction(self, small_dataset):
        with pytest.raises(ValueError):
            remove_macs(small_dataset, 1.5)

    def test_invalid_which(self, small_dataset):
        with pytest.raises(ValueError):
            remove_macs(small_dataset, 0.1, which="both")

    def test_meta_records_removal(self, small_dataset):
        pruned = remove_macs(small_dataset, 0.2, seed=0, which="train")
        assert pruned.meta["removed_from"] == "train"
        assert pruned.meta["removed_macs"] >= 0


class TestUsers:
    def test_ten_specs(self):
        assert len(USER_SPECS) == 10
        assert [s.user_id for s in USER_SPECS] == list(range(1, 11))

    def test_user_ten_is_detached(self):
        assert USER_SPECS[9].detached

    def test_user_scenario_builds(self):
        scenario = user_scenario(1)
        assert scenario.name == "user-1"

    def test_unknown_user(self):
        with pytest.raises(ValueError):
            user_scenario(11)

    def test_user_dataset_meta(self):
        data = user_dataset(1, test_sessions=2, session_duration_s=20)
        assert data.meta["user_id"] == 1
        assert data.meta["paper_macs"] == 20


class TestMall:
    def test_structure(self):
        data = mall_dataset(seed=1, train_records=120, test_records_per_floor=20)
        assert len(data.train) == 120
        floors = {item.meta["floor"] for item in data.test}
        assert floors == {0, 1, 2, 3, 4}
        assert all(item.inside == (item.meta["floor"] == 2) for item in data.test)

    def test_invalid_train_size(self):
        with pytest.raises(ValueError):
            mall_dataset(train_records=5)


class TestUji:
    def test_synthetic_building_structure(self):
        data = uji_like_dataset(0, seed=1, records_per_floor=40)
        assert data.meta["building"] == 0
        floors = {item.meta["floor"] for item in data.test}
        assert len(floors) == 4  # building 0 has 4 floors

    def test_building_two_has_five_floors(self):
        data = uji_like_dataset(2, seed=1, records_per_floor=40)
        floors = {item.meta["floor"] for item in data.test}
        assert len(floors) == 5

    def test_train_fraction_respected(self):
        data = uji_like_dataset(0, seed=1, records_per_floor=40, train_fraction=0.5)
        assert len(data.train) == 20

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            uji_like_dataset(0, train_fraction=1.5)

    def test_building_split_protocol(self):
        rows = []
        for floor in range(4):
            for i in range(10):
                rows.append({"record": SignalRecord({f"w{floor}": -50.0 - i}),
                             "floor": floor, "building": 0})
        train, test = uji_building_split(rows, building=0, seed=0, train_fraction=0.5)
        assert len(train) == 5  # half of the middle floor (floor 2)
        assert len(test) == 35
        # Middle floor of floors 0..3 is floor 2.
        inside = [item for item in test if item.inside]
        assert all(item.meta["floor"] == 2 for item in inside)

    def test_building_split_unknown_building(self):
        with pytest.raises(ValueError):
            uji_building_split([], building=9)
