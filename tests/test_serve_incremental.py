"""Incremental (delta) checkpoints: round trips, compaction, crash safety."""

import json

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.serve import (CheckpointError, GeofenceFleet, ModelRegistry,
                         load_checkpoint, load_checkpoint_with_baseline,
                         read_manifest, save_checkpoint, save_incremental)
from repro.serve.checkpoint import (CHECKPOINT_VERSION, INCREMENTAL_VERSION,
                                    MANIFEST_NAME, flatten_state, load_state)

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def records(seed: int, n: int = 25):
    return synthetic_records(n, num_macs=10, seed=seed)


def assert_states_equal(model_a, model_b) -> None:
    arrays_a, leaves_a = flatten_state(model_a.state_dict())
    arrays_b, leaves_b = flatten_state(model_b.state_dict())
    assert set(arrays_a) == set(arrays_b)
    for key in arrays_a:
        assert np.array_equal(arrays_a[key], arrays_b[key]), key
    assert leaves_a == leaves_b


@pytest.fixture
def fitted(tmp_path):
    """A fitted GEM, its checkpoint dir and the post-save baseline."""
    gem = make_gem().fit(records(0))
    directory = tmp_path / "ckpt"
    kind, baseline = save_incremental(gem, directory, baseline=None)
    assert kind == "full"
    return gem, directory, baseline


class TestDeltaSaves:
    def test_observe_only_change_writes_a_delta(self, fitted):
        gem, directory, baseline = fitted
        for record in records(1, n=6):
            gem.observe(record)
        kind, baseline = save_incremental(gem, directory, baseline)
        assert kind == "delta"
        manifest = read_manifest(directory)
        assert manifest["format_version"] == INCREMENTAL_VERSION
        assert len(manifest["deltas"]) == 1
        # The graph only grew: its edge arrays must travel as appends.
        entry = manifest["deltas"][0]
        assert any(key.startswith("embedder/graph/") for key in entry["append"])
        assert_states_equal(gem, load_checkpoint(directory))

    def test_chained_deltas_reconstruct_exactly(self, fitted):
        gem, directory, baseline = fitted
        for step in range(3):
            for record in records(10 + step, n=4):
                gem.observe(record)
            kind, baseline = save_incremental(gem, directory, baseline)
            assert kind == "delta"
        assert len(read_manifest(directory)["deltas"]) == 3
        assert_states_equal(gem, load_checkpoint(directory))

    def test_full_save_compacts_the_chain(self, fitted):
        gem, directory, baseline = fitted
        for record in records(1, n=4):
            gem.observe(record)
        _, baseline = save_incremental(gem, directory, baseline)
        assert list(directory.glob("delta-*.npz"))
        save_checkpoint(gem, directory)
        manifest = read_manifest(directory)
        assert manifest["format_version"] == CHECKPOINT_VERSION
        assert "deltas" not in manifest
        assert not list(directory.glob("delta-*.npz"))
        assert_states_equal(gem, load_checkpoint(directory))

    def test_max_chain_forces_compaction(self, fitted):
        gem, directory, baseline = fitted
        kinds = []
        for step in range(3):
            for record in records(20 + step, n=3):
                gem.observe(record)
            kind, baseline = save_incremental(gem, directory, baseline,
                                              max_chain=2)
            kinds.append(kind)
        assert kinds == ["delta", "delta", "full"]
        assert "deltas" not in read_manifest(directory)

    def test_wholesale_change_falls_back_to_full(self, fitted):
        gem, directory, baseline = fitted
        # A freshly fitted model shares no arrays with the baseline: the
        # delta would be ~100% of the state, over any sane threshold.
        gem.fit(records(42, n=30))
        kind, _ = save_incremental(gem, directory, baseline, max_fraction=0.5)
        assert kind == "full"
        assert_states_equal(gem, load_checkpoint(directory))

    def test_stale_baseline_falls_back_to_full(self, fitted):
        gem, directory, baseline = fitted
        # Another writer replaced the checkpoint: the baseline no longer
        # matches the on-disk tip, so a delta would corrupt the chain.
        save_checkpoint(make_gem().fit(records(9)), directory)
        for record in records(1, n=3):
            gem.observe(record)
        kind, _ = save_incremental(gem, directory, baseline)
        assert kind == "full"
        assert_states_equal(gem, load_checkpoint(directory))

    def test_load_with_baseline_resumes_the_chain(self, fitted):
        gem, directory, baseline = fitted
        for record in records(1, n=4):
            gem.observe(record)
        save_incremental(gem, directory, baseline)
        clone, manifest, resumed = load_checkpoint_with_baseline(directory)
        assert manifest["format_version"] == INCREMENTAL_VERSION
        assert resumed.chain_length == 1
        assert_states_equal(gem, clone)
        # The resumed baseline diffs cleanly: another observation on the
        # clone writes delta #2, and the chain still reconstructs.
        for record in records(2, n=4):
            clone.observe(record)
        kind, _ = save_incremental(clone, directory, resumed)
        assert kind == "delta"
        assert len(read_manifest(directory)["deltas"]) == 2
        assert_states_equal(clone, load_checkpoint(directory))

    def test_baseline_is_isolated_from_live_mutation(self, fitted):
        """In-place detector updates must not leak into the baseline.

        The histogram detector mutates its arrays in place; if the
        baseline aliased them the diff would see "no change" and the
        update would be silently lost.
        """
        gem, directory, baseline = fitted
        applied = 0
        for record in records(0, n=25):  # training-like records: inliers
            decision = gem.observe(record)
            applied += decision.updated
        assert applied > 0, "test needs at least one applied detector update"
        kind, _ = save_incremental(gem, directory, baseline)
        assert kind == "delta"
        assert_states_equal(gem, load_checkpoint(directory))

    def test_v2_checkpoint_loads_unchanged(self, tmp_path):
        gem = make_gem().fit(records(0))
        directory = tmp_path / "plain"
        save_checkpoint(gem, directory)
        assert read_manifest(directory)["format_version"] == CHECKPOINT_VERSION
        model, manifest, baseline = load_checkpoint_with_baseline(directory)
        assert baseline.chain_length == 0
        assert_states_equal(gem, model)


class TestDeltaCrashSafety:
    def _delta_checkpoint(self, tmp_path):
        gem = make_gem().fit(records(0))
        directory = tmp_path / "ckpt"
        _, baseline = save_incremental(gem, directory, baseline=None)
        for record in records(1, n=5):
            gem.observe(record)
        _, baseline = save_incremental(gem, directory, baseline)
        return gem, directory, baseline

    def test_orphan_delta_file_is_ignored(self, tmp_path):
        """Crash between delta-file write and manifest commit: the torn
        tail is an orphan file the loader never reads."""
        gem, directory, baseline = self._delta_checkpoint(tmp_path)
        before, _ = load_state(directory)
        (directory / "delta-deadbeef.npz").write_bytes(b"not even a zip")
        after, _ = load_state(directory)
        arrays_a, leaves_a = flatten_state(before)
        arrays_b, leaves_b = flatten_state(after)
        assert leaves_a == leaves_b
        assert all(np.array_equal(arrays_a[k], arrays_b[k]) for k in arrays_a)
        # The next full save garbage-collects the orphan.
        save_checkpoint(gem, directory)
        assert not list(directory.glob("delta-*.npz"))

    def test_truncated_committed_delta_is_torn(self, tmp_path):
        gem, directory, baseline = self._delta_checkpoint(tmp_path)
        manifest = read_manifest(directory)
        delta_file = directory / manifest["deltas"][-1]["file"]
        delta_file.write_bytes(delta_file.read_bytes()[:40])
        with pytest.raises(CheckpointError, match="corrupt delta"):
            load_checkpoint(directory)

    def test_spliced_delta_nonce_mismatch_is_torn(self, tmp_path):
        gem, directory, baseline = self._delta_checkpoint(tmp_path)
        for record in records(2, n=5):
            gem.observe(record)
        save_incremental(gem, directory, baseline)
        manifest = read_manifest(directory)
        first, second = manifest["deltas"]
        # Splice: point the first entry at the second delta's file.
        first["file"] = second["file"]
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="torn|different writes"):
            load_checkpoint(directory)

    def test_broken_parent_chain_is_torn(self, tmp_path):
        gem, directory, baseline = self._delta_checkpoint(tmp_path)
        manifest = read_manifest(directory)
        manifest["deltas"][0]["parent"] = "0" * 32
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="chains off"):
            load_checkpoint(directory)

    def test_delta_chain_without_version_bump_is_torn(self, tmp_path):
        gem, directory, baseline = self._delta_checkpoint(tmp_path)
        manifest = read_manifest(directory)
        manifest["format_version"] = CHECKPOINT_VERSION
        (directory / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="delta chain"):
            load_checkpoint(directory)

    def test_dtype_mismatched_append_tail_is_torn(self, tmp_path):
        """The writer never appends across dtypes, so a delta tail whose
        dtype disagrees with the base array proves corruption — it must
        raise, not silently promote the reconstructed array."""
        gem, directory, baseline = self._delta_checkpoint(tmp_path)
        manifest = read_manifest(directory)
        entry = manifest["deltas"][-1]
        appended = [k for k in entry["append"]]
        assert appended, "test needs at least one append op"
        delta_file = directory / entry["file"]
        with np.load(delta_file) as archive:
            stored = {key: archive[key] for key in archive.files}
        stored[appended[0]] = stored[appended[0]].astype(np.float32)
        with delta_file.open("wb") as handle:
            np.savez(handle, **stored)
        with pytest.raises(CheckpointError, match="torn"):
            load_checkpoint(directory)

    def test_missing_committed_delta_file_is_torn(self, tmp_path):
        gem, directory, baseline = self._delta_checkpoint(tmp_path)
        manifest = read_manifest(directory)
        (directory / manifest["deltas"][-1]["file"]).unlink()
        with pytest.raises(CheckpointError, match="missing committed"):
            load_checkpoint(directory)


class TestIncrementalFleet:
    def test_writebacks_are_deltas_and_reloads_resume_exactly(self, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        plain = GeofenceFleet(tmp_path / "plain", capacity=1,
                              model_factory=make_gem, reservoir_size=8)
        fleet = GeofenceFleet(registry, capacity=1, model_factory=make_gem,
                              reservoir_size=8, incremental=True)
        train = records(0)
        stream = records(5, n=30)
        plain.provision("t", train)
        fleet.provision("t", train)
        decisions_plain, decisions_inc = [], []
        for index, record in enumerate(stream):
            if index % 7 == 3:  # repeated evict/reload across the chain
                plain.evict("t")
                fleet.evict("t")
            decisions_plain.append(plain.observe("t", record))
            decisions_inc.append(fleet.observe("t", record))
        assert decisions_inc == decisions_plain
        fleet.close()
        plain.close()
        totals = fleet.telemetry.totals()
        assert totals.delta_saves > 0
        # Bit-identical reconstructed state vs the full-save fleet.
        state_inc, _ = load_state(registry.path_for("t"))
        state_plain, _ = load_state(tmp_path / "plain" / "t")
        arrays_a, leaves_a = flatten_state(state_inc)
        arrays_b, leaves_b = flatten_state(state_plain)
        assert set(arrays_a) == set(arrays_b)
        assert all(np.array_equal(arrays_a[k], arrays_b[k]) for k in arrays_a)
        assert leaves_a == leaves_b

    def test_metadata_and_reservoir_travel_with_deltas(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "m", capacity=1, model_factory=make_gem,
                              reservoir_size=8, incremental=True)
        fleet.provision("t", records(0), metadata={"home": "lab"})
        for record in records(1, n=6):
            fleet.observe("t", record)
        fleet.evict("t")
        assert fleet.registry.metadata("t") == {"home": "lab"}
        reservoir = fleet.reservoir("t")  # reloads from the delta'd manifest
        assert reservoir, "anchor must survive the delta write-back"
        fleet.close()

    def test_reprovision_compacts_to_full_save(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "m", capacity=1, model_factory=make_gem,
                              reservoir_size=32, incremental=True)
        fleet.provision("t", records(0))
        for record in records(0, n=10):
            fleet.observe("t", record)
        fleet.evict("t")
        assert read_manifest(fleet.registry.path_for("t")).get("deltas")
        fleet.reprovision("t")
        fleet.evict("t")
        manifest = read_manifest(fleet.registry.path_for("t"))
        assert manifest["format_version"] == CHECKPOINT_VERSION
        assert "deltas" not in manifest
        fleet.close()

    def test_telemetry_counts_full_and_delta_saves(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "m", capacity=1, model_factory=make_gem,
                              reservoir_size=8, incremental=True,
                              max_delta_chain=2)
        fleet.provision("t", records(0))
        for step in range(4):
            for record in records(step + 1, n=3):
                fleet.observe("t", record)
            fleet.evict("t")
        totals = fleet.telemetry.totals()
        # provision (full) + chain-capped compactions + deltas = 5 writes
        assert totals.delta_saves >= 2
        assert totals.saves >= 2
        assert totals.saves + totals.delta_saves == 5
        fleet.close()
