"""Device model, scanner, AP factory."""

import numpy as np
import pytest

from repro.rf.ap import AccessPoint, Radio, make_mac
from repro.rf.device import Device
from repro.rf.environment import Environment
from repro.rf.geometry import Rect
from repro.rf.propagation import PropagationConfig
from repro.rf.scanner import Scanner
from repro.rf.trajectory import TimedPosition


def tiny_environment(seed=0):
    room = Rect(0, 0, 10, 8)
    # AP 3 sits ~350 m out: its beacons land inside the device's soft
    # detection ramp, so it is heard only sporadically.
    aps = [AccessPoint.create(1, (5, 4)), AccessPoint.create(2, (20, 4)),
           AccessPoint.create(3, (350, 4))]
    return Environment(walls=[], aps=aps, geofence=room,
                       propagation_config=PropagationConfig(seed=seed))


class TestAccessPoint:
    def test_create_dual_band(self):
        ap = AccessPoint.create(7, (1.0, 2.0))
        assert len(ap.radios) == 2
        assert {radio.band for radio in ap.radios} == {"2.4", "5"}
        assert len(set(ap.macs)) == 2

    def test_single_band(self):
        ap = AccessPoint.create(7, (1.0, 2.0), bands=("2.4",))
        assert len(ap.macs) == 1

    def test_macs_deterministic(self):
        assert make_mac(42, "2.4") == make_mac(42, "2.4")
        assert make_mac(42, "2.4") != make_mac(42, "5")
        assert make_mac(42, "2.4") != make_mac(43, "2.4")

    def test_mac_format(self):
        mac = make_mac(999, "5")
        parts = mac.split(":")
        assert len(parts) == 6
        assert all(len(p) == 2 for p in parts)

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            Radio("aa:bb:cc:dd:ee:ff", "60")


class TestDevice:
    def test_detection_probability_ramp(self):
        device = Device(sensitivity_dbm=-95, soft_range_db=10)
        assert device.detection_probability(-100) == 0.0
        assert device.detection_probability(-90) == pytest.approx(0.5)
        assert device.detection_probability(-50) == 1.0

    def test_band_filter(self):
        device = Device(bands=("2.4",))
        assert device.hears_band("2.4")
        assert not device.hears_band("5")

    def test_invalid_band(self):
        with pytest.raises(ValueError):
            Device(bands=("60",))

    def test_invalid_soft_range(self):
        with pytest.raises(ValueError):
            Device(soft_range_db=0.0)


class TestEnvironment:
    def test_is_inside_respects_floor(self):
        env = tiny_environment()
        assert env.is_inside((5, 4), floor=0)
        assert not env.is_inside((5, 4), floor=1)
        assert not env.is_inside((50, 4), floor=0)

    def test_all_macs(self):
        env = tiny_environment()
        assert len(env.all_macs) == 6  # 3 APs x 2 bands

    def test_without_aps(self):
        env = tiny_environment()
        smaller = env.without_aps({1})
        assert len(smaller.aps) == 2
        assert len(env.aps) == 3  # original untouched

    def test_requires_aps(self):
        with pytest.raises(ValueError):
            Environment(walls=[], aps=[], geofence=Rect(0, 0, 1, 1))


class TestScanner:
    def test_scan_returns_record_with_position(self):
        scanner = Scanner(tiny_environment(), rng=0)
        pose = TimedPosition((5.0, 4.0), 0, 12.0)
        record = scanner.scan(pose)
        assert record.timestamp == 12.0
        assert record.position == (5.0, 4.0, 0)
        assert len(record) >= 1

    def test_nearby_ap_always_heard(self):
        env = tiny_environment()
        scanner = Scanner(env, rng=0)
        record = scanner.scan(TimedPosition((5.0, 4.0), 0, 0.0))
        assert any(mac in record.readings for mac in env.aps[0].macs)

    def test_far_ap_weak_or_missing(self):
        env = tiny_environment()
        scanner = Scanner(env, rng=0)
        record = scanner.scan(TimedPosition((5.0, 4.0), 0, 0.0))
        for mac in env.aps[2].macs:
            if mac in record.readings:
                assert record.readings[mac] < -60

    def test_band_restricted_device(self):
        env = tiny_environment()
        scanner = Scanner(env, Device(bands=("2.4",)), rng=0)
        record = scanner.scan(TimedPosition((5.0, 4.0), 0, 0.0))
        five_ghz_macs = {r.mac for ap in env.aps for r in ap.radios if r.band == "5"}
        assert not (record.macs & five_ghz_macs)

    def test_device_offset_shifts_rss(self):
        env = tiny_environment()
        base = Scanner(env, rng=1).scan(TimedPosition((5.0, 4.0), 0, 0.0))
        shifted = Scanner(env, rng=1, device_offset_db=10.0).scan(
            TimedPosition((5.0, 4.0), 0, 0.0))
        common = base.macs & shifted.macs
        assert common
        diffs = [shifted.readings[m] - base.readings[m] for m in common]
        assert np.mean(diffs) > 5.0

    def test_scan_path(self):
        scanner = Scanner(tiny_environment(), rng=0)
        poses = [TimedPosition((x, 4.0), 0, float(x)) for x in range(3)]
        records = scanner.scan_path(poses)
        assert len(records) == 3

    def test_records_are_variable_length(self):
        # Scan from a spot where the far AP sits near the sensitivity edge:
        # the soft detection edge makes repeated scans return different
        # MAC sets.
        scanner = Scanner(tiny_environment(), rng=0)
        mac_sets = {scanner.scan(TimedPosition((5.0, 4.0), 0, float(t))).macs
                    for t in range(40)}
        assert len(mac_sets) > 1

    def test_invalid_penalty(self):
        with pytest.raises(ValueError):
            Scanner(tiny_environment(), crowd_penalty_db=-1.0)
