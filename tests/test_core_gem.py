"""GEM pipeline: fit, Algorithm 2 streaming, self-update, edge cases."""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core import (
    GEM,
    EmbeddingGeofencer,
    GEMConfig,
    GeofenceDecision,
    ImputedMatrixEmbedder,
    SignalRecord,
)
from repro.detection import HistogramConfig, HistogramDetector
from repro.embedding.bisage import BiSAGEConfig

from conftest import synthetic_records

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=2, seed=0))


@pytest.fixture(scope="module")
def fitted_gem():
    gem = GEM(FAST_CONFIG)
    gem.fit(synthetic_records(50, num_macs=10, seed=0, center=2.0))
    return gem


class TestConfig:
    def test_defaults(self):
        config = GEMConfig()
        assert config.weight_offset == 120.0
        assert config.self_update
        assert config.batch_update_size == 1

    def test_with_helpers(self):
        config = GEMConfig()
        assert config.with_dim(16).bisage.dim == 16
        assert config.with_temperature(0.05).histogram.temperature == 0.05
        assert config.with_bins(7).histogram.num_bins == 7

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            GEMConfig(batch_update_size=0)


class TestFit:
    def test_fit_builds_graph_and_detector(self, fitted_gem):
        assert fitted_gem.graph.num_records >= 50
        assert fitted_gem.bisage is not None
        assert fitted_gem.detector.num_samples == 50

    def test_fit_empty_rejected(self):
        with pytest.raises(ValueError):
            GEM(FAST_CONFIG).fit([])

    def test_observe_before_fit(self):
        gem = GEM(FAST_CONFIG)
        with pytest.raises(RuntimeError):
            gem.observe(SignalRecord({"mac00": -50.0}))


class TestObserve:
    def test_inlier_accepted(self, fitted_gem):
        record = synthetic_records(1, num_macs=10, seed=99, center=2.0)[0]
        decision = fitted_gem.observe(record)
        assert isinstance(decision, GeofenceDecision)
        assert decision.inside
        assert math.isfinite(decision.score)

    def test_far_outlier_rejected(self, fitted_gem):
        # A record whose pattern differs strongly from training.
        record = SignalRecord({f"mac{m:02d}": -90.0 for m in range(3)})
        decision = fitted_gem.observe(record)
        assert not decision.inside

    def test_empty_record_is_out(self, fitted_gem):
        decision = fitted_gem.observe(SignalRecord({}))
        assert not decision.inside
        assert decision.score == math.inf

    def test_all_unknown_macs_is_out(self, fitted_gem):
        decision = fitted_gem.observe(SignalRecord({"totally-new": -40.0}))
        assert not decision.inside
        assert decision.score == math.inf

    def test_observe_attaches_to_graph(self):
        gem = GEM(FAST_CONFIG)
        gem.fit(synthetic_records(30, seed=1))
        before = gem.graph.num_records
        gem.observe(synthetic_records(1, seed=2)[0])
        assert gem.graph.num_records == before + 1

    def test_predict_does_not_attach(self):
        gem = GEM(FAST_CONFIG)
        gem.fit(synthetic_records(30, seed=1))
        before = gem.graph.num_records
        gem.predict(synthetic_records(1, seed=2)[0])
        assert gem.graph.num_records == before

    def test_score_matches_detector_scale(self, fitted_gem):
        record = synthetic_records(1, num_macs=10, seed=50, center=2.0)[0]
        score = fitted_gem.score(record)
        assert 0.0 <= score <= 1.0

    def test_observe_stream(self):
        gem = GEM(FAST_CONFIG)
        gem.fit(synthetic_records(30, seed=1))
        stream = synthetic_records(5, seed=3)
        decisions = gem.observe_stream(stream)
        assert len(decisions) == 5


class TestSelfUpdate:
    def test_confident_inliers_update_model(self):
        gem = GEM(FAST_CONFIG)
        gem.fit(synthetic_records(50, seed=0, center=2.0))
        before = gem.detector.num_samples
        updated = sum(gem.observe(r).updated
                      for r in synthetic_records(30, seed=7, center=2.0))
        assert updated > 0
        assert gem.detector.num_samples > before

    def test_update_disabled(self):
        config = replace(FAST_CONFIG, self_update=False)
        gem = GEM(config)
        gem.fit(synthetic_records(50, seed=0, center=2.0))
        before = gem.detector.num_samples
        for record in synthetic_records(20, seed=7, center=2.0):
            assert not gem.observe(record).updated
        assert gem.detector.num_samples == before

    def test_batch_update_buffers(self):
        config = replace(FAST_CONFIG, batch_update_size=10)
        gem = GEM(config)
        gem.fit(synthetic_records(50, seed=0, center=2.0))
        base = gem.detector.num_samples
        absorbed_early = False
        for record in synthetic_records(9, seed=7, center=2.0):
            gem.observe(record)
        # Fewer than batch_update_size confident samples: nothing flushed
        # unless the buffer filled exactly.
        buffered = len(gem._update_buffer)
        assert gem.detector.num_samples + buffered >= base
        flushed = gem.flush_updates()
        assert flushed == buffered
        assert gem.detector.num_samples == base + flushed

    def test_flush_empty_buffer(self, fitted_gem):
        fitted_gem.flush_updates()
        assert fitted_gem.flush_updates() == 0

    def test_buffered_vs_updated_semantics(self):
        """With batching, ``buffered`` marks entry into the buffer and
        ``updated`` only fires on the observation whose flush applies it."""
        config = replace(FAST_CONFIG, batch_update_size=3)
        gem = GEM(config)
        gem.fit(synthetic_records(50, seed=0, center=2.0))
        base = gem.detector.num_samples
        buffered_decisions = [d for d in (gem.observe(r) for r in
                                          synthetic_records(30, seed=7, center=2.0))
                              if d.buffered]
        assert buffered_decisions, "stream produced no confident inliers"
        for decision in buffered_decisions:
            if decision.updated:
                # An applied update implies the sample was buffered first.
                assert decision.buffered
        # Exactly one in every batch_update_size buffered samples applies.
        applied = sum(d.updated for d in buffered_decisions)
        assert applied == len(buffered_decisions) // 3
        assert gem.detector.num_samples == base + 3 * applied
        assert gem.pending_updates == len(buffered_decisions) - 3 * applied

    def test_single_batch_buffered_equals_updated(self):
        gem = GEM(FAST_CONFIG)  # batch_update_size == 1
        gem.fit(synthetic_records(50, seed=0, center=2.0))
        for record in synthetic_records(20, seed=7, center=2.0):
            decision = gem.observe(record)
            assert decision.buffered == decision.updated

    def test_observe_stream_flushes_partial_buffer(self):
        """Regression: a stream ending mid-batch must not drop updates."""
        config = replace(FAST_CONFIG, batch_update_size=100)
        gem = GEM(config)
        gem.fit(synthetic_records(50, seed=0, center=2.0))
        base = gem.detector.num_samples
        stream = synthetic_records(20, seed=7, center=2.0)
        decisions = gem.observe_stream(stream)
        buffered = sum(d.buffered for d in decisions)
        assert buffered > 0
        # Default flush=True: leftovers are applied at stream end.
        assert gem.pending_updates == 0
        assert gem.detector.num_samples == base + buffered

    def test_observe_stream_flush_opt_out(self):
        config = replace(FAST_CONFIG, batch_update_size=100)
        gem = GEM(config)
        gem.fit(synthetic_records(50, seed=0, center=2.0))
        base = gem.detector.num_samples
        decisions = gem.observe_stream(synthetic_records(20, seed=7, center=2.0),
                                       flush=False)
        buffered = sum(d.buffered for d in decisions)
        assert buffered > 0
        assert gem.pending_updates == buffered
        assert gem.detector.num_samples == base


class TestComposedPipelines:
    def test_matrix_embedder_pipeline(self):
        pipeline = EmbeddingGeofencer(ImputedMatrixEmbedder(),
                                      HistogramDetector(HistogramConfig()))
        pipeline.fit(synthetic_records(40, seed=0, center=2.0))
        decision = pipeline.observe(synthetic_records(1, seed=9, center=2.0)[0])
        assert isinstance(decision.inside, bool)

    def test_detector_without_update_support(self):
        from repro.detection import LocalOutlierFactor
        from repro.core.embedders import BiSAGEEmbedder

        pipeline = EmbeddingGeofencer(
            BiSAGEEmbedder(BiSAGEConfig(dim=8, epochs=1, seed=0)),
            LocalOutlierFactor(n_neighbors=5),
            self_update=True)
        pipeline.fit(synthetic_records(30, seed=0))
        decision = pipeline.observe(synthetic_records(1, seed=4)[0])
        # LOF has no update(); decision must not claim an update happened.
        assert not decision.updated

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            EmbeddingGeofencer(ImputedMatrixEmbedder(), HistogramDetector(),
                               batch_update_size=0)
