"""Geometry primitives: intersections, containment, polygon math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.geometry import Polygon, Rect, Segment, distance, segments_intersect


class TestSegments:
    def test_length_and_midpoint(self):
        seg = Segment((0, 0), (3, 4))
        assert seg.length == 5.0
        assert seg.midpoint() == (1.5, 2.0)

    def test_point_at(self):
        seg = Segment((0, 0), (10, 0))
        assert seg.point_at(0.3) == (3.0, 0.0)

    def test_crossing_segments_intersect(self):
        assert segments_intersect(Segment((0, 0), (2, 2)), Segment((0, 2), (2, 0)))

    def test_parallel_segments_do_not(self):
        assert not segments_intersect(Segment((0, 0), (2, 0)), Segment((0, 1), (2, 1)))

    def test_touching_endpoints_intersect(self):
        assert segments_intersect(Segment((0, 0), (1, 1)), Segment((1, 1), (2, 0)))

    def test_collinear_overlapping(self):
        assert segments_intersect(Segment((0, 0), (2, 0)), Segment((1, 0), (3, 0)))

    def test_collinear_disjoint(self):
        assert not segments_intersect(Segment((0, 0), (1, 0)), Segment((2, 0), (3, 0)))

    def test_distance(self):
        assert distance((0, 0), (3, 4)) == 5.0


class TestPolygon:
    def test_area_unit_square(self):
        square = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        assert square.area == pytest.approx(1.0)
        assert square.perimeter == pytest.approx(4.0)

    def test_centroid(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.centroid() == pytest.approx((1.0, 1.0))

    def test_contains_interior_point(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.contains((1.0, 1.0))
        assert not square.contains((3.0, 1.0))

    def test_contains_boundary(self):
        square = Polygon([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert square.contains((0.0, 1.0))

    def test_concave_polygon_containment(self):
        l_shape = Polygon([(0, 0), (3, 0), (3, 1), (1, 1), (1, 3), (0, 3)])
        assert l_shape.contains((0.5, 2.0))
        assert not l_shape.contains((2.0, 2.0))

    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_shrunk_reduces_area(self):
        square = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        inner = square.shrunk(1.0)
        assert inner.area < square.area
        assert square.contains(inner.centroid())

    def test_shrunk_too_much_raises(self):
        tiny = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        with pytest.raises(ValueError):
            tiny.shrunk(5.0)

    def test_sample_point_inside(self):
        poly = Polygon([(0, 0), (3, 0), (3, 1), (1, 1), (1, 3), (0, 3)])
        rng = np.random.default_rng(0)
        for _ in range(20):
            assert poly.contains(poly.sample_point(rng))

    def test_bounding_box(self):
        poly = Polygon([(1, 2), (5, 2), (3, 7)])
        assert poly.bounding_box() == (1, 2, 5, 7)


class TestRect:
    def test_dimensions(self):
        rect = Rect(1, 2, 4, 8)
        assert rect.width == 3 and rect.height == 6
        assert rect.area == pytest.approx(18.0)

    def test_contains_fast_path(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.contains((1, 1))
        assert rect.contains((0, 0))
        assert not rect.contains((2.1, 1))

    def test_shrunk_is_rect(self):
        inner = Rect(0, 0, 4, 4).shrunk(1.0)
        assert isinstance(inner, Rect)
        assert inner.width == 2.0

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)

    def test_shrunk_too_much(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 2, 2).shrunk(1.0)

    def test_sample_point_inside(self):
        rect = Rect(0, 0, 5, 3)
        rng = np.random.default_rng(1)
        for _ in range(20):
            assert rect.contains(rect.sample_point(rng))


@settings(max_examples=30, deadline=None)
@given(st.floats(0.1, 10), st.floats(0.1, 10))
def test_property_rect_area_consistent(w, h):
    rect = Rect(0, 0, w, h)
    assert rect.area == pytest.approx(w * h, rel=1e-9)
    assert rect.perimeter == pytest.approx(2 * (w + h), rel=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.floats(-3, 3), st.floats(-3, 3))
def test_property_containment_matches_bounds(x, y):
    rect = Rect(-1, -1, 1, 1)
    assert rect.contains((x, y)) == (-1 - 1e-9 <= x <= 1 + 1e-9 and -1 - 1e-9 <= y <= 1 + 1e-9)
