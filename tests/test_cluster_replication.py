"""Delta-shipped replication: shipper capture, follower apply, promotion."""

import dataclasses

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.serve import ModelRegistry, load_checkpoint, read_manifest
from repro.serve.checkpoint import flatten_state
from repro.serve.cluster import DeltaShipper, Follower, ReplicationError
from repro.serve.cluster.replicate import manifest_has_deltas

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))
TENANT = "rep-tenant"


def make_gem() -> GEM:
    return GEM(FAST_CONFIG)


def records(seed: int, n: int = 25):
    return synthetic_records(n, num_macs=10, seed=seed)


def assert_states_equal(model_a, model_b) -> None:
    arrays_a, leaves_a = flatten_state(model_a.state_dict())
    arrays_b, leaves_b = flatten_state(model_b.state_dict())
    assert set(arrays_a) == set(arrays_b)
    for key in arrays_a:
        assert np.array_equal(arrays_a[key], arrays_b[key]), key
    assert leaves_a == leaves_b


def build_chain(root, deltas: int = 2, seed: int = 0):
    """A primary registry with one tenant: full save + ``deltas`` deltas.

    Returns ``(gem, shipped_writes)`` — the writes in commit order, as a
    shipper attached for the whole history captured them.
    """
    registry = ModelRegistry(root)
    shipper = DeltaShipper(source="test-primary").attach(registry)
    gem = make_gem().fit(records(seed))
    _, baseline = registry.save_incremental(TENANT, gem, None)
    for step in range(deltas):
        for record in records(100 + seed + step, n=5):
            gem.observe(record)
        kind, baseline = registry.save_incremental(TENANT, gem, baseline)
        assert kind == "delta"
    shipper.detach()
    return gem, shipper.drain()


@pytest.fixture
def chain(tmp_path):
    gem, writes = build_chain(tmp_path / "primary")
    return gem, writes, tmp_path


class TestShipper:
    def test_commits_are_captured_in_order(self, chain):
        _, writes, _ = chain
        assert [w.kind for w in writes] == ["full", "delta", "delta"]
        assert [w.seq for w in writes] == [1, 2, 3]
        assert all(w.tenant_id == TENANT for w in writes)
        assert all(w.source == "test-primary" for w in writes)
        assert all(w.shipped_at > 0 for w in writes)
        # Each delta's manifest carries the whole chain so far.
        assert [len(w.manifest.get("deltas", [])) for w in writes] == [0, 1, 2]

    def test_detach_stops_capture(self, tmp_path):
        registry = ModelRegistry(tmp_path / "primary")
        shipper = DeltaShipper().attach(registry)
        shipper.detach()
        registry.save(TENANT, make_gem().fit(records(0)))
        assert shipper.pending == 0

    def test_wire_roundtrip(self, chain):
        _, writes, _ = chain
        for write in writes:
            header, blobs = write.to_frame()
            assert header["type"] == "replicate"
            back = type(write).from_frame(header, blobs)
            assert back == write


class TestFollowerApply:
    def test_full_then_deltas_reach_identical_state(self, chain):
        gem, writes, tmp_path = chain
        follower = Follower(tmp_path / "standby")
        assert [follower.apply(w) for w in writes] == ["applied"] * 3
        stats = follower.stats()
        assert stats["applied"] == 3 and stats["rejected"] == 0
        assert stats["applied_by_source"] == {"test-primary": 3}
        assert stats["last_lag_seconds"] >= 0
        assert stats["max_lag_seconds"] >= stats["last_lag_seconds"]
        assert_states_equal(gem, load_checkpoint(tmp_path / "standby" / TENANT))

    def test_replay_is_idempotent(self, chain):
        _, writes, tmp_path = chain
        follower = Follower(tmp_path / "standby")
        for write in writes:
            follower.apply(write)
        assert [follower.apply(w) for w in writes] == ["skipped"] * 3
        assert follower.stats()["applied"] == 3

    def test_restarted_follower_replays_idempotently(self, chain):
        # Satellite 3: a follower restart loses only its counters — a
        # fresh Follower over the same directory re-fed the same history
        # must skip everything and leave the standby loadable.
        gem, writes, tmp_path = chain
        Follower(standby := tmp_path / "standby").apply(writes[0])
        Follower(standby).apply(writes[1])          # "restart" mid-stream
        rebooted = Follower(standby)
        assert [rebooted.apply(w) for w in writes] == ["skipped", "skipped",
                                                       "applied"]
        assert_states_equal(gem, load_checkpoint(standby / TENANT))

    def test_torn_delta_rejected_without_corrupting_standby(self, chain):
        # Satellite 3: truncated shipped bytes must be detected before
        # anything touches the standby's disk.
        _, writes, tmp_path = chain
        follower = Follower(standby := tmp_path / "standby")
        follower.apply(writes[0])
        follower.apply(writes[1])
        before = load_checkpoint(standby / TENANT)
        torn = dataclasses.replace(
            writes[2], file_bytes=writes[2].file_bytes[:-20])
        with pytest.raises(ReplicationError, match="torn or truncated"):
            follower.apply(torn)
        assert follower.stats()["rejected"] == 1
        # The standby is untouched: same tip, still loadable.
        manifest = read_manifest(standby / TENANT)
        assert len(manifest["deltas"]) == 1
        assert_states_equal(before, load_checkpoint(standby / TENANT))
        # The intact original still applies afterwards.
        assert follower.apply(writes[2]) == "applied"

    def test_gap_in_the_chain_rejected(self, chain):
        _, writes, tmp_path = chain
        follower = Follower(tmp_path / "standby")
        follower.apply(writes[0])
        with pytest.raises(ReplicationError, match="missed a write"):
            follower.apply(writes[2])               # skipped writes[1]

    def test_delta_cannot_seed_a_tenant(self, chain):
        _, writes, tmp_path = chain
        follower = Follower(tmp_path / "standby")
        with pytest.raises(ReplicationError, match="cannot seed"):
            follower.apply(writes[1])

    def test_delta_from_foreign_base_rejected(self, chain):
        _, writes, tmp_path = chain
        _, foreign = build_chain(tmp_path / "other-primary", deltas=1, seed=7)
        follower = Follower(tmp_path / "standby")
        follower.apply(writes[0])
        with pytest.raises(ReplicationError, match="base save"):
            follower.apply(foreign[1])

    def test_swapped_full_payload_fails_the_nonce_check(self, chain):
        # A *valid* npz from a different save must not pass as this one.
        _, writes, tmp_path = chain
        _, foreign = build_chain(tmp_path / "other-primary", deltas=0, seed=7)
        forged = dataclasses.replace(writes[0],
                                     file_bytes=foreign[0].file_bytes)
        follower = Follower(tmp_path / "standby")
        with pytest.raises(ReplicationError, match="nonce mismatch"):
            follower.apply(forged)


class TestPromotion:
    def test_promote_compacts_mid_chain_tenants(self, chain):
        # Satellite 3: promote() on a mid-chain follower replays the
        # chain and compacts, so the new primary serves with no debt.
        gem, writes, tmp_path = chain
        follower = Follower(standby := tmp_path / "standby")
        for write in writes:
            follower.apply(write)
        report = follower.promote()
        assert report.tenants == 1 and report.compacted == 1
        assert report.chain_lengths == {TENANT: 2}
        assert report.seconds > 0
        manifest = read_manifest(standby / TENANT)
        assert not manifest_has_deltas(manifest)
        assert_states_equal(gem, load_checkpoint(standby / TENANT))

    def test_promote_on_clean_standby_compacts_nothing(self, chain):
        _, writes, tmp_path = chain
        follower = Follower(tmp_path / "standby")
        follower.apply(writes[0])
        report = follower.promote()
        assert report.compacted == 0
        assert report.chain_lengths == {TENANT: 0}
