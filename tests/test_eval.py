"""Metrics, ROC, harness, reporting, algorithm factory."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import LabeledRecord
from repro.datasets import GeofenceDataset
from repro.eval import (
    ALGORITHM_NAMES,
    ConfusionCounts,
    InOutMetrics,
    confusion_from_pairs,
    evaluate_streaming,
    format_mean_min_max,
    format_series,
    format_table,
    make_algorithm,
    metrics_from_pairs,
    roc_curve,
    summarize_metrics,
)
from repro.eval.roc import auc

from conftest import synthetic_records


class TestConfusion:
    def test_counts(self):
        pairs = [(True, True), (True, False), (False, True), (False, False)]
        counts = confusion_from_pairs(pairs)
        assert (counts.tp, counts.fn, counts.fp, counts.tn) == (1, 1, 1, 1)
        assert counts.total == 4
        assert counts.accuracy() == 0.5

    def test_empty_accuracy_zero(self):
        assert ConfusionCounts().accuracy() == 0.0


class TestInOutMetrics:
    def test_perfect_classifier(self):
        pairs = [(True, True)] * 5 + [(False, False)] * 5
        metrics = metrics_from_pairs(pairs)
        assert metrics.as_row() == (1.0,) * 6

    def test_all_predicted_inside(self):
        pairs = [(True, True)] * 5 + [(False, True)] * 5
        metrics = metrics_from_pairs(pairs)
        assert metrics.r_in == 1.0
        assert metrics.p_in == 0.5
        assert metrics.f_out == 0.0

    def test_f_is_harmonic_mean(self):
        pairs = [(True, True)] * 3 + [(True, False)] * 1 + [(False, False)] * 4
        metrics = metrics_from_pairs(pairs)
        expected = 2 * metrics.p_in * metrics.r_in / (metrics.p_in + metrics.r_in)
        assert metrics.f_in == pytest.approx(expected)

    def test_single_class_no_nan(self):
        metrics = metrics_from_pairs([(True, True)] * 3)
        assert np.isfinite(metrics.as_row()).all()

    def test_summarize(self):
        m1 = metrics_from_pairs([(True, True), (False, False)])
        m2 = metrics_from_pairs([(True, False), (False, False)])
        summary = summarize_metrics([m1, m2])
        mean, low, high = summary["f_in"]
        assert low <= mean <= high

    def test_summarize_empty(self):
        with pytest.raises(ValueError):
            summarize_metrics([])

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=40))
    def test_property_metrics_in_unit_interval(self, pairs):
        metrics = metrics_from_pairs(pairs)
        assert all(0.0 <= v <= 1.0 for v in metrics.as_row())


class TestRoc:
    def test_perfect_separation_auc_one(self):
        scores = [0.1, 0.2, 0.8, 0.9]
        labels = [False, False, True, True]
        curve = roc_curve(scores, labels)
        assert curve.auc == pytest.approx(1.0)

    def test_random_scores_auc_half(self):
        rng = np.random.default_rng(0)
        scores = rng.random(4000)
        labels = rng.random(4000) < 0.5
        assert roc_curve(scores, labels).auc == pytest.approx(0.5, abs=0.05)

    def test_inverted_scores_auc_zero(self):
        curve = roc_curve([0.9, 0.8, 0.2, 0.1], [False, False, True, True])
        assert curve.auc == pytest.approx(0.0)

    def test_curve_monotone(self):
        rng = np.random.default_rng(1)
        scores = rng.random(100)
        labels = rng.random(100) < 0.4
        curve = roc_curve(scores, labels)
        assert (np.diff(curve.fpr) >= 0).all()
        assert (np.diff(curve.tpr) >= 0).all()

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            roc_curve([0.1, 0.2], [True, True])

    def test_auc_needs_two_points(self):
        with pytest.raises(ValueError):
            auc([0.0], [0.0])


class TestReporting:
    def test_mean_min_max_format(self):
        assert format_mean_min_max(0.98, 0.94, 1.0) == "0.98 (0.94, 1.00)"

    def test_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.split("\n")
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_table_with_title(self):
        text = format_table(["x"], [["1"]], title="T")
        assert text.startswith("T\n")

    def test_series(self):
        assert format_series("f", [1, 2], [0.5, 0.75]) == "f: 1:0.500, 2:0.750"


class TestHarnessAndFactory:
    def _tiny_dataset(self):
        train = synthetic_records(30, num_macs=8, seed=0, center=2.0)
        inside = synthetic_records(10, num_macs=8, seed=1, center=2.0)
        outside = synthetic_records(10, num_macs=8, seed=2, center=7.0)
        test = ([LabeledRecord(r, True) for r in inside]
                + [LabeledRecord(r, False) for r in outside])
        return GeofenceDataset(scenario=None, train=train, test=test)

    def test_evaluate_streaming_counts(self):
        data = self._tiny_dataset()
        result = evaluate_streaming(make_algorithm("SignatureHome"), data)
        assert len(result.decisions) == 20
        assert len(result.labels) == 20
        assert result.fit_seconds >= 0

    def test_max_test_records(self):
        data = self._tiny_dataset()
        result = evaluate_streaming(make_algorithm("SignatureHome"), data,
                                    max_test_records=5)
        assert len(result.decisions) == 5

    def test_factory_knows_all_names(self):
        for name in ALGORITHM_NAMES:
            assert make_algorithm(name, seed=0) is not None

    def test_factory_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_algorithm("MagicNet")

    def test_factory_dim_propagates(self):
        model = make_algorithm("GEM", dim=16)
        assert model.config.bisage.dim == 16

    def test_roc_from_result(self):
        data = self._tiny_dataset()
        result = evaluate_streaming(make_algorithm("INOA"), data)
        curve = result.roc()
        assert 0.0 <= curve.auc <= 1.0
