"""Support-threshold MAC admission at refresh (admit_new_macs_after)."""

import numpy as np
import pytest

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.core.records import SignalRecord
from repro.embedding.bisage import BiSAGEConfig
from repro.serve import GeofenceFleet, MaintenancePolicy
from repro.serve.controller import FleetController

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))


def trained_gem():
    return GEM(FAST_CONFIG).fit(synthetic_records(25, num_macs=8, seed=0))


def new_mac_record(strength: float = -50.0, extra: dict | None = None):
    """A record sensing one post-training MAC plus known anchors."""
    readings = {"mac00": -52.0, "mac01": -58.0, "newcomer": strength}
    readings.update(extra or {})
    return SignalRecord(readings, timestamp=99.0)


class TestBiSAGEAdmission:
    def _bisage_with_newcomer(self, attachments: int):
        gem = trained_gem()
        for i in range(attachments):
            gem.observe(new_mac_record(strength=-50.0 - i))
        return gem

    def test_supported_newcomer_joins_aggregation(self):
        gem = self._bisage_with_newcomer(attachments=3)
        bisage = gem.embedder.model
        boundary = bisage._macs_aggregated
        index = gem.graph.mac_index("newcomer")
        assert index >= boundary  # genuinely post-training
        strict = trained_gem()
        # Replay the same attachments so both graphs are identical.
        for i in range(3):
            strict.observe(new_mac_record(strength=-50.0 - i))
        gem.embedder.refresh_cache(admit_new_macs_after=3)
        strict.embedder.refresh_cache()
        assert gem.embedder.model._mac_admitted is not None
        assert gem.embedder.model._mac_admitted[index]
        assert strict.embedder.model._mac_admitted is None
        # The admitted MAC now contributes to the embedding: the two
        # otherwise-identical models disagree on a record sensing it.
        probe = new_mac_record(strength=-45.0)
        row_admitted = gem.embedder.model.embed_readings(probe.readings)
        row_strict = strict.embedder.model.embed_readings(probe.readings)
        assert not np.allclose(row_admitted, row_strict)

    def test_unsupported_newcomer_stays_out(self):
        gem = self._bisage_with_newcomer(attachments=2)
        gem.embedder.refresh_cache(admit_new_macs_after=3)
        assert gem.embedder.model._mac_admitted is None  # nobody qualified

    def test_strict_refresh_forgets_admissions(self):
        gem = self._bisage_with_newcomer(attachments=3)
        gem.embedder.refresh_cache(admit_new_macs_after=3)
        assert gem.embedder.model._mac_admitted is not None
        gem.embedder.refresh_cache()  # strict trained-universe refresh
        assert gem.embedder.model._mac_admitted is None

    def test_admissions_survive_checkpoint_round_trip(self):
        gem = self._bisage_with_newcomer(attachments=3)
        gem.embedder.refresh_cache(admit_new_macs_after=3)
        probe = new_mac_record(strength=-45.0)
        before = gem.embedder.model.embed_readings(probe.readings)
        clone = GEM.from_state_dict(gem.state_dict())
        after = clone.embedder.model.embed_readings(probe.readings)
        assert np.array_equal(before, after)
        assert clone.embedder.model._mac_admitted is not None

    def test_threshold_validated(self):
        gem = trained_gem()
        with pytest.raises(ValueError, match="admit_new_macs_after"):
            gem.embedder.refresh_cache(admit_new_macs_after=0)
        with pytest.raises(ValueError, match="admit_new_macs_after"):
            gem.refresh(synthetic_records(5, num_macs=8, seed=1),
                        admit_new_macs_after=-1)


class TestGraphSAGEAdmission:
    def test_mask_and_round_trip(self):
        from repro.core.embedders import GraphSAGEEmbedder
        from repro.embedding.graphsage import GraphSAGE, GraphSAGEConfig
        config = GraphSAGEConfig(dim=8, epochs=1, seed=0)
        embedder = GraphSAGEEmbedder(config).fit(
            synthetic_records(20, num_macs=8, seed=0))
        for i in range(3):
            embedder.embed(new_mac_record(strength=-50.0 - i), attach=True)
        embedder.refresh_cache(admit_new_macs_after=3)
        model = embedder.model
        assert model._mac_admitted is not None
        index = embedder.graph.mac_index("newcomer")
        assert model._mac_admitted[index]
        clone = GraphSAGEEmbedder(config)
        clone.load_state_dict(embedder.state_dict())
        probe = new_mac_record(strength=-45.0)
        assert np.array_equal(
            model.embed_readings(probe.readings),
            clone.model.embed_readings(probe.readings))
        assert clone.model._mac_admitted is not None


class TestCoordinatedRefreshThreading:
    def test_refresh_with_admission_differs_from_strict(self):
        inliers = synthetic_records(15, num_macs=8, seed=3)
        admitted, strict = trained_gem(), trained_gem()
        for i in range(4):
            admitted.observe(new_mac_record(strength=-50.0 - i))
            strict.observe(new_mac_record(strength=-50.0 - i))
        absorbed = admitted.refresh(inliers, admit_new_macs_after=2)
        assert absorbed > 0
        strict.refresh(inliers)
        assert admitted.embedder.model._mac_admitted is not None
        assert strict.embedder.model._mac_admitted is None
        probe = new_mac_record(strength=-45.0)
        row_admitted = admitted.embedder.model.embed_readings(probe.readings)
        row_strict = strict.embedder.model.embed_readings(probe.readings)
        assert not np.allclose(row_admitted, row_strict)


class TestPolicyPlumbing:
    def test_policy_field_validates_and_round_trips(self):
        policy = MaintenancePolicy(check_every=8, refresh_every=16,
                                   admit_new_macs_after=3)
        assert MaintenancePolicy.from_json(policy.to_json()) == policy
        assert "admit new MACs after 3" in policy.describe()
        with pytest.raises(ValueError, match="admit_new_macs_after"):
            MaintenancePolicy(admit_new_macs_after=-1)

    def test_controller_threads_threshold_to_fleet_refresh(self):
        calls = []

        class StubFleet:
            def resident(self, tenant_id):
                return None

            def refresh(self, tenant_id, admit_new_macs_after=None):
                calls.append((tenant_id, admit_new_macs_after))

            def is_dirty(self, tenant_id):
                return False

        class Decision:
            inside = True
            score = 0.5
            buffered = True
            updated = False

        policy = MaintenancePolicy(check_every=2, refresh_every=2,
                                   admit_new_macs_after=4)
        controller = FleetController(StubFleet(), policy)
        for _ in range(2):
            controller.step("t", Decision())
        assert calls == [("t", 4)]

    def test_fleet_refresh_accepts_threshold(self, tmp_path):
        fleet = GeofenceFleet(tmp_path / "m", capacity=2,
                              model_factory=lambda: GEM(FAST_CONFIG),
                              reservoir_size=16)
        fleet.provision("t", synthetic_records(25, num_macs=8, seed=0))
        for i in range(4):
            fleet.observe("t", new_mac_record(strength=-50.0 - i))
        absorbed = fleet.refresh("t", admit_new_macs_after=2)
        assert absorbed > 0
        model = fleet.resident("t")
        assert model.embedder.model._mac_admitted is not None
        fleet.close()
