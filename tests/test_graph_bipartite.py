"""Weighted bipartite graph: construction, dynamics, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.records import SignalRecord
from repro.graph import MAC, RECORD, WeightedBipartiteGraph, build_graph

from conftest import synthetic_records


def small_graph():
    graph = WeightedBipartiteGraph(weight_offset=120.0)
    graph.add_record(SignalRecord({"a": -50.0, "b": -60.0}))
    graph.add_record(SignalRecord({"b": -55.0, "c": -70.0}))
    return graph


class TestConstruction:
    def test_counts(self):
        graph = small_graph()
        assert graph.num_records == 2
        assert graph.num_macs == 3
        assert graph.num_edges == 4

    def test_weight_function_eq2(self):
        graph = WeightedBipartiteGraph(weight_offset=120.0)
        assert graph.edge_weight_of_rss(-50.0) == pytest.approx(70.0)

    def test_weight_must_be_positive(self):
        graph = WeightedBipartiteGraph(weight_offset=100.0)
        with pytest.raises(ValueError, match="non-positive weight"):
            graph.edge_weight_of_rss(-120.0)

    def test_invalid_offset(self):
        with pytest.raises(ValueError):
            WeightedBipartiteGraph(weight_offset=0.0)

    def test_empty_record_is_isolated_node(self):
        graph = small_graph()
        idx = graph.add_record(SignalRecord({}))
        assert graph.degree(RECORD, idx) == 0
        assert graph.num_records == 3

    def test_new_macs_added_dynamically(self):
        graph = small_graph()
        graph.add_record(SignalRecord({"zz": -40.0}))
        assert graph.mac_index("zz") == 3
        assert graph.num_macs == 4

    def test_mac_reuse(self):
        graph = small_graph()
        graph.add_record(SignalRecord({"a": -45.0}))
        assert graph.num_macs == 3
        neighbors, _ = graph.neighbors(MAC, graph.mac_index("a"))
        assert set(neighbors.tolist()) == {0, 2}

    def test_build_graph_helper(self):
        graph = build_graph(synthetic_records(5, seed=1))
        assert graph.num_records == 5
        graph.validate()


class TestQueries:
    def test_neighbors_record_side(self):
        graph = small_graph()
        neighbors, weights = graph.neighbors(RECORD, 0)
        assert set(graph.mac_name(i) for i in neighbors) == {"a", "b"}
        assert (weights > 0).all()

    def test_neighbors_mac_side(self):
        graph = small_graph()
        neighbors, weights = graph.neighbors(MAC, graph.mac_index("b"))
        assert set(neighbors.tolist()) == {0, 1}
        np.testing.assert_allclose(sorted(weights), [60.0, 65.0])

    def test_neighbors_invalid_side(self):
        with pytest.raises(ValueError):
            small_graph().neighbors("X", 0)

    def test_degree_and_weighted_degree(self):
        graph = small_graph()
        assert graph.degree(RECORD, 0) == 2
        assert graph.weighted_degree(RECORD, 0) == pytest.approx(70.0 + 60.0)

    def test_mac_index_unknown_returns_none(self):
        assert small_graph().mac_index("nope") is None

    def test_nodes_iteration_order(self):
        nodes = list(small_graph().nodes())
        assert nodes[:2] == [(RECORD, 0), (RECORD, 1)]
        assert all(side == MAC for side, _ in nodes[2:])

    def test_degrees_arrays(self):
        record_deg, mac_deg = small_graph().degrees()
        assert record_deg.tolist() == [2, 2]
        assert sorted(mac_deg.tolist()) == [1, 1, 2]

    def test_edges_iteration(self):
        edges = list(small_graph().edges())
        assert len(edges) == 4
        assert all(w > 0 for _, _, w in edges)

    def test_record_adjacency_coo(self):
        rows, cols, weights = small_graph().record_adjacency()
        assert len(rows) == len(cols) == len(weights) == 4

    def test_record_adjacency_empty_graph(self):
        rows, cols, weights = WeightedBipartiteGraph().record_adjacency()
        assert len(rows) == 0


@settings(max_examples=20, deadline=None)
@given(st.lists(st.dictionaries(st.sampled_from(["m1", "m2", "m3", "m4"]),
                                st.floats(-100, -30), min_size=0, max_size=4),
                min_size=1, max_size=8))
def test_property_graph_invariants(reading_dicts):
    graph = WeightedBipartiteGraph()
    for readings in reading_dicts:
        graph.add_record(SignalRecord(readings))
    graph.validate()
    # Edge count equals the total number of readings.
    assert graph.num_edges == sum(len(r) for r in reading_dicts)
    # Bipartiteness: record neighbours are valid MAC indices and vice versa.
    for i in range(graph.num_records):
        neighbors, _ = graph.neighbors(RECORD, i)
        assert all(0 <= v < graph.num_macs for v in neighbors)
