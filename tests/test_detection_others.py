"""LOF, isolation forest, feature bagging, thresholds."""

import numpy as np
import pytest

from repro.detection import (
    FeatureBagging,
    IsolationForest,
    LocalOutlierFactor,
    MinMaxNormalizer,
    contamination_threshold,
)


def blob_with_outliers(n=150, d=5, seed=0):
    rng = np.random.default_rng(seed)
    inliers = rng.standard_normal((n, d))
    outliers = rng.standard_normal((10, d)) * 0.3 + 8.0
    return inliers, outliers


class TestMinMaxNormalizer:
    def test_maps_training_range_to_unit(self):
        normalizer = MinMaxNormalizer().fit([2.0, 4.0, 6.0])
        np.testing.assert_allclose(normalizer.transform([2.0, 4.0, 6.0]), [0.0, 0.5, 1.0])

    def test_clips_outside_range(self):
        normalizer = MinMaxNormalizer().fit([0.0, 1.0])
        np.testing.assert_allclose(normalizer.transform([-5.0, 5.0]), [0.0, 1.0])

    def test_no_clip_option(self):
        normalizer = MinMaxNormalizer(clip=False).fit([0.0, 1.0])
        np.testing.assert_allclose(normalizer.transform([2.0]), [2.0])

    def test_degenerate_range_maps_to_half(self):
        normalizer = MinMaxNormalizer().fit([3.0, 3.0])
        np.testing.assert_allclose(normalizer.transform([3.0, 9.0]), [0.5, 0.5])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform([1.0])

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit([])

    def test_nonfinite_fit_raises(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit([np.inf])


class TestContaminationThreshold:
    def test_zero_contamination_above_max(self):
        assert contamination_threshold([1.0, 2.0, 3.0], 0.0) > 3.0

    def test_ten_percent(self):
        scores = np.arange(10, dtype=float)
        # top-1 score is the threshold
        assert contamination_threshold(scores, 0.1) == 9.0

    def test_full_contamination_is_min(self):
        assert contamination_threshold([1.0, 2.0, 3.0], 1.0) == 1.0

    def test_invalid_contamination(self):
        with pytest.raises(ValueError):
            contamination_threshold([1.0], 1.5)

    def test_empty_scores(self):
        with pytest.raises(ValueError):
            contamination_threshold([], 0.1)


class TestLOF:
    def test_separates_outliers(self):
        inliers, outliers = blob_with_outliers()
        lof = LocalOutlierFactor(n_neighbors=10).fit(inliers)
        assert lof.decision_scores(outliers).min() > lof.decision_scores(inliers[:20]).max()

    def test_is_outlier_flags(self):
        inliers, outliers = blob_with_outliers()
        lof = LocalOutlierFactor(n_neighbors=10, contamination=0.05).fit(inliers)
        assert lof.is_outlier(outliers).all()

    def test_inlier_scores_near_one(self):
        inliers, _ = blob_with_outliers(n=400)
        lof = LocalOutlierFactor(n_neighbors=15).fit(inliers)
        scores = lof.decision_scores(inliers[:50])
        assert abs(np.median(scores) - 1.0) < 0.2

    def test_k_clamped_to_n_minus_one(self):
        lof = LocalOutlierFactor(n_neighbors=50).fit(np.random.default_rng(0).standard_normal((5, 2)))
        assert np.isfinite(lof.decision_scores(np.zeros((1, 2)))).all()

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            LocalOutlierFactor().fit(np.zeros((1, 2)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LocalOutlierFactor().decision_scores(np.zeros((1, 2)))


class TestIsolationForest:
    def test_separates_outliers(self):
        inliers, outliers = blob_with_outliers()
        forest = IsolationForest(n_trees=50, seed=0).fit(inliers)
        assert forest.decision_scores(outliers).mean() > forest.decision_scores(inliers[:30]).mean()

    def test_scores_in_unit_interval(self):
        inliers, _ = blob_with_outliers()
        forest = IsolationForest(n_trees=30, seed=0).fit(inliers)
        scores = forest.decision_scores(inliers)
        assert ((scores > 0) & (scores < 1)).all()

    def test_is_outlier_far_point(self):
        inliers, _ = blob_with_outliers()
        forest = IsolationForest(n_trees=50, seed=0).fit(inliers)
        assert forest.is_outlier(np.full((1, 5), 50.0))[0]

    def test_subsample_larger_than_data(self):
        data = np.random.default_rng(0).standard_normal((20, 3))
        forest = IsolationForest(n_trees=10, subsample_size=256, seed=0).fit(data)
        assert forest._subsample_used == 20

    def test_deterministic_with_seed(self):
        data = np.random.default_rng(0).standard_normal((50, 3))
        s1 = IsolationForest(n_trees=20, seed=5).fit(data).decision_scores(data[:5])
        s2 = IsolationForest(n_trees=20, seed=5).fit(data).decision_scores(data[:5])
        np.testing.assert_allclose(s1, s2)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            IsolationForest().fit(np.zeros((1, 2)))

    def test_constant_data_scores_finite(self):
        forest = IsolationForest(n_trees=10, seed=0).fit(np.ones((30, 3)))
        assert np.isfinite(forest.decision_scores(np.ones((5, 3)))).all()


class TestFeatureBagging:
    def test_separates_outliers(self):
        inliers, outliers = blob_with_outliers()
        bagging = FeatureBagging(n_estimators=5, seed=0).fit(inliers)
        assert bagging.decision_scores(outliers).mean() > bagging.decision_scores(inliers[:30]).mean()

    def test_uses_feature_subsets(self):
        inliers, _ = blob_with_outliers()
        bagging = FeatureBagging(n_estimators=6, seed=0).fit(inliers)
        sizes = {len(features) for features, _ in bagging._members}
        d = inliers.shape[1]
        assert all(int(np.ceil(d / 2)) <= s <= d - 1 for s in sizes)

    def test_requires_two_features(self):
        with pytest.raises(ValueError):
            FeatureBagging().fit(np.zeros((10, 1)))

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            FeatureBagging().fit(np.zeros((1, 4)))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            FeatureBagging().decision_scores(np.zeros((1, 4)))

    def test_scores_are_sums_of_members(self):
        inliers, _ = blob_with_outliers(n=60)
        bagging = FeatureBagging(n_estimators=3, seed=1).fit(inliers)
        x = inliers[:4]
        manual = sum(det.decision_scores(x[:, feats]) for feats, det in bagging._members)
        np.testing.assert_allclose(bagging.decision_scores(x), manual)
