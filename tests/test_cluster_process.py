"""Real subprocess workers: the deployment shape, end to end.

One test drives the whole lifecycle over actual child processes and
stdio pipes (spawn, handshake, serve, replicate, shut down) — kept to a
single function so the interpreter start-up cost is paid once.
"""

import os

from conftest import synthetic_records
from repro.core import GEM, GEMConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.serve import ServingRuntime
from repro.serve.cluster import Router

FAST_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))

# These hash to workers 0 and 1 of a 2-worker cluster (CRC-32
# shard_index), so both children really serve.
TENANTS = ["smoke-a", "smoke-d"]


def test_subprocess_cluster_serves_replicates_and_shuts_down(tmp_path):
    root = tmp_path / "registry"
    with ServingRuntime(root, num_shards=1, model_factory=lambda: GEM(FAST_CONFIG),
                        scheduler_interval=None) as runtime:
        for index, tenant in enumerate(TENANTS):
            runtime.provision(tenant, synthetic_records(
                25, num_macs=10, seed=index, center=2.0 + index))

    stream = [(TENANTS[i % 2], record) for i, record in
              enumerate(synthetic_records(12, num_macs=10, seed=99))]
    standby = tmp_path / "standby"
    router = Router(root, num_workers=2, standby=standby, timeout=60.0)
    try:
        pings = router.ping()
        pids = [p["pid"] for p in pings]
        assert len(set(pids)) == 2              # two real children...
        assert os.getpid() not in pids          # ...and neither is us

        decisions = router.observe_many(stream)
        assert len(decisions) == len(stream)
        flushed = router.flush()
        assert flushed == len(TENANTS)

        # Replication rode the same pipes: by the time flush() answered,
        # the standby had been offered every flushed write.
        stats = router.replication_stats()
        assert stats["applied"] >= flushed
        assert stats["rejected"] == 0

        worker_stats = router.worker_stats()
        assert [s["worker"] for s in worker_stats] == [0, 1]
        assert all(s["requests"] >= 2 for s in worker_stats)
        assert all(s["shipped"] >= 1 for s in worker_stats)
    finally:
        router.close()

    # Graceful shutdown collected each child's final accounting.
    assert all(stats is not None for stats in router.final_worker_stats)
    assert router.live_workers == 0
