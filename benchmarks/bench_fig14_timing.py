"""Fig. 14 — inference-time breakdown and batch-update timing.

Paper shapes (absolute ms are hardware-specific): embedding dimension
moves the model-update time but barely the BiSAGE-inference or in-out
detection time; T and m have little effect; per-batch update time grows
with batch size while the total time to absorb a fixed stream *falls*
with batch size.
"""

import numpy as np

from bench_common import FULL, cached_user_dataset, write_result

from repro.core.config import GEMConfig
from repro.core.gem import GEM
from repro.eval.timing import measure_batch_update, measure_inference_breakdown
from repro.eval.reporting import format_table

DIMS = [8, 32, 128] if not FULL else [4, 8, 16, 32, 64, 128]
PROBE_RECORDS = 60
STREAM_SIZE = 400
BATCH_SIZES = [1, 10, 50, 200]


def _fitted_gem(dim: int):
    data = cached_user_dataset(3)
    gem = GEM(GEMConfig().with_dim(dim))
    gem.fit(data.train)
    probe = [item.record for item in data.test[:PROBE_RECORDS]]
    return gem, probe


def run_dim_breakdown():
    rows = []
    for dim in DIMS:
        gem, probe = _fitted_gem(dim)
        timing = measure_inference_breakdown(gem, probe)
        rows.append((dim, timing))
    return rows


def run_batch_modes():
    gem, _ = _fitted_gem(32)
    rng = np.random.default_rng(0)
    stream = rng.standard_normal((STREAM_SIZE, 32)) * 0.05
    out = []
    for batch_size in BATCH_SIZES:
        per_batch_ms, total_ms = measure_batch_update(gem, stream, batch_size)
        out.append((batch_size, per_batch_ms, total_ms))
    return out


def test_fig14a_breakdown_vs_dimension(benchmark):
    rows = benchmark.pedantic(run_dim_breakdown, rounds=1, iterations=1)
    table = [[str(d), f"{t.embed_ms:.2f}", f"{t.detect_ms:.2f}", f"{t.update_ms:.2f}",
              f"{t.total_ms:.2f}"] for d, t in rows]
    write_result("fig14a_timing_vs_dim",
                 format_table(["dim", "embed ms", "detect ms", "update ms", "total ms"],
                              table, title="Fig. 14(a) inference breakdown"))
    # Update cost grows with dimension; detection stays comparatively flat.
    assert rows[-1][1].update_ms > rows[0][1].update_ms
    assert rows[-1][1].detect_ms < rows[-1][1].update_ms * 5


def test_fig14de_batch_update(benchmark):
    rows = benchmark.pedantic(run_batch_modes, rounds=1, iterations=1)
    table = [[str(b), f"{per:.2f}", f"{total:.1f}"] for b, per, total in rows]
    write_result("fig14de_batch_update",
                 format_table(["batch size", "per-batch ms", "total ms"], table,
                              title=f"Fig. 14(d,e) absorbing {STREAM_SIZE} embeddings"))
    # Per-batch time grows with batch size; total time falls.
    assert rows[-1][1] > rows[0][1]
    assert rows[-1][2] < rows[0][2]
