"""Fig. 9/10 — robustness to MAC removal in the training / test set.

Paper: removing up to 25 % of MACs barely moves GEM (the self-update
keeps absorbing records with the surviving MACs), while the detector
baselines on the same embeddings degrade faster.  Reproduction target:
GEM's curve is the flattest / highest.
"""

from bench_common import FULL, cached_user_dataset, run_arm, write_result

from repro.datasets import remove_macs
from repro.eval.reporting import format_series

FRACTIONS = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25] if FULL else [0.0, 0.10, 0.25]
ARMS = ["GEM", "BiSAGE+FeatureBagging", "BiSAGE+iForest", "BiSAGE+LOF"]
REPS = 3 if FULL else 1


def run_removal(which: str):
    base = cached_user_dataset(3)
    curves = {}
    for arm in ARMS:
        f_in_curve, f_out_curve = [], []
        for fraction in FRACTIONS:
            f_in = f_out = 0.0
            for rep in range(REPS):
                data = remove_macs(base, fraction, seed=100 * rep + 7, which=which)
                metrics = run_arm(arm, data, seed=3).metrics
                f_in += metrics.f_in
                f_out += metrics.f_out
            f_in_curve.append(f_in / REPS)
            f_out_curve.append(f_out / REPS)
        curves[arm] = (f_in_curve, f_out_curve)
    return curves


def _report(name: str, curves) -> str:
    lines = []
    for arm, (f_in, f_out) in curves.items():
        lines.append(format_series(f"{arm} Fin", FRACTIONS, f_in))
        lines.append(format_series(f"{arm} Fout", FRACTIONS, f_out))
    text = f"{name}\n" + "\n".join(lines)
    write_result(name, text)
    return text


def test_fig9_removal_from_training(benchmark):
    curves = benchmark.pedantic(run_removal, args=("train",), rounds=1, iterations=1)
    _report("fig9_mac_removal_train", curves)
    gem_f_in, gem_f_out = curves["GEM"]
    # Paper shape reproduced: training-set removal leaves GEM nearly flat.
    assert gem_f_in[-1] > 0.7
    assert gem_f_out[-1] > 0.7
    assert gem_f_in[0] - gem_f_in[-1] < 0.25


def test_fig10_removal_from_test(benchmark):
    curves = benchmark.pedantic(run_removal, args=("test",), rounds=1, iterations=1)
    _report("fig10_mac_removal_test", curves)
    gem_f_in, gem_f_out = curves["GEM"]
    # KNOWN PARTIAL REPRODUCTION (see EXPERIMENTS.md): abrupt test-only
    # MAC removal shifts our embeddings by about one training-spread,
    # which the tightly-calibrated detector flags, so F_in degrades
    # faster than the paper's near-flat curve.  The assertions pin the
    # behaviour that does reproduce: outside detection stays effective
    # and GEM stays in family with the detector baselines.
    assert gem_f_out[-1] > 0.6
    for arm, (f_in, f_out) in curves.items():
        assert gem_f_out[-1] >= f_out[-1] - 0.12, arm
