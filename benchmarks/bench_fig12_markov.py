"""Fig. 12 — robustness to ON-OFF AP dynamics over a (p, q) grid.

Paper: average F stays high over the whole grid, with a small dip near
(p, q) = (0.5, 0.5) where the two-state chain's entropy rate peaks.
"""

import numpy as np

from bench_common import FULL, cached_user_dataset, write_result

from repro.core.records import LabeledRecord
from repro.datasets import GeofenceDataset
from repro.eval import evaluate_streaming, make_algorithm
from repro.rf.markov import apply_ap_onoff, markov_entropy_rate

GRID = [0.1, 0.3, 0.5, 0.7, 0.9] if FULL else [0.1, 0.5, 0.9]


def apply_dynamics(data: GeofenceDataset, p: float, q: float, seed: int) -> GeofenceDataset:
    """ON-OFF chains over the concatenated train+test stream (period 30)."""
    records = list(data.train) + [item.record for item in data.test]
    modified = apply_ap_onoff(records, p, q, period=30, rng=seed)
    train = modified[: len(data.train)]
    test = [LabeledRecord(record, item.inside, item.meta)
            for record, item in zip(modified[len(data.train):], data.test)]
    return GeofenceDataset(scenario=data.scenario, train=train, test=test,
                           meta=dict(data.meta))


def run_grid():
    base = cached_user_dataset(3)
    surface = {}
    for p in GRID:
        for q in GRID:
            data = apply_dynamics(base, p, q, seed=int(1000 * p + 10 * q))
            result = evaluate_streaming(make_algorithm("GEM", seed=3), data)
            surface[(p, q)] = (result.metrics.f_in + result.metrics.f_out) / 2.0
    return surface


def test_fig12_markov_grid(benchmark):
    surface = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    lines = ["Fig. 12 average F over (p, q) grid (rows p, cols q):",
             "      " + "  ".join(f"q={q:.1f}" for q in GRID)]
    for p in GRID:
        lines.append(f"p={p:.1f} " + "  ".join(f"{surface[(p, q)]:.3f}" for q in GRID))
    lines.append("entropy rates: " + "  ".join(
        f"({p},{q})={markov_entropy_rate(p, q):.2f}" for p in GRID for q in GRID))
    write_result("fig12_markov", "\n".join(lines))

    values = np.asarray(list(surface.values()))
    # Partial reproduction (see EXPERIMENTS.md): GEM stays effective over
    # most of the grid, but the long-OFF-dwell corners (q = 0.1, where an
    # AP can vanish for hundreds of consecutive samples) degrade more
    # than the paper's surface — same root cause as Fig. 10.
    assert values.mean() > 0.6
    assert values.max() > 0.85
    easy = [surface[(p, q)] for p in GRID for q in GRID if q >= 0.5]
    assert np.mean(easy) > 0.7
