"""Streaming drift — temporal robustness as a continuous workload.

Not a single paper figure: this runs the paper's temporal claims
(Fig. 9/10 MAC churn, Sec. IV-C self-update) as *deployments* instead
of one-shot ablations.  A dynamic world evolves over simulated days
while one GEM serves it online (graph attach + self-update) and an
identically-trained frozen snapshot serves it statically.  Reported
shapes to watch:

* **churn shock**: after a one-shot replacement of 30 % of the ambient
  APs, online GEM's AUC dips then recovers within a few epochs while
  the static snapshot's false-alarm rate stays pinned near 1 — the
  Fig. 9/10 trend replayed through time;
* **progressive retirement**: APs disappearing a few per epoch (the
  MAC-removal ablation as a drift schedule) barely moves online GEM
  but steadily degrades the snapshot;
* **coordinated refresh**: a fleet tenant whose controller runs the
  coordinated refresh (cache rebuild within the trained MAC universe +
  detector refit on the anchored inlier reservoir) recovers from the
  churn shock at least as fast as pure online self-update — while the
  deprecated raw ``refresh_cache_every`` path, which rebuilds caches
  under the detector and admits never-trained MACs, never recovers at
  all.  This is the headline number the control-plane redesign exists
  for.

Every trajectory also lands as machine-readable JSON under
``benchmarks/results/*.json`` for regression tooling.
"""

import tempfile
import warnings

from bench_common import (FULL, churn_shock_schedules, write_json_result,
                          write_result)

from repro.core.config import GEMConfig
from repro.datasets.users import user_scenario
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.algorithms import arm_spec
from repro.eval.drift import DriftHarness
from repro.eval.reporting import format_table
from repro.pipeline import build_pipeline
from repro.rf.dynamics import APChurn, DynamicsTimeline, home_ap_ids

NUM_EPOCHS = 10 if FULL else 8
SHOCK_EPOCH = 3
GEM_CONFIG = GEMConfig(bisage=BiSAGEConfig(epochs=2))


def make_harness(schedules, scenario) -> DriftHarness:
    timeline = DynamicsTimeline(scenario, schedules, num_epochs=NUM_EPOCHS, seed=0)
    return DriftHarness(timeline, seed=0, train_duration_s=180.0,
                        sessions_per_epoch=4, session_duration_s=45.0)


def gem():
    return build_pipeline(arm_spec("GEM", gem_config=GEM_CONFIG))


def run_pair(harness: DriftHarness):
    """The same trained arm replayed online and as a frozen snapshot."""
    online = harness.run(gem(), label="online", online=True)
    static = harness.run(gem(), label="static", online=False)
    return online, static


def run_churn_shock():
    scenario = user_scenario(3)
    schedules = churn_shock_schedules(scenario, SHOCK_EPOCH, 0.3)
    return run_pair(make_harness(schedules, scenario))


def run_progressive_retirement():
    scenario = user_scenario(3)
    schedules = [APChurn(rate=0.06, replace=False, protect=home_ap_ids(scenario))]
    return run_pair(make_harness(schedules, scenario))


def emit(name: str, title: str, online, static, extra: dict) -> None:
    rows = [[str(a.epoch), str(a.num_records),
             f"{a.auc:.3f}", f"{a.fpr:.2f}", str(a.updates_buffered),
             f"{b.auc:.3f}", f"{b.fpr:.2f}", "; ".join(a.events) or "-"]
            for a, b in zip(online.epochs, static.epochs)]
    write_result(name, format_table(
        ["epoch", "records", "AUC on", "FPR on", "updates", "AUC off", "FPR off",
         "events"], rows, title=title))
    write_json_result(name, {"online": online.to_dict(), "static": static.to_dict(),
                             **extra})


def test_drift_churn_shock(benchmark):
    online, static = benchmark.pedantic(run_churn_shock, rounds=1, iterations=1)
    online_recovery = online.recovery_after(SHOCK_EPOCH)
    static_recovery = static.recovery_after(SHOCK_EPOCH)
    emit("drift_churn_shock",
         f"Churn shock at epoch {SHOCK_EPOCH} (30% of ambient APs replaced)",
         online, static,
         {"shock_epoch": SHOCK_EPOCH,
          "recovery_epochs": {"online": online_recovery, "static": static_recovery}})
    last_on, last_off = online.epochs[-1], static.epochs[-1]
    pre_shock = [m.auc for m in online.epochs if m.epoch < SHOCK_EPOCH]
    # The Fig. 9/10 trend, replayed through time: the online model takes
    # the hit but climbs back to its pre-shock level...
    assert online_recovery is not None
    assert last_on.auc >= min(pre_shock) - 0.02
    # ...while the frozen snapshot stays degraded: false alarms pinned
    # high and ranking quality strictly below the online model's.
    assert last_off.fpr >= last_on.fpr + 0.3
    assert last_on.auc >= last_off.auc + 0.02


def run_refresh_comparison():
    """Four maintenance strategies over the identical churn-shock stream."""
    from repro.serve import FleetController, GeofenceFleet, MaintenancePolicy

    scenario = user_scenario(3)
    schedules = churn_shock_schedules(scenario, SHOCK_EPOCH, 0.3)
    harness = make_harness(schedules, scenario)
    per_epoch = len(harness.epoch_records(0))

    online = harness.run(gem(), label="online", online=True)
    static = harness.run(gem(), label="static", online=False)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        naive_spec = arm_spec("GEM", gem_config=GEMConfig(
            bisage=BiSAGEConfig(epochs=2), refresh_cache_every=per_epoch // 2))
        naive = harness.run(build_pipeline(naive_spec), label="naive-cache", online=True)
    policy = MaintenancePolicy(check_every=max(per_epoch // 4, 1),
                               refresh_every=max(per_epoch // 2, 1))
    with tempfile.TemporaryDirectory() as root:
        with GeofenceFleet(root, capacity=1, reservoir_size=256) as fleet:
            fleet.provision("tenant", harness.training_records(),
                            spec=arm_spec("GEM", gem_config=GEM_CONFIG))
            controller = FleetController(fleet, policy)
            refresh = harness.run_fleet(fleet, "tenant", label="refresh",
                                        controller=controller)
            refresh.meta["refreshes"] = fleet.telemetry.totals().refreshes
    return online, static, naive, refresh


def test_drift_coordinated_refresh(benchmark):
    """The control-plane headline: coordinated refresh recovers at least
    as fast as pure online self-update; the frozen snapshot and the raw
    ``refresh_cache_every`` rebuild are both strictly worse."""
    online, static, naive, refresh = benchmark.pedantic(
        run_refresh_comparison, rounds=1, iterations=1)
    recoveries = {run.label: run.recovery_after(SHOCK_EPOCH)
                  for run in (online, static, naive, refresh)}
    rows = [[str(a.epoch), str(a.num_records),
             f"{a.auc:.3f}", f"{b.auc:.3f}", f"{c.auc:.3f}", f"{d.auc:.3f}",
             "; ".join(a.events) or "-"]
            for a, b, c, d in zip(refresh.epochs, online.epochs,
                                  static.epochs, naive.epochs)]
    write_result("drift_coordinated_refresh", format_table(
        ["epoch", "records", "AUC refresh", "AUC online", "AUC static",
         "AUC naive", "events"], rows,
        title=f"Coordinated refresh vs alternatives (shock at epoch {SHOCK_EPOCH})"))
    write_json_result("drift_coordinated_refresh", {
        "shock_epoch": SHOCK_EPOCH,
        "recovery_epochs": recoveries,
        "runs": {run.label: run.to_dict()
                 for run in (online, static, naive, refresh)}})
    # Coordinated refresh: at least as fast as pure online self-update...
    assert recoveries["refresh"] is not None
    assert recoveries["online"] is not None
    assert recoveries["refresh"] <= recoveries["online"]
    # ...with the false-alarm rate fully recovered by the horizon...
    assert refresh.epochs[-1].fpr <= online.epochs[-1].fpr + 0.05
    assert refresh.epochs[-1].auc >= min(m.auc for m in refresh.epochs
                                         if m.epoch < SHOCK_EPOCH) - 0.02
    # ...while the frozen snapshot and the raw cache rebuild stay
    # strictly worse: slower to recover (or never) and degraded at the end.
    for worse in (static, naive):
        slow = recoveries[worse.label]
        assert slow is None or slow > recoveries["refresh"]
        assert worse.epochs[-1].auc <= refresh.epochs[-1].auc - 0.02
        assert worse.epochs[-1].fpr >= refresh.epochs[-1].fpr + 0.3


def test_drift_progressive_retirement(benchmark):
    online, static = benchmark.pedantic(run_progressive_retirement,
                                        rounds=1, iterations=1)
    emit("drift_progressive_retirement",
         "Progressive AP retirement (MAC removal as a drift schedule)",
         online, static, {})
    last_on, last_off = online.epochs[-1], static.epochs[-1]
    # Online GEM keeps absorbing records over the surviving MACs and ends
    # essentially unimpaired; the snapshot's false-alarm rate collapses.
    assert last_on.auc >= 0.95
    assert last_on.fpr <= 0.2
    assert last_off.fpr >= last_on.fpr + 0.3
    assert all(a.auc >= b.auc - 0.03
               for a, b in zip(online.epochs, static.epochs) if a.auc and b.auc)
