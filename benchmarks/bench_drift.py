"""Streaming drift — temporal robustness as a continuous workload.

Not a single paper figure: this runs the paper's temporal claims
(Fig. 9/10 MAC churn, Sec. IV-C self-update) as *deployments* instead
of one-shot ablations.  A dynamic world evolves over simulated days
while one GEM serves it online (graph attach + self-update) and an
identically-trained frozen snapshot serves it statically.  Reported
shapes to watch:

* **churn shock**: after a one-shot replacement of 30 % of the ambient
  APs, online GEM's AUC dips then recovers within a few epochs while
  the static snapshot's false-alarm rate stays pinned near 1 — the
  Fig. 9/10 trend replayed through time;
* **progressive retirement**: APs disappearing a few per epoch (the
  MAC-removal ablation as a drift schedule) barely moves online GEM
  but steadily degrades the snapshot.

Every trajectory also lands as machine-readable JSON under
``benchmarks/results/*.json`` for regression tooling.
"""

from bench_common import FULL, write_json_result, write_result

from repro.core.config import GEMConfig
from repro.datasets.users import user_scenario
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.algorithms import arm_spec
from repro.eval.drift import DriftHarness
from repro.eval.reporting import format_table
from repro.pipeline import build_pipeline
from repro.rf.dynamics import (
    APChurn,
    ChurnShock,
    DeviceGainDrift,
    DynamicsTimeline,
    TxPowerDrift,
    home_ap_ids,
)

NUM_EPOCHS = 10 if FULL else 8
SHOCK_EPOCH = 3
GEM_CONFIG = GEMConfig(bisage=BiSAGEConfig(epochs=2))


def make_harness(schedules, scenario) -> DriftHarness:
    timeline = DynamicsTimeline(scenario, schedules, num_epochs=NUM_EPOCHS, seed=0)
    return DriftHarness(timeline, seed=0, train_duration_s=180.0,
                        sessions_per_epoch=4, session_duration_s=45.0)


def gem():
    return build_pipeline(arm_spec("GEM", gem_config=GEM_CONFIG))


def run_pair(harness: DriftHarness):
    """The same trained arm replayed online and as a frozen snapshot."""
    online = harness.run(gem(), label="online", online=True)
    static = harness.run(gem(), label="static", online=False)
    return online, static


def run_churn_shock():
    scenario = user_scenario(3)
    protect = home_ap_ids(scenario)
    schedules = [APChurn(rate=0.04, protect=protect), TxPowerDrift(),
                 DeviceGainDrift(), ChurnShock(epoch=SHOCK_EPOCH, fraction=0.3,
                                               protect=protect)]
    return run_pair(make_harness(schedules, scenario))


def run_progressive_retirement():
    scenario = user_scenario(3)
    schedules = [APChurn(rate=0.06, replace=False, protect=home_ap_ids(scenario))]
    return run_pair(make_harness(schedules, scenario))


def emit(name: str, title: str, online, static, extra: dict) -> None:
    rows = [[str(a.epoch), str(a.num_records),
             f"{a.auc:.3f}", f"{a.fpr:.2f}", str(a.updates_buffered),
             f"{b.auc:.3f}", f"{b.fpr:.2f}", "; ".join(a.events) or "-"]
            for a, b in zip(online.epochs, static.epochs)]
    write_result(name, format_table(
        ["epoch", "records", "AUC on", "FPR on", "updates", "AUC off", "FPR off",
         "events"], rows, title=title))
    write_json_result(name, {"online": online.to_dict(), "static": static.to_dict(),
                             **extra})


def test_drift_churn_shock(benchmark):
    online, static = benchmark.pedantic(run_churn_shock, rounds=1, iterations=1)
    online_recovery = online.recovery_after(SHOCK_EPOCH)
    static_recovery = static.recovery_after(SHOCK_EPOCH)
    emit("drift_churn_shock",
         f"Churn shock at epoch {SHOCK_EPOCH} (30% of ambient APs replaced)",
         online, static,
         {"shock_epoch": SHOCK_EPOCH,
          "recovery_epochs": {"online": online_recovery, "static": static_recovery}})
    last_on, last_off = online.epochs[-1], static.epochs[-1]
    pre_shock = [m.auc for m in online.epochs if m.epoch < SHOCK_EPOCH]
    # The Fig. 9/10 trend, replayed through time: the online model takes
    # the hit but climbs back to its pre-shock level...
    assert online_recovery is not None
    assert last_on.auc >= min(pre_shock) - 0.02
    # ...while the frozen snapshot stays degraded: false alarms pinned
    # high and ranking quality strictly below the online model's.
    assert last_off.fpr >= last_on.fpr + 0.3
    assert last_on.auc >= last_off.auc + 0.02


def test_drift_progressive_retirement(benchmark):
    online, static = benchmark.pedantic(run_progressive_retirement,
                                        rounds=1, iterations=1)
    emit("drift_progressive_retirement",
         "Progressive AP retirement (MAC removal as a drift schedule)",
         online, static, {})
    last_on, last_off = online.epochs[-1], static.epochs[-1]
    # Online GEM keeps absorbing records over the surviving MACs and ends
    # essentially unimpaired; the snapshot's false-alarm rate collapses.
    assert last_on.auc >= 0.95
    assert last_on.fpr <= 0.2
    assert last_off.fpr >= last_on.fpr + 0.3
    assert all(a.auc >= b.auc - 0.03
               for a, b in zip(online.epochs, static.epochs) if a.auc and b.auc)
