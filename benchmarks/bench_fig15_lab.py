"""Fig. 15 + Table III — lab experiments: time of day, walking speed, bands.

Paper: GEM stays effective at 11AM/4PM/9PM despite RSS mean/SD/MAC-count
swings (Table III); training-walk speed 0.4/0.8/1.2 m/s barely matters;
2.4G+5G beats single bands and 5G-only beats 2.4G-only (better spatial
confinement).
"""

import numpy as np

from bench_common import write_result

from repro.core.records import unique_macs
from repro.datasets import generate_dataset
from repro.eval import evaluate_streaming, make_algorithm
from repro.eval.reporting import format_table
from repro.rf.device import Device
from repro.rf.scenarios import lab_scenario

# (label, crowd penalty dB, extra fading dB, transient hotspot APs)
TIMES_OF_DAY = [("11AM", 4.0, 2.0, 10), ("4PM", 6.0, 3.0, 14), ("9PM", 0.0, 0.0, 2)]
SPEEDS = [0.4, 0.8, 1.2]
BANDS = [("2.4G", ("2.4",)), ("5G", ("5",)), ("2.4G+5G", ("2.4", "5"))]


def _evaluate(scenario, seed, device=Device(), crowd=0.0, fading=0.0,
              train_speed=0.8):
    data = generate_dataset(scenario, seed=seed, test_sessions=6,
                            session_duration_s=70, device=device,
                            crowd_penalty_db=crowd, extra_fading_db=fading,
                            train_speed=train_speed)
    result = evaluate_streaming(make_algorithm("GEM", seed=seed), data)
    return data, result.metrics


def run_time_of_day():
    rows = []
    for label, crowd, fading, hotspots in TIMES_OF_DAY:
        scenario = lab_scenario(seed=7, transient_aps=hotspots)
        data, metrics = _evaluate(scenario, seed=21, crowd=crowd, fading=fading)
        rss = [value for record in data.train for value in record.readings.values()]
        rows.append((label, metrics.f_in, metrics.f_out,
                     float(np.mean(rss)), float(np.std(rss)), data.num_macs_seen))
    return rows


def run_speeds():
    scenario = lab_scenario(seed=7, transient_aps=6)
    return [(speed, *_evaluate(scenario, seed=22, train_speed=speed)[1].as_row()[2::3])
            for speed in SPEEDS]


def run_bands():
    scenario = lab_scenario(seed=7, transient_aps=6)
    rows = []
    for label, bands in BANDS:
        device = Device(bands=bands)
        _, metrics = _evaluate(scenario, seed=23, device=device)
        rows.append((label, metrics.f_in, metrics.f_out))
    return rows


def test_fig15b_time_of_day(benchmark):
    rows = benchmark.pedantic(run_time_of_day, rounds=1, iterations=1)
    table = [[label, f"{fi:.3f}", f"{fo:.3f}", f"{mean:.1f}", f"{sd:.1f}", str(macs)]
             for label, fi, fo, mean, sd, macs in rows]
    write_result("fig15b_time_of_day",
                 format_table(["Time", "Fin", "Fout", "RSS mean", "RSS SD", "#MACs"],
                              table, title="Fig. 15(b) + Table III"))
    assert min(min(r[1], r[2]) for r in rows) > 0.75
    # Table III shape: busy hours have more MACs than the quiet evening.
    assert rows[1][5] > rows[2][5]


def test_fig15c_walking_speed(benchmark):
    rows = benchmark.pedantic(run_speeds, rounds=1, iterations=1)
    table = [[f"{speed} m/s", f"{fi:.3f}", f"{fo:.3f}"] for speed, fi, fo in rows]
    write_result("fig15c_walking_speed",
                 format_table(["Speed", "Fin", "Fout"], table, title="Fig. 15(c)"))
    assert min(min(fi, fo) for _, fi, fo in rows) > 0.75


def test_fig15d_frequency_bands(benchmark):
    rows = benchmark.pedantic(run_bands, rounds=1, iterations=1)
    table = [[label, f"{fi:.3f}", f"{fo:.3f}"] for label, fi, fo in rows]
    write_result("fig15d_bands",
                 format_table(["Bands", "Fin", "Fout"], table, title="Fig. 15(d)"))
    scores = {label: (fi + fo) / 2 for label, fi, fo in rows}
    # Dual band is at least as good as either single band.
    assert scores["2.4G+5G"] >= max(scores["2.4G"], scores["5G"]) - 0.05
