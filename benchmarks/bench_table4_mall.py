"""Table IV — five-storey shopping mall, GEM vs SignatureHome vs INOA.

Paper: GEM 0.96/0.97 F, INOA 0.81/0.79, SignatureHome 0.75/0.74 — the
cross-floor AP leakage defeats MAC-overlap and per-pair methods while
the embeddings keep floors apart.  Record counts are scaled down from
the paper's 5k/200k campaign (see DESIGN.md).
"""

from bench_common import FULL, run_arm, write_result

from repro.datasets import mall_dataset
from repro.eval.reporting import format_table

ARMS = ["GEM", "SignatureHome", "INOA"]


def run_mall():
    data = mall_dataset(seed=0,
                        train_records=800 if not FULL else 1500,
                        test_records_per_floor=120 if not FULL else 400)
    return {name: run_arm(name, data, seed=0).metrics for name in ARMS}


def test_table4_shopping_mall(benchmark):
    per_arm = benchmark.pedantic(run_mall, rounds=1, iterations=1)
    rows = [[name, f"{m.p_in:.2f}", f"{m.r_in:.2f}", f"{m.f_in:.2f}",
             f"{m.p_out:.2f}", f"{m.r_out:.2f}", f"{m.f_out:.2f}"]
            for name, m in per_arm.items()]
    write_result("table4_mall",
                 format_table(["Algorithm", "Pin", "Rin", "Fin", "Pout", "Rout", "Fout"],
                              rows, title="Table IV (shopping mall)"))
    gem = per_arm["GEM"]
    assert gem.f_in > 0.85 and gem.f_out > 0.9
    assert gem.f_in > per_arm["SignatureHome"].f_in
    assert gem.f_in > per_arm["INOA"].f_in - 0.02
