"""Table I — overall comparison against every evaluation arm.

Paper: GEM best on all six metrics (F_in 0.98, F_out 0.97); matrix-
imputation embedders lose most on F_out; SignatureHome keeps F_in but
drops F_out; GEM's detector beats feature bagging / iForest / LOF on the
same embeddings.  Reproduction target: GEM is the top system overall and
the per-family orderings hold.
"""

from bench_common import BENCH_USERS, cached_user_dataset, run_arm, write_result

from repro.eval import ALGORITHM_NAMES, summarize_metrics
from repro.eval.reporting import format_mean_min_max, format_table

ARMS = [name for name in ALGORITHM_NAMES if not name.startswith("GEM(")]


def run_table1():
    per_arm = {}
    for name in ARMS:
        metrics = []
        for user in BENCH_USERS:
            metrics.append(run_arm(name, cached_user_dataset(user), seed=user).metrics)
        per_arm[name] = summarize_metrics(metrics)
    return per_arm


def test_table1_overall(benchmark):
    per_arm = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    headers = ["Algorithm", "Pin", "Rin", "Fin", "Pout", "Rout", "Fout"]
    rows = []
    for name, summary in per_arm.items():
        rows.append([name] + [format_mean_min_max(*summary[key])
                              for key in ("p_in", "r_in", "f_in", "p_out", "r_out", "f_out")])
    write_result("table1_overall",
                 format_table(headers, rows, title=f"Table I (users {BENCH_USERS})"))

    gem_fout = per_arm["GEM"]["f_out"][0]
    gem_fin = per_arm["GEM"]["f_in"][0]
    # Paper shapes: GEM leads; SignatureHome's weak side is F_out; the
    # matrix-imputation arms trail GEM.
    assert gem_fin >= 0.85 and gem_fout >= 0.85
    assert gem_fout > per_arm["SignatureHome"]["f_out"][0]
    assert gem_fout >= per_arm["MDS+OD"]["f_out"][0] - 0.02
    assert gem_fout >= per_arm["Autoencoder+OD"]["f_out"][0] - 0.02
    assert gem_fout >= per_arm["BiSAGE+FeatureBagging"]["f_out"][0] - 0.05
