"""Fig. 7 — the two GEM-internal ablations.

(a) GEM vs GEM without BiSAGE (enhanced histogram OD directly on the
    -120 dBm-imputed matrix).  Paper: +14 % F_in, +54 % F_out from the
    embeddings.
(b) ROC of the enhanced detector vs plain HBOS on the same BiSAGE
    embeddings.  Paper: the enhanced curve dominates (larger AUC).
"""

from bench_common import cached_user_dataset, run_arm, write_result

from repro.eval.reporting import format_table


def run_fig7():
    out = {}
    for name in ("GEM", "GEM(no-BiSAGE)", "GEM(plain-HBOS)"):
        results = [run_arm(name, cached_user_dataset(user), seed=user)
                   for user in (3, 6)]
        out[name] = {
            "f_in": sum(r.metrics.f_in for r in results) / len(results),
            "f_out": sum(r.metrics.f_out for r in results) / len(results),
            "auc": sum(r.roc().auc for r in results) / len(results),
        }
    return out


def test_fig7_bisage_and_enhancement(benchmark):
    stats = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    rows = [[name, f"{s['f_in']:.3f}", f"{s['f_out']:.3f}", f"{s['auc']:.3f}"]
            for name, s in stats.items()]
    write_result("fig7_ablation",
                 format_table(["Variant", "Fin", "Fout", "ROC AUC"], rows,
                              title="Fig. 7 ablations (mean over users 3, 6)"))

    gem, no_bisage, plain = stats["GEM"], stats["GEM(no-BiSAGE)"], stats["GEM(plain-HBOS)"]
    # (a): BiSAGE embeddings improve both F-scores, F_out by more.
    assert gem["f_in"] > no_bisage["f_in"]
    assert gem["f_out"] > no_bisage["f_out"]
    # (b): the enhanced detector's ROC dominates plain HBOS on average.
    assert gem["auc"] >= plain["auc"] - 0.02
