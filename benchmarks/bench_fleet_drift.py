"""Multi-tenant drift at scale: hundreds of tenants, one LRU budget.

`bench_drift.py` asks "does one tenant survive a drifting world?"; this
benchmark asks what the *fleet* pays for it.  Every tenant is an
independent premises — its own scenario, its own churn timeline, its own
observation stream — served through one :class:`GeofenceFleet` whose
capacity is a small fraction of the tenant count, with a
:class:`FleetController` running a scheduled coordinated-refresh policy
on every tenant.  Interleaved round-robin traffic forces a load +
evict/write-back cycle on nearly every touch, which is exactly the
worst case for checkpoint I/O.

The headline number is **write-back amplification**: checkpoint saves
during streaming divided by the minimum a lossless fleet needs (one
final write per tenant).  An amplification of A means every tenant's
full state hit the registry A times over; it scales with
``touches per tenant`` (epochs x chunks), not with traffic volume,
because the LRU makes every touch of a non-resident tenant a full
reload/write-back round trip.

Runs standalone (CI smoke: ``python benchmarks/bench_fleet_drift.py
--quick``) and writes machine-readable results next to the other
benches; ``REPRO_BENCH_FULL=1`` scales the fleet up.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import write_json_result, write_result  # noqa: E402

from repro.core.config import GEMConfig  # noqa: E402
from repro.embedding.bisage import BiSAGEConfig  # noqa: E402
from repro.eval.drift import DriftHarness  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.pipeline import ComponentSpec, PipelineSpec  # noqa: E402
from repro.rf.dynamics import APChurn, ChurnShock, DynamicsTimeline  # noqa: E402
from repro.rf.scenarios import lab_scenario  # noqa: E402
from repro.serve import FleetController, GeofenceFleet, MaintenancePolicy  # noqa: E402

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Fleet-wide drift benchmark (write-back amplification)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant count (default 120; --quick 12; FULL 240)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="drift epochs per tenant (default 4; --quick 2)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="fleet LRU budget (default tenants // 8, min 2)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale: a dozen tenants, two epochs")
    parser.add_argument("--no-maintain", action="store_true",
                        help="skip the per-tenant coordinated-refresh policy")
    parser.add_argument("--out", help="also write the JSON payload to this path")
    return parser.parse_args(argv)


def tenant_spec() -> PipelineSpec:
    # Deliberately small: this bench measures the serving and
    # maintenance substrate, not embedding quality.
    config = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1))
    return PipelineSpec(model=ComponentSpec("gem", config.to_dict()))


def tenant_harness(index: int, epochs: int) -> DriftHarness:
    """An independent world + timeline + stream per tenant."""
    scenario = lab_scenario(seed=10_000 + index, lab_aps=2, corridor_aps=2,
                            building_aps=4)
    schedules = [APChurn(rate=0.08),
                 ChurnShock(epoch=max(epochs // 2, 1), fraction=0.3)]
    timeline = DynamicsTimeline(scenario, schedules, num_epochs=epochs,
                                seed=index)
    return DriftHarness(timeline, seed=index, train_duration_s=40.0,
                        sessions_per_epoch=2, session_duration_s=10.0)


def directory_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def run(args) -> dict:
    tenants = args.tenants if args.tenants is not None else \
        (12 if args.quick else 240 if FULL else 120)
    epochs = args.epochs if args.epochs is not None else (2 if args.quick else 4)
    capacity = args.capacity if args.capacity is not None else max(tenants // 8, 2)
    spec = tenant_spec()

    harnesses = {f"tenant-{i:04d}": tenant_harness(i, epochs)
                 for i in range(tenants)}
    with tempfile.TemporaryDirectory() as root:
        fleet = GeofenceFleet(root, capacity=capacity, reservoir_size=64)
        per_epoch = len(next(iter(harnesses.values())).epoch_records(0))
        policy = MaintenancePolicy() if args.no_maintain else MaintenancePolicy(
            check_every=max(per_epoch // 2, 1), refresh_every=per_epoch)
        controller = FleetController(fleet, policy)

        t0 = time.perf_counter()
        for tenant_id, harness in harnesses.items():
            fleet.provision(tenant_id, harness.training_records(), spec=spec)
        provision_seconds = time.perf_counter() - t0
        saves_after_provision = fleet.telemetry.totals().saves

        # Interleaved round-robin: every tenant is touched twice per
        # epoch, and with capacity << tenants each touch is a cold
        # reload + an eventual dirty write-back.
        observations = 0
        t0 = time.perf_counter()
        for epoch in range(epochs):
            for half in range(2):
                for tenant_id, harness in harnesses.items():
                    records = harness.epoch_records(epoch)
                    midpoint = len(records) // 2
                    chunk = records[:midpoint] if half == 0 else records[midpoint:]
                    for item in chunk:
                        decision = fleet.observe(tenant_id, item.record)
                        controller.step(tenant_id, decision)
                        observations += 1
        stream_seconds = time.perf_counter() - t0
        fleet.close()

        totals = fleet.telemetry.totals()
        streaming_saves = totals.saves - saves_after_provision
        registry_bytes = directory_bytes(Path(root))

    # Minimum lossless write-back: one final save per tenant.
    amplification = streaming_saves / tenants
    payload = {
        "tenants": tenants,
        "epochs": epochs,
        "capacity": capacity,
        "observations": observations,
        "throughput_obs_per_s": observations / stream_seconds,
        "provision_seconds": provision_seconds,
        "stream_seconds": stream_seconds,
        "loads": totals.loads,
        "streaming_saves": streaming_saves,
        "write_back_amplification": amplification,
        "saves_per_1k_observations": 1000.0 * streaming_saves / observations,
        "refreshes": totals.refreshes,
        "refresh_seconds": totals.refresh_seconds,
        "evictions": totals.evictions,
        "registry_bytes_final": registry_bytes,
        "approx_bytes_written": int(registry_bytes / tenants * streaming_saves),
        "maintained": not args.no_maintain,
    }
    return payload


def main(argv=None) -> int:
    args = parse_args(argv)
    payload = run(args)
    rows = [[key, f"{value:.2f}" if isinstance(value, float) else str(value)]
            for key, value in payload.items()]
    write_result("fleet_drift", format_table(
        ["metric", "value"], rows,
        title=f"Fleet drift: {payload['tenants']} tenants, LRU budget "
              f"{payload['capacity']}, {payload['epochs']} epochs"))
    write_json_result("fleet_drift", payload)
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"payload written to {args.out}")
    # Smoke-level invariants: the fleet must have actually thrashed (the
    # point of the bench) and served every stream it was given.
    assert payload["write_back_amplification"] >= 1.0
    assert payload["loads"] >= payload["tenants"]
    if payload["maintained"]:
        assert payload["refreshes"] > 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
