"""Multi-tenant drift at scale: hundreds of tenants, one LRU budget.

`bench_drift.py` asks "does one tenant survive a drifting world?"; this
benchmark asks what the *fleet* pays for it.  Every tenant is an
independent premises — its own scenario, its own churn timeline, its own
observation stream — served through one :class:`GeofenceFleet` whose
capacity is a small fraction of the tenant count, with a
:class:`FleetController` running a scheduled coordinated-refresh policy
on every tenant.  Interleaved round-robin traffic forces a load +
evict/write-back cycle on nearly every touch, which is exactly the
worst case for checkpoint I/O.

The headline number is **write-back amplification**: *full* checkpoint
saves during streaming divided by the minimum a lossless fleet needs
(one final write per tenant).  PR 4 pinned it at 8.0 — every touch of a
non-resident tenant rewrote the tenant's whole model.  With the
incremental checkpoint format (default here; ``--no-incremental``
reproduces the old behaviour) an eviction whose state only grew appends
a delta instead, and full saves happen only at compaction — the bench
also reports ``bytes_amplification`` (bytes actually written over the
one-final-write floor) so a "cheap" delta that is secretly 90% of the
model would show up.

Two satellite arms ride along, both single-tenant drift trajectories
through the same fleet + controller machinery:

* ``admission``: after a churn shock, compares coordinated refresh with
  per-MAC support-threshold admission (``admit_new_macs_after=N``)
  against both extremes — never admit (strict trained universe) and
  admit on first sight (N=1).
* ``worst_case``: a mass ambient-AP replacement sweep (shock fractions
  0.4 / 0.7 / 0.85 / **1.0 — total replacement**), where beyond a cliff
  refresh alone cannot recover because the trained MAC universe is
  simply gone; validates the ``reprovision_after`` escalation against a
  refresh-only policy (the measured answer is that reservoir-fed
  escalation cannot rescue those worlds either) and, in the starved
  fractions, a **quarantine-recover** policy: a quarantine-armed fleet
  (``quarantine_size=256``) whose :class:`RecoveryPolicy` auto-executes
  ``reprovision_from_quarantine`` once stuck maintenance meets
  reservoir starvation — the measured escape hatch that re-anchors the
  trained MAC universe from rejected-but-home-anchored evidence.

Runs standalone (CI smoke: ``python benchmarks/bench_fleet_drift.py
--quick``) and writes machine-readable results next to the other
benches; ``REPRO_BENCH_FULL=1`` scales the fleet up.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import (bench_metadata, churn_shock_schedules,  # noqa: E402
                          write_json_result, write_result)

from repro.core.config import GEMConfig  # noqa: E402
from repro.embedding.bisage import BiSAGEConfig  # noqa: E402
from repro.eval.drift import DriftHarness  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.pipeline import ComponentSpec, PipelineSpec  # noqa: E402
from repro.datasets.users import user_scenario  # noqa: E402
from repro.rf.dynamics import APChurn, ChurnShock, DynamicsTimeline  # noqa: E402
from repro.rf.scenarios import lab_scenario  # noqa: E402
from repro.serve import (FleetController, GeofenceFleet,  # noqa: E402
                         MaintenancePolicy, RecoveryPolicy)
from repro.serve.checkpoint import MANIFEST_NAME, save_checkpoint  # noqa: E402
from repro.serve.registry import ModelRegistry  # noqa: E402

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Fleet-wide drift benchmark (write-back amplification)")
    parser.add_argument("--tenants", type=int, default=None,
                        help="tenant count (default 120; --quick 12; FULL 240)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="drift epochs per tenant (default 4; --quick 2)")
    parser.add_argument("--capacity", type=int, default=None,
                        help="fleet LRU budget (default tenants // 8, min 2)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale: a dozen tenants, two epochs")
    parser.add_argument("--no-maintain", action="store_true",
                        help="skip the per-tenant coordinated-refresh policy")
    parser.add_argument("--no-incremental", action="store_true",
                        help="write full checkpoints on every eviction "
                             "(the pre-incremental behaviour)")
    parser.add_argument("--skip-arms", action="store_true",
                        help="run only the amplification fleet, not the "
                             "admission / worst-case drift arms")
    parser.add_argument("--out", help="also write the JSON payload to this path")
    return parser.parse_args(argv)


def tenant_spec() -> PipelineSpec:
    # Deliberately small: this bench measures the serving and
    # maintenance substrate, not embedding quality.
    config = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1))
    return PipelineSpec(model=ComponentSpec("gem", config.to_dict()))


def tenant_harness(index: int, epochs: int) -> DriftHarness:
    """An independent world + timeline + stream per tenant."""
    scenario = lab_scenario(seed=10_000 + index, lab_aps=2, corridor_aps=2,
                            building_aps=4)
    schedules = [APChurn(rate=0.08),
                 ChurnShock(epoch=max(epochs // 2, 1), fraction=0.3)]
    timeline = DynamicsTimeline(scenario, schedules, num_epochs=epochs,
                                seed=index)
    return DriftHarness(timeline, seed=index, train_duration_s=40.0,
                        sessions_per_epoch=2, session_duration_s=10.0)


def directory_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


class CountingRegistry(ModelRegistry):
    """Registry that measures the bytes each write actually lands."""

    def __init__(self, root):
        super().__init__(root)
        self.bytes_written = 0

    def save(self, tenant_id, model, metadata=None):
        path = super().save(tenant_id, model, metadata=metadata)
        self.bytes_written += directory_bytes(path)
        return path

    def save_incremental(self, tenant_id, model, baseline, **kwargs):
        path = self.path_for(tenant_id)
        kind, new_baseline = super().save_incremental(tenant_id, model, baseline,
                                                      **kwargs)
        if kind == "full":
            self.bytes_written += directory_bytes(path)
        else:
            delta = path / f"delta-{new_baseline.tip_id}.npz"
            self.bytes_written += (path / MANIFEST_NAME).stat().st_size \
                + delta.stat().st_size
        return kind, new_baseline


# ----------------------------------------------------------------------
# Main arm: write-back amplification at fleet scale
# ----------------------------------------------------------------------
def run_fleet_arm(args) -> dict:
    tenants = args.tenants if args.tenants is not None else \
        (12 if args.quick else 240 if FULL else 120)
    epochs = args.epochs if args.epochs is not None else (2 if args.quick else 4)
    capacity = args.capacity if args.capacity is not None else max(tenants // 8, 2)
    spec = tenant_spec()
    incremental = not args.no_incremental

    harnesses = {f"tenant-{i:04d}": tenant_harness(i, epochs)
                 for i in range(tenants)}
    with tempfile.TemporaryDirectory() as root:
        registry = CountingRegistry(root)
        fleet = GeofenceFleet(registry, capacity=capacity, reservoir_size=64,
                              incremental=incremental)
        per_epoch = len(next(iter(harnesses.values())).epoch_records(0))
        policy = MaintenancePolicy() if args.no_maintain else MaintenancePolicy(
            check_every=max(per_epoch // 2, 1), refresh_every=per_epoch)
        controller = FleetController(fleet, policy)

        t0 = time.perf_counter()
        for tenant_id, harness in harnesses.items():
            fleet.provision(tenant_id, harness.training_records(), spec=spec)
        provision_seconds = time.perf_counter() - t0
        saves_after_provision = fleet.telemetry.totals().saves
        bytes_after_provision = registry.bytes_written

        # Interleaved round-robin: every tenant is touched twice per
        # epoch, and with capacity << tenants each touch is a cold
        # reload + an eventual dirty write-back.
        observations = 0
        t0 = time.perf_counter()
        for epoch in range(epochs):
            for half in range(2):
                for tenant_id, harness in harnesses.items():
                    records = harness.epoch_records(epoch)
                    midpoint = len(records) // 2
                    chunk = records[:midpoint] if half == 0 else records[midpoint:]
                    for item in chunk:
                        decision = fleet.observe(tenant_id, item.record)
                        controller.step(tenant_id, decision)
                        observations += 1
        stream_seconds = time.perf_counter() - t0
        fleet.close()

        totals = fleet.telemetry.totals()
        streaming_saves = totals.saves - saves_after_provision
        streaming_bytes = registry.bytes_written - bytes_after_provision
        registry_bytes = directory_bytes(Path(root))
        # The one-final-write floor in *bytes*: one compacted full
        # checkpoint per tenant.  The incremental layout leaves delta
        # chains on disk, so the raw final size would overstate the
        # floor; rewrite each tenant once (bypassing the byte counter —
        # this is the yardstick, not workload) and measure that.
        for tenant_id in registry.tenants():
            model, manifest = registry.load_with_manifest(tenant_id)
            save_checkpoint(model, registry.path_for(tenant_id),
                            metadata=manifest.get("metadata"))
        compacted_bytes = directory_bytes(Path(root))

    # Minimum lossless write-back: one final (full-state) write per
    # tenant.  The count-based amplification counts full saves only —
    # the bytes-based one keeps the deltas honest.
    amplification = streaming_saves / tenants
    payload = {
        "tenants": tenants,
        "epochs": epochs,
        "capacity": capacity,
        "incremental": incremental,
        "observations": observations,
        "throughput_obs_per_s": observations / stream_seconds,
        "provision_seconds": provision_seconds,
        "stream_seconds": stream_seconds,
        "loads": totals.loads,
        "streaming_saves": streaming_saves,
        "streaming_delta_saves": totals.delta_saves,
        "write_back_amplification": amplification,
        "bytes_amplification": streaming_bytes / compacted_bytes,
        "saves_per_1k_observations": 1000.0 * streaming_saves / observations,
        "refreshes": totals.refreshes,
        "refresh_seconds": totals.refresh_seconds,
        "evictions": totals.evictions,
        "registry_bytes_final": registry_bytes,
        "registry_bytes_compacted": compacted_bytes,
        "streaming_bytes_written": streaming_bytes,
        "maintained": not args.no_maintain,
    }
    return payload


# ----------------------------------------------------------------------
# Satellite arms: single-tenant drift trajectories under policies
# ----------------------------------------------------------------------
def arm_spec() -> PipelineSpec:
    # The drift arms measure *recovery quality*, so they need the real
    # model: dim 32 (PR 3's measured finding — thin embeddings slow
    # recovery) with shortened GNN training.
    config = GEMConfig(bisage=BiSAGEConfig(epochs=2))
    return PipelineSpec(model=ComponentSpec("gem", config.to_dict()))


def arm_harness(quick: bool, epochs: int, shock_epoch: int, fraction: float,
                churn: float = 0.04) -> DriftHarness:
    """The bench_drift churn-shock world (user 3), parameterised shock."""
    scenario = user_scenario(3)
    schedules = churn_shock_schedules(scenario, shock_epoch, fraction,
                                      churn=churn)
    timeline = DynamicsTimeline(scenario, schedules, num_epochs=epochs, seed=0)
    if quick:
        return DriftHarness(timeline, seed=0, train_duration_s=90.0,
                            sessions_per_epoch=2, session_duration_s=25.0)
    return DriftHarness(timeline, seed=0, train_duration_s=180.0,
                        sessions_per_epoch=4, session_duration_s=45.0)


def run_policy_arm(harness: DriftHarness, policy: MaintenancePolicy,
                   label: str, spec: PipelineSpec, quarantine_size: int = 0):
    with tempfile.TemporaryDirectory() as root:
        with GeofenceFleet(root, capacity=1, reservoir_size=256,
                           incremental=True,
                           quarantine_size=quarantine_size) as fleet:
            fleet.provision("arm", harness.training_records(), spec=spec)
            controller = FleetController(fleet, policy)
            result = harness.run_fleet(fleet, "arm", label=label,
                                       controller=controller)
            actions = [action for _, action in controller.actions]
    result.meta["action_counts"] = {name: actions.count(name)
                                    for name in sorted(set(actions))}
    return result


def summarise(result, shock_epoch: int) -> dict:
    tail = [m for m in result.epochs if m.epoch >= shock_epoch]
    aucs = [m.auc for m in tail if m.auc is not None]
    return {
        "label": result.label,
        "recovery_epochs": result.recovery_after(shock_epoch),
        "epochs_to_auc_0.9": result.time_to_auc(0.9, after_epoch=shock_epoch),
        "post_shock_mean_auc": float(sum(aucs) / len(aucs)) if aucs else None,
        "final_auc": result.epochs[-1].auc,
        "final_fpr": result.epochs[-1].fpr,
        "actions": result.meta.get("action_counts", {}),
    }


def run_admission_arm(args) -> dict:
    """Support-threshold MAC admission vs both extremes after a shock."""
    epochs = 5 if args.quick else 8
    shock = 2 if args.quick else 3
    spec = arm_spec()
    per_epoch_obs = None
    results = {}
    for label, admit in (("never", 0), ("after-3", 3), ("first-sight", 1)):
        harness = arm_harness(args.quick, epochs=epochs, shock_epoch=shock,
                              fraction=0.3)
        if per_epoch_obs is None:
            per_epoch_obs = len(harness.epoch_records(0))
        policy = MaintenancePolicy(check_every=max(per_epoch_obs // 4, 1),
                                   refresh_every=max(per_epoch_obs // 2, 1),
                                   admit_new_macs_after=admit)
        result = run_policy_arm(harness, policy, label, spec)
        results[label] = summarise(result, shock)
    return {"shock_epoch": shock, "epochs": epochs,
            "shock_fraction": 0.3, "policies": results}


def run_worst_case_arm(args) -> dict:
    """Mass AP replacement: where does refresh stop working, and does
    the ``reprovision_after`` escalation rescue what refresh cannot?

    Sweeps shock fractions 0.4, 0.7 and 1.0 (total replacement) over
    identical policies.  Measured answer (pinned by the full-scale
    assertions in ``main``): **no** — reservoir-fed re-provision shares
    refresh's failure mode.  At 0.4 (just below the cliff; 0.45 already
    collapses at this world's density) refresh alone recovers, and
    escalating mid-recovery actually *hurts*: reprovision re-anchors
    the reservoir on mixed-world records and each repeat churns the
    weights.  At 0.7 and 1.0 every decision goes outside, so no new
    record is ever admitted to the inlier reservoir and *nothing
    reservoir-based* — refresh or reprovision — has data to recover
    from; escalation fires exactly as designed and changes nothing.
    Recovery from a dead world needs fresh training data — which is
    exactly what the **quarantine-recover** arm supplies without an
    operator: the fleet runs a ``quarantine_size=256`` buffer of
    rejected-but-home-anchored scans and the policy auto-approves
    ``reprovision_from_quarantine`` when stuck maintenance meets
    reservoir starvation.  In the starved fractions that arm climbs the
    wall the reservoir-fed policies cannot (the 0.85 recovery is the
    acceptance bar pinned in ``main``); ``--quick`` keeps a single
    0.85-fraction quarantine smoke so CI exercises the whole recovery
    path end to end.
    """
    epochs = 5 if args.quick else 8
    shock = 2 if args.quick else 3
    spec = arm_spec()
    scenarios = {}
    for fraction in (0.4, 0.7, 0.85, 1.0):
        results = {}
        arms = [("refresh-only", {}, 0),
                ("escalate-2", {"min_update_rate": 0.05,
                                "reprovision_after": 2}, 0)]
        # The quarantine arm only matters where the reservoir starves
        # (>= 0.7); --quick trims it to the 0.85 acceptance fraction so
        # the smoke stays cheap while still crossing recovery end to end.
        if fraction >= 0.7 and (not args.quick or fraction == 0.85):
            arms.append(("quarantine-recover",
                         {"min_update_rate": 0.05}, 256))
        for label, extra, quarantine_size in arms:
            harness = arm_harness(args.quick, epochs=epochs, shock_epoch=shock,
                                  fraction=fraction, churn=0.0)
            per_epoch_obs = len(harness.epoch_records(0))
            if quarantine_size:
                extra = dict(extra, recovery=RecoveryPolicy(
                    after_stuck=2,
                    starvation_window=max(per_epoch_obs // 2, 8),
                    min_quarantine=24, auto=True, max_fpr=0.7))
            policy = MaintenancePolicy(check_every=max(per_epoch_obs // 4, 1),
                                       refresh_every=max(per_epoch_obs // 2, 1),
                                       min_window=max(per_epoch_obs // 4, 8),
                                       **extra)
            result = run_policy_arm(harness, policy, label, spec,
                                    quarantine_size=quarantine_size)
            results[label] = summarise(result, shock)
        scenarios[f"fraction-{fraction:g}"] = results
    return {"shock_epoch": shock, "epochs": epochs, "scenarios": scenarios}


def main(argv=None) -> int:
    args = parse_args(argv)
    payload = run_fleet_arm(args)
    payload["meta"] = bench_metadata("fleet_drift", args)
    if not args.skip_arms:
        payload["admission"] = run_admission_arm(args)
        payload["worst_case"] = run_worst_case_arm(args)
    rows = [[key, f"{value:.2f}" if isinstance(value, float) else str(value)]
            for key, value in payload.items() if not isinstance(value, dict)]
    write_result("fleet_drift", format_table(
        ["metric", "value"], rows,
        title=f"Fleet drift: {payload['tenants']} tenants, LRU budget "
              f"{payload['capacity']}, {payload['epochs']} epochs"
              + (" [incremental]" if payload["incremental"] else " [full saves]")))
    write_json_result("fleet_drift", payload)
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"payload written to {args.out}")
    # Smoke-level invariants: the fleet must have actually thrashed (the
    # point of the bench) and served every stream it was given.
    assert payload["loads"] >= payload["tenants"]
    if payload["maintained"]:
        assert payload["refreshes"] > 0
    if payload["incremental"]:
        # The acceptance bar for the incremental format: full-state
        # write-backs fall from 8 per tenant to at most 3, and the
        # bytes written shrink too (deltas must not secretly carry the
        # whole model every time).
        assert payload["write_back_amplification"] <= 3.0, payload
        assert payload["streaming_delta_saves"] > 0
        # Over the honest floor (one compacted checkpoint per tenant)
        # the full-save workload writes 8.0 floors' worth of bytes;
        # deltas must stay well under that, not just under the count.
        assert payload["bytes_amplification"] < 5.0, payload
    else:
        assert payload["write_back_amplification"] >= 1.0
    if not args.skip_arms:
        # The escalation mechanism must actually fire in the stuck worlds.
        beyond = payload["worst_case"]["scenarios"]["fraction-0.7"]
        total = payload["worst_case"]["scenarios"]["fraction-1"]
        assert beyond["escalate-2"]["actions"].get("reprovision", 0) > 0, beyond
        assert total["escalate-2"]["actions"].get("reprovision", 0) > 0, total
        # Quarantine smoke (every scale): the recovery path must actually
        # execute in the 0.85 starved world — evidence admitted, recovery
        # armed, refit swapped in.
        smoke = payload["worst_case"]["scenarios"]["fraction-0.85"]
        assert smoke["quarantine-recover"]["actions"].get("recover", 0) > 0, smoke
        if not args.quick:
            # Pin the measured findings at the full, deterministic scale:
            # beyond the reservoir-starvation cliff nothing *reservoir-fed*
            # recovers...
            for stuck in (beyond, total):
                assert all(stuck[label]["recovery_epochs"] is None
                           for label in ("refresh-only", "escalate-2")), stuck
            # ...while quarantine recovery climbs the 0.85 wall back to a
            # deployable detector (the PR's acceptance bar).
            recovered = smoke["quarantine-recover"]
            assert recovered["final_auc"] is not None \
                and recovered["final_auc"] >= 0.9, recovered
            assert recovered["epochs_to_auc_0.9"] is not None, recovered
            # ...below it, refresh alone recovers and escalation does not
            # beat it (it measurably hurts)...
            below = payload["worst_case"]["scenarios"]["fraction-0.4"]
            assert below["refresh-only"]["recovery_epochs"] is not None, below
            assert below["refresh-only"]["final_auc"] >= \
                below["escalate-2"]["final_auc"], below
            # ...and strict trained-universe refresh beats (or ties) both
            # MAC-admission relaxations after the shock.
            admission = payload["admission"]["policies"]
            assert admission["never"]["post_shock_mean_auc"] >= \
                admission["after-3"]["post_shock_mean_auc"], admission
            assert admission["never"]["post_shock_mean_auc"] >= \
                admission["first-sight"]["post_shock_mean_auc"], admission
    return 0


if __name__ == "__main__":
    sys.exit(main())
