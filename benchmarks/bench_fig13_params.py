"""Fig. 13 — tolerance to hyper-parameter perturbation.

Paper: F stays high across embedding dimension 4..128, scaling factor
T in 0.04..0.08 and bin counts 7..15.  Reproduction target: flat,
high curves (no parameter cliff).
"""

from bench_common import FULL, cached_user_dataset, run_arm, write_result

from repro.core.config import GEMConfig
from repro.core.gem import GEM
from repro.eval import evaluate_streaming
from repro.eval.reporting import format_series

DIMS = [4, 8, 16, 32, 64, 128] if FULL else [8, 32, 128]
TEMPERATURES = [0.04, 0.05, 0.06, 0.07, 0.08] if FULL else [0.04, 0.06, 0.08]
BINS = [7, 9, 11, 13, 15] if FULL else [7, 11, 15]


def _run(config: GEMConfig, user: int = 3):
    result = evaluate_streaming(GEM(config), cached_user_dataset(user))
    return result.metrics.f_in, result.metrics.f_out


def run_sweeps():
    base = GEMConfig()
    dims = [_run(base.with_dim(d)) for d in DIMS]
    temps = [_run(base.with_temperature(t)) for t in TEMPERATURES]
    bins = [_run(base.with_bins(m)) for m in BINS]
    return dims, temps, bins


def test_fig13_parameter_tolerance(benchmark):
    dims, temps, bins = benchmark.pedantic(run_sweeps, rounds=1, iterations=1)
    lines = [
        format_series("dim Fin", DIMS, [v[0] for v in dims]),
        format_series("dim Fout", DIMS, [v[1] for v in dims]),
        format_series("T Fin", TEMPERATURES, [v[0] for v in temps]),
        format_series("T Fout", TEMPERATURES, [v[1] for v in temps]),
        format_series("bins Fin", BINS, [v[0] for v in bins]),
        format_series("bins Fout", BINS, [v[1] for v in bins]),
    ]
    write_result("fig13_params", "Fig. 13 parameter sweeps\n" + "\n".join(lines))
    # Flat and high everywhere (no cliff under perturbation).
    for series in (dims, temps, bins):
        assert min(min(pair) for pair in series) > 0.7
