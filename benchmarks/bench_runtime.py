"""Serving-runtime benchmark: shard scaling + observe latency under
background maintenance + incremental write-back accounting.

Three questions about :class:`repro.serve.runtime.ServingRuntime`, the
sharded daemon:

* **Shard scaling** — concurrent observers hitting tenants spread
  across 1/2/4 shards.  Each shard owns its own lock, so observes on
  different shards never contend on fleet state; the GIL still
  serialises pure-python bookkeeping, so this measures contention
  removal, not linear CPU scaling.
* **Observe latency during a background refresh** — the swap-on-commit
  fix's pinned claim.  A victim tenant is observed in a tight loop on
  the *same shard* where the maintenance worker keeps refreshing a
  large tenant.  Because the shard lock is released for the rebuild
  (held only for the model copy and the pointer swap), the observer's
  p99 latency must stay far below the refresh duration — under the old
  inline refresh it would *equal* it.
* **Write-back accounting** — full vs delta saves on a thrashing LRU,
  the compact companion to ``bench_fleet_drift``'s amplification run.
* **Batch data plane** — ``observe_many`` through the vectorized
  :class:`repro.serve.batchplane.BatchPlane` vs the scalar per-record
  loop on the same GEM/histogram tenant, decisions asserted identical.
  Two regimes: the pure scoring plane (``self_update=False``, the
  pinned >=10x claim at full scale) and a self-updating stream
  (``batch_update_size=64``, where mid-batch detector flushes force
  segment re-scoring and cap the win).  The result is pinned to
  ``BENCH_runtime.json`` at the repository root.
* **Observability overhead** — identical observe workload with the
  metrics/tracing layer on (the default) vs off.  The instrumented
  throughput must stay within 5 % of the bare runtime's, which is the
  contract that keeps ``observability=True`` defensible as a default;
  the instrumented run also leaves its metrics snapshot at
  ``benchmarks/results/runtime_metrics.jsonl`` for
  ``python -m repro obs render``.

Runs standalone; ``--quick`` is the CI smoke scale.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import (RESULTS_DIR, bench_metadata,  # noqa: E402
                          write_json_result, write_result)

from repro.core import GEM  # noqa: E402
from repro.core.config import GEMConfig  # noqa: E402
from repro.core.records import SignalRecord  # noqa: E402
from repro.embedding.bisage import BiSAGEConfig  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.pipeline import ComponentSpec, PipelineSpec  # noqa: E402
from repro.serve import GeofenceFleet, MaintenancePolicy, ServingRuntime  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description="ServingRuntime benchmark")
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument("--seconds", type=float, default=None,
                        help="wall-clock budget per measured run")
    parser.add_argument("--out", help="also write the JSON payload to this path")
    return parser.parse_args(argv)


def spec(dim: int = 8) -> PipelineSpec:
    config = GEMConfig(bisage=BiSAGEConfig(dim=dim, epochs=1))
    return PipelineSpec(model=ComponentSpec("gem", config.to_dict()))


def make_records(n: int, num_macs: int, seed: int) -> list[SignalRecord]:
    """Cheap deterministic in-premises-looking scans (serving substrate
    benchmark: the model's quality is irrelevant, its shape is not)."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        readings = {}
        for m in range(num_macs):
            rss = -50.0 - 3.0 * (m % 7) + rng.normal(0.0, 2.0)
            if rng.random() < 0.8:
                readings[f"mac-{seed}-{m:03d}"] = float(max(rss, -95.0))
        if not readings:
            readings[f"mac-{seed}-000"] = -70.0
        records.append(SignalRecord(readings, timestamp=float(i)))
    return records


def percentile(samples: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(samples), q)) if samples else 0.0


# ----------------------------------------------------------------------
# Arm 1: shard scaling under concurrent observers
# ----------------------------------------------------------------------
def run_shard_scaling(args) -> dict:
    threads = 4
    tenants_per_thread = 2
    seconds = args.seconds if args.seconds is not None else (0.8 if args.quick else 3.0)
    tenant_ids = [f"scale-{i:02d}" for i in range(threads * tenants_per_thread)]
    train = {t: make_records(40, 12, seed=i) for i, t in enumerate(tenant_ids)}
    streams = {t: make_records(400, 12, seed=1000 + i)
               for i, t in enumerate(tenant_ids)}

    out = {}
    for num_shards in (1, 2, 4):
        with tempfile.TemporaryDirectory() as root:
            with ServingRuntime(root, num_shards=num_shards, capacity=16,
                                scheduler_interval=None) as runtime:
                for tenant in tenant_ids:
                    runtime.provision(tenant, train[tenant], spec=spec())
                counts = [0] * threads
                stop = time.perf_counter() + seconds
                barrier = threading.Barrier(threads)

                def worker(slot: int) -> None:
                    mine = tenant_ids[slot * tenants_per_thread:
                                      (slot + 1) * tenants_per_thread]
                    barrier.wait()
                    position = 0
                    while time.perf_counter() < stop:
                        tenant = mine[position % len(mine)]
                        record = streams[tenant][position % 400]
                        runtime.observe(tenant, record)
                        counts[slot] += 1
                        position += 1

                pool = [threading.Thread(target=worker, args=(slot,))
                        for slot in range(threads)]
                t0 = time.perf_counter()
                for thread in pool:
                    thread.start()
                for thread in pool:
                    thread.join()
                elapsed = time.perf_counter() - t0
        out[str(num_shards)] = {"observations": sum(counts),
                                "throughput_obs_per_s": sum(counts) / elapsed}
    return out


# ----------------------------------------------------------------------
# Arm 2: observe latency while the daemon refreshes a neighbour
# ----------------------------------------------------------------------
def run_latency_under_refresh(args) -> dict:
    heavy_train = 120 if args.quick else 600
    seconds = args.seconds if args.seconds is not None else (1.5 if args.quick else 5.0)
    victim_train = make_records(40, 12, seed=1)
    victim_stream = make_records(500, 12, seed=2)
    heavy_records = make_records(heavy_train, 24, seed=3)

    def measure(policy: MaintenancePolicy | None, interval: float | None) -> dict:
        latencies: list[float] = []
        with tempfile.TemporaryDirectory() as root:
            with ServingRuntime(root, num_shards=1, capacity=8,
                                policy=policy,
                                scheduler_interval=interval) as runtime:
                runtime.provision("victim", victim_train, spec=spec())
                runtime.provision("heavy", heavy_records,
                                  spec=spec(dim=16 if args.quick else 32))
                # Feed the heavy tenant so its policy keeps demanding
                # refreshes for the whole measurement window.
                stop = time.perf_counter() + seconds
                position = 0
                while time.perf_counter() < stop:
                    runtime.observe("heavy", heavy_records[position % heavy_train])
                    t0 = time.perf_counter()
                    runtime.observe("victim", victim_stream[position % 500])
                    latencies.append(time.perf_counter() - t0)
                    position += 1
                totals = runtime.telemetry_totals()
                refreshes = totals.refreshes
                refresh_seconds = totals.refresh_seconds
        return {"observations": len(latencies),
                "p50_ms": 1e3 * percentile(latencies, 50),
                "p99_ms": 1e3 * percentile(latencies, 99),
                "max_ms": 1e3 * max(latencies),
                "refreshes": refreshes,
                "mean_refresh_ms": (1e3 * refresh_seconds / refreshes
                                    if refreshes else 0.0)}

    baseline = measure(policy=None, interval=None)
    refresh_policy = MaintenancePolicy(check_every=8, refresh_every=16)
    maintained = measure(policy=refresh_policy, interval=0.01)
    return {"baseline": baseline, "under_refresh": maintained}


# ----------------------------------------------------------------------
# Arm 3: write-back accounting on a thrashing LRU
# ----------------------------------------------------------------------
def run_writeback_accounting(args) -> dict:
    tenants = [f"wb-{i:02d}" for i in range(4 if args.quick else 12)]
    rounds = 3 if args.quick else 6
    train = {t: make_records(30, 10, seed=50 + i) for i, t in enumerate(tenants)}
    streams = {t: make_records(rounds * 5, 10, seed=150 + i)
               for i, t in enumerate(tenants)}
    out = {}
    for label, incremental in (("full_saves", False), ("incremental", True)):
        with tempfile.TemporaryDirectory() as root:
            with ServingRuntime(root, num_shards=1, capacity=2,
                                incremental=incremental,
                                scheduler_interval=None) as runtime:
                for tenant in tenants:
                    runtime.provision(tenant, train[tenant], spec=spec())
                provision_saves = runtime.telemetry_totals().saves
                # Round-robin: every touch of a non-resident tenant is a
                # cold reload and someone else's dirty write-back.
                for round_index in range(rounds):
                    for tenant in tenants:
                        for step in range(5):
                            record = streams[tenant][round_index * 5 + step]
                            runtime.observe(tenant, record)
                totals = runtime.telemetry_totals()
        out[label] = {
            "streaming_full_saves": totals.saves - provision_saves,
            "streaming_delta_saves": totals.delta_saves,
            "full_saves_per_tenant": (totals.saves - provision_saves) / len(tenants),
        }
    return out


# ----------------------------------------------------------------------
# Arm 4: vectorized batch data plane vs the scalar observe loop
# ----------------------------------------------------------------------
def run_batch_throughput(args) -> dict:
    """``observe_many`` (BatchPlane fast path) vs per-record ``observe``.

    Both sides run at fleet level — same lock, same telemetry, same
    reservoir bookkeeping — so the ratio isolates the data plane.  Two
    independently provisioned fleets share the seed-pinned config, so
    their fitted models are identical and the decision streams must
    match exactly (the differential harness owns the bit-level proof;
    this re-checks it on the bench mix for free).
    """
    n_stream = 600 if args.quick else 2000
    chunk = 256
    train = make_records(300, 16, seed=21)
    stream = make_records(n_stream, 16, seed=22)
    base = GEMConfig(bisage=BiSAGEConfig(dim=8, epochs=1, seed=0))
    regimes = (("scoring", {"self_update": False}),
               ("self_update", {"batch_update_size": 64}))

    out = {}
    for label, overrides in regimes:
        config = dataclasses.replace(base, **overrides)

        def make_fleet(root: str) -> GeofenceFleet:
            fleet = GeofenceFleet(Path(root) / "m", capacity=4,
                                  model_factory=lambda: GEM(config),
                                  reservoir_size=16)
            fleet.provision("t", train)
            return fleet

        with tempfile.TemporaryDirectory() as root:
            fleet = make_fleet(root)
            t0 = time.perf_counter()
            scalar = [fleet.observe("t", record) for record in stream]
            scalar_s = time.perf_counter() - t0
            fleet.close()
        with tempfile.TemporaryDirectory() as root:
            fleet = make_fleet(root)
            batch: list = []
            t0 = time.perf_counter()
            for start in range(0, n_stream, chunk):
                batch.extend(fleet.observe_many(
                    [("t", r) for r in stream[start:start + chunk]]))
            batch_s = time.perf_counter() - t0
            engaged = fleet.batchplane.engaged_total()
            fleet.close()

        out[label] = {
            "records": n_stream,
            "batch_size": chunk,
            "scalar_obs_per_s": n_stream / scalar_s,
            "batch_obs_per_s": n_stream / batch_s,
            "speedup": scalar_s / batch_s,
            "fastpath_engaged": engaged,
            "decisions_identical": batch == scalar,
        }
    return out


# ----------------------------------------------------------------------
# Arm 5: observability overhead on the observe path
# ----------------------------------------------------------------------
def run_observability_overhead(args) -> dict:
    """Instrumented vs bare observe throughput, best-of-repeats.

    Best-of damps scheduler noise on shared CI boxes: the fastest
    repeat of each arm is the closest to the workload's true cost, and
    the comparison is between two best cases measured interleaved.
    """
    repeats = 3
    n_obs = 400 if args.quick else 2000
    train = make_records(40, 12, seed=7)
    stream = make_records(500, 12, seed=8)

    def one_run(observability: bool, dump_to: Path | None = None) -> float:
        with tempfile.TemporaryDirectory() as root:
            with ServingRuntime(root, num_shards=1, capacity=4,
                                scheduler_interval=None,
                                observability=observability) as runtime:
                runtime.provision("overhead", train, spec=spec())
                t0 = time.perf_counter()
                for i in range(n_obs):
                    runtime.observe("overhead", stream[i % 500])
                elapsed = time.perf_counter() - t0
                if dump_to is not None:
                    from repro.obs import MetricsDumper
                    MetricsDumper(runtime.metrics, dump_to).dump_now()
        return n_obs / elapsed

    metrics_path = RESULTS_DIR / "runtime_metrics.jsonl"
    RESULTS_DIR.mkdir(exist_ok=True)
    metrics_path.unlink(missing_ok=True)
    bare, instrumented = 0.0, 0.0
    for repeat in range(repeats):
        bare = max(bare, one_run(False))
        instrumented = max(instrumented, one_run(
            True, dump_to=metrics_path if repeat == repeats - 1 else None))
    overhead_pct = max(0.0, 100.0 * (bare - instrumented) / bare)
    return {"observations_per_run": n_obs,
            "bare_obs_per_s": bare,
            "instrumented_obs_per_s": instrumented,
            "overhead_pct": overhead_pct,
            "metrics_jsonl": str(metrics_path)}


def main(argv=None) -> int:
    args = parse_args(argv)
    payload = {
        "meta": bench_metadata("runtime", args),
        "shard_scaling": run_shard_scaling(args),
        "latency": run_latency_under_refresh(args),
        "writeback": run_writeback_accounting(args),
        "batchplane": run_batch_throughput(args),
        "observability": run_observability_overhead(args),
        "quick": args.quick,
    }
    scaling = payload["shard_scaling"]
    latency = payload["latency"]
    rows = [[f"{n} shard(s)", f"{scaling[n]['throughput_obs_per_s']:.0f} obs/s"]
            for n in sorted(scaling)]
    rows.append(["p99 observe (no maintenance)",
                 f"{latency['baseline']['p99_ms']:.2f} ms"])
    rows.append(["p99 observe (refresh in background)",
                 f"{latency['under_refresh']['p99_ms']:.2f} ms"])
    rows.append(["mean background refresh",
                 f"{latency['under_refresh']['mean_refresh_ms']:.1f} ms"])
    rows.append(["full saves/tenant (full mode)",
                 f"{payload['writeback']['full_saves']['full_saves_per_tenant']:.1f}"])
    rows.append(["full saves/tenant (incremental)",
                 f"{payload['writeback']['incremental']['full_saves_per_tenant']:.1f}"])
    for label, arm in payload["batchplane"].items():
        rows.append([f"batch plane ({label})",
                     f"{arm['batch_obs_per_s']:.0f} obs/s vs "
                     f"{arm['scalar_obs_per_s']:.0f} scalar "
                     f"({arm['speedup']:.1f}x, identical="
                     f"{arm['decisions_identical']})"])
    obs = payload["observability"]
    rows.append(["observe throughput (bare)",
                 f"{obs['bare_obs_per_s']:.0f} obs/s"])
    rows.append(["observe throughput (instrumented)",
                 f"{obs['instrumented_obs_per_s']:.0f} obs/s"])
    rows.append(["observability overhead", f"{obs['overhead_pct']:.1f} %"])
    write_result("runtime", format_table(["metric", "value"], rows,
                                         title="ServingRuntime benchmark"))
    write_json_result("runtime", payload)
    (REPO_ROOT / "BENCH_runtime.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"payload written to {args.out}")

    # Invariants (loose enough for noisy CI boxes, tight enough to catch
    # a regression to inline refresh or broken sharding):
    for n in ("1", "2", "4"):
        assert scaling[n]["observations"] > 0
    under = latency["under_refresh"]
    assert under["refreshes"] > 0, "the background policy never fired"
    if under["mean_refresh_ms"] > 0:
        # Swap-on-commit: an observe must never wait out a whole rebuild.
        # Inline refresh would push p99 (and max) to ~mean_refresh_ms.
        assert under["p99_ms"] < max(0.6 * under["mean_refresh_ms"], 50.0), latency
    inc = payload["writeback"]["incremental"]
    full = payload["writeback"]["full_saves"]
    assert inc["streaming_delta_saves"] > 0
    assert inc["streaming_full_saves"] < full["streaming_full_saves"]
    # The batch plane's pinned claims: correctness is absolute (identical
    # decisions, fast path actually engaged); the throughput floor is
    # 10x on the pure scoring plane at full scale, relaxed to 3x at the
    # CI smoke scale where fixed costs dominate the short stream.
    plane = payload["batchplane"]
    for label, arm in plane.items():
        assert arm["decisions_identical"], \
            f"batch plane ({label}) diverged from the scalar loop: {arm}"
        assert arm["fastpath_engaged"] > 0, \
            f"batch plane ({label}) never engaged the fast path: {arm}"
    floor = 3.0 if args.quick else 10.0
    assert plane["scoring"]["speedup"] >= floor, \
        f"scoring-plane speedup {plane['scoring']['speedup']:.1f}x < {floor}x: {plane}"
    assert plane["self_update"]["speedup"] > 1.0, \
        f"self-update regime slower than scalar: {plane}"
    # The observability default must stay near-free on the hot path.
    assert obs["overhead_pct"] < 5.0, \
        f"observability overhead {obs['overhead_pct']:.1f}% >= 5% budget: {obs}"
    assert Path(obs["metrics_jsonl"]).is_file()
    return 0


if __name__ == "__main__":
    sys.exit(main())
