"""Table II — per-user GEM performance across the ten home worlds.

Paper: most F-scores above 0.95 across housing types from a 10 m² dorm
(20 MACs) to a 200 m² two-storey house (12 MACs).
"""

from bench_common import cached_user_dataset, run_arm, write_result

from repro.datasets.users import USER_SPECS
from repro.eval.reporting import format_table


def run_table2():
    rows = []
    for spec in USER_SPECS:
        data = cached_user_dataset(spec.user_id)
        metrics = run_arm("GEM", data, seed=spec.user_id).metrics
        rows.append((spec.user_id, metrics, data.num_macs_seen, spec.paper_macs, spec.area_m2))
    return rows


def test_table2_user_level(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    table_rows = []
    f_values = []
    for user, metrics, macs, paper_macs, area in rows:
        table_rows.append([str(user), f"{metrics.p_in:.2f}", f"{metrics.r_in:.2f}",
                           f"{metrics.f_in:.2f}", f"{metrics.p_out:.2f}",
                           f"{metrics.r_out:.2f}", f"{metrics.f_out:.2f}",
                           str(macs), str(paper_macs), f"{area:.0f}"])
        f_values += [metrics.f_in, metrics.f_out]
    write_result("table2_users",
                 format_table(["User", "Pin", "Rin", "Fin", "Pout", "Rout", "Fout",
                               "#MACs", "#MACs(paper)", "Area m2"],
                              table_rows, title="Table II (GEM per user)"))
    # Paper shape: GEM works across all housing types.
    assert min(f_values) > 0.75
    assert sum(f_values) / len(f_values) > 0.9
