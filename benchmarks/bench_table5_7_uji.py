"""Tables V–VII — UJI buildings 0–2, GEM vs SignatureHome vs INOA.

Paper protocol: per building, the middle floor is the geofence, half of
its records train the model, every other record of the building streams
as test data.  Paper shape: GEM ~0.91-0.95 F_in / ~0.98 F_out, both
baselines far behind (SignatureHome F_in 0.62-0.72, INOA 0.69-0.77).

Runs on the synthetic UJI-like corpus offline; point REPRO_UJI_CSV at a
real UJIIndoorLoc trainingData.csv to run on the actual dataset.
"""

import os

from bench_common import FULL, run_arm, write_result

from repro.datasets import GeofenceDataset, load_uji_csv, uji_building_split, uji_like_dataset
from repro.datasets.uji import uji_like_scenario
from repro.eval.reporting import format_table

ARMS = ["GEM", "SignatureHome", "INOA"]
BUILDINGS = [0, 1, 2]
RECORDS_PER_FLOOR = 400 if FULL else 240


def _dataset(building: int) -> GeofenceDataset:
    csv_path = os.environ.get("REPRO_UJI_CSV")
    if csv_path:
        rows = load_uji_csv(csv_path)
        train, test = uji_building_split(rows, building, seed=0)
        return GeofenceDataset(scenario=uji_like_scenario(building), train=train,
                               test=test, meta={"kind": "uji-real", "building": building})
    return uji_like_dataset(building, seed=0, records_per_floor=RECORDS_PER_FLOOR)


def run_uji():
    results = {}
    for building in BUILDINGS:
        data = _dataset(building)
        results[building] = {name: run_arm(name, data, seed=building).metrics
                             for name in ARMS}
    return results


def test_tables5_7_uji_buildings(benchmark):
    results = benchmark.pedantic(run_uji, rounds=1, iterations=1)
    lines = []
    for building, per_arm in results.items():
        rows = [[name, f"{m.p_in:.2f}", f"{m.r_in:.2f}", f"{m.f_in:.2f}",
                 f"{m.p_out:.2f}", f"{m.r_out:.2f}", f"{m.f_out:.2f}"]
                for name, m in per_arm.items()]
        lines.append(format_table(
            ["Algorithm", "Pin", "Rin", "Fin", "Pout", "Rout", "Fout"], rows,
            title=f"Table {'V VI VII'.split()[building]} (UJI building {building})"))
    write_result("table5_7_uji", "\n\n".join(lines))

    for building, per_arm in results.items():
        gem = per_arm["GEM"]
        # GEM beats both baselines on F_in in every building.
        assert gem.f_in > per_arm["SignatureHome"].f_in, f"building {building}"
        assert gem.f_in > per_arm["INOA"].f_in - 0.02, f"building {building}"
        assert gem.f_out > 0.85, f"building {building}"
