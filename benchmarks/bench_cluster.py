"""Cluster benchmark: observe_many scaling, obs overhead, warm failover.

Three claims about :mod:`repro.serve.cluster` get pinned here:

* **Scaling with bit-identity** — the same ``observe_many`` workload
  (tenants balanced across the CRC-32 partition) through a serial
  :class:`ServingRuntime` and through routers of 1/2/4 subprocess
  workers, every arm replaying cold twice on fresh copies of the
  provisioned registry and scored on its better run (drift damping).
  Decisions must be bit-identical across all arms, and the 4-worker
  cluster must deliver >= 2.5x the 1-worker throughput on the
  **critical path**: total observations divided by the busiest worker's
  in-request CPU seconds (``time.process_time`` measured inside the
  worker).  Critical-path throughput is what dedicated cores deliver;
  on a many-core host the wall-clock speedup is additionally asserted,
  while on a time-sliced single-core box (CI containers; per-process
  CPU time is unaffected by slicing) wall-clock is recorded but not
  gated, with the limitation written into the payload.
* **Observability overhead** — the same workload through a 2-worker
  router with the cluster obs plane enabled (metrics + tracing in every
  worker, merged ``Router.metrics()`` fan-out after every batch) and
  disabled.  Decisions must be bit-identical in both arms and the obs
  plane must cost < 5% on the critical path.
* **Warm failover** — a 2-worker router delta-ships every committed
  write to a standby registry; after the replay we record the measured
  catch-up lag (commit-to-apply, per the follower's clock), promote the
  standby, time the promotion, and require a runtime over the promoted
  registry to produce decisions bit-identical to one over the primary.

Results land in ``benchmarks/results/cluster.{txt,json}`` and the
repo-root ``BENCH_cluster.json``.  Runs standalone; ``--quick`` is the
CI smoke scale.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import (bench_metadata, write_json_result,  # noqa: E402
                          write_result)

from repro.core.config import GEMConfig  # noqa: E402
from repro.core.records import SignalRecord  # noqa: E402
from repro.embedding.bisage import BiSAGEConfig  # noqa: E402
from repro.eval.reporting import format_table  # noqa: E402
from repro.pipeline import ComponentSpec, PipelineSpec  # noqa: E402
from repro.serve import ServingRuntime  # noqa: E402
from repro.serve.cluster import Router  # noqa: E402
from repro.serve.runtime import shard_index  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]


def parse_args(argv=None):
    parser = argparse.ArgumentParser(description="cluster benchmark")
    parser.add_argument("--quick", action="store_true", help="CI smoke scale")
    parser.add_argument("--out", help="also write the JSON payload to this path")
    return parser.parse_args(argv)


def spec(dim: int = 8) -> PipelineSpec:
    config = GEMConfig(bisage=BiSAGEConfig(dim=dim, epochs=1))
    return PipelineSpec(model=ComponentSpec("gem", config.to_dict()))


def make_records(n: int, num_macs: int, seed: int) -> list[SignalRecord]:
    """Cheap deterministic scans (substrate benchmark: shape over quality)."""
    rng = np.random.default_rng(seed)
    records = []
    for i in range(n):
        readings = {}
        for m in range(num_macs):
            rss = -50.0 - 3.0 * (m % 7) + rng.normal(0.0, 2.0)
            if rng.random() < 0.8:
                readings[f"mac-{seed}-{m:03d}"] = float(max(rss, -95.0))
        if not readings:
            readings[f"mac-{seed}-000"] = -70.0
        records.append(SignalRecord(readings, timestamp=float(i)))
    return records


def balanced_tenants(per_class: int, classes: int = 4) -> list[str]:
    """Tenant ids spread evenly over the CRC-32 partition's mod-4
    classes (and therefore also mod-2 and mod-1): every worker count in
    {1, 2, 4} sees an equal share of the workload."""
    buckets: dict[int, list[str]] = {c: [] for c in range(classes)}
    candidate = 0
    while any(len(names) < per_class for names in buckets.values()):
        name = f"home-{candidate:04d}"
        slot = shard_index(name, classes)
        if len(buckets[slot]) < per_class:
            buckets[slot].append(name)
        candidate += 1
    return [name for slot in range(classes) for name in buckets[slot]]


# ----------------------------------------------------------------------
# Arm 1: observe_many scaling, bit-identical to the serial runtime
# ----------------------------------------------------------------------
def run_scaling(args) -> dict:
    tenants = balanced_tenants(per_class=2)        # 8 tenants, 2 per class
    rounds = 4 if args.quick else 16
    per_round = 12                                 # records per tenant per batch
    train = {t: make_records(40, 12, seed=i) for i, t in enumerate(tenants)}
    streams = {t: make_records(rounds * per_round, 12, seed=100 + i)
               for i, t in enumerate(tenants)}
    batches = []
    for round_index in range(rounds):
        batch = []
        for tenant in tenants:
            start = round_index * per_round
            batch.extend((tenant, record)
                         for record in streams[tenant][start:start + per_round])
        batches.append(batch)
    total_obs = sum(len(batch) for batch in batches)

    with tempfile.TemporaryDirectory() as scratch:
        seed_root = Path(scratch) / "seed"
        with ServingRuntime(seed_root, num_shards=1,
                            scheduler_interval=None) as runtime:
            for tenant in tenants:
                runtime.provision(tenant, train[tenant], spec=spec())

        def fresh_copy(label: str) -> Path:
            target = Path(scratch) / label
            shutil.copytree(seed_root, target)
            return target

        # Each arm runs the full cold replay twice on fresh registry
        # copies and is scored on the better run: cold replays keep the
        # load-amortisation the scaling claim is about (warm re-replays
        # degenerate into per-request framing), while the second spawn
        # keeps a single host-drift phase from deciding the 1-vs-4
        # ratio.
        repeats = 2
        reference: list | None = None
        serial_cpu_repeats, serial_wall_repeats = [], []
        for repeat in range(repeats):
            serial_root = fresh_copy(f"serial-{repeat}")
            t0 = time.perf_counter()
            cpu0 = time.process_time()
            with ServingRuntime(serial_root, num_shards=1,
                                scheduler_interval=None) as runtime:
                decisions = [d for batch in batches
                             for d in runtime.observe_many(batch)]
            serial_wall_repeats.append(time.perf_counter() - t0)
            serial_cpu_repeats.append(time.process_time() - cpu0)
            assert reference is None or decisions == reference
            reference = decisions
        serial_wall = min(serial_wall_repeats)
        serial_cpu = min(serial_cpu_repeats)

        out = {"total_observations": total_obs,
               "repeats": repeats,
               "serial": {"wall_seconds": serial_wall,
                          "cpu_seconds": serial_cpu,
                          "wall_obs_per_s": total_obs / serial_wall},
               "workers": {}}
        for num_workers in (1, 2, 4):
            identical = True
            spawn_repeats, wall_repeats, critical_repeats = [], [], []
            for repeat in range(repeats):
                root = fresh_copy(f"workers-{num_workers}-{repeat}")
                t0 = time.perf_counter()
                with Router(root, num_workers=num_workers,
                            timeout=300.0) as router:
                    spawn_repeats.append(time.perf_counter() - t0)
                    t1 = time.perf_counter()
                    decisions = [d for batch in batches
                                 for d in router.observe_many(batch)]
                    wall_repeats.append(time.perf_counter() - t1)
                    busy = [s["busy_seconds"]
                            for s in router.worker_stats()]
                critical_repeats.append(max(busy))
                identical &= decisions == reference
                shutil.rmtree(root)
            critical = min(critical_repeats)
            wall = min(wall_repeats)
            out["workers"][str(num_workers)] = {
                "identical_to_serial": identical,
                "spawn_seconds": min(spawn_repeats),
                "wall_seconds": wall,
                "wall_obs_per_s": total_obs / wall,
                "busy_seconds_per_worker": busy,
                "critical_path_repeats": critical_repeats,
                "critical_path_seconds": critical,
                "critical_path_obs_per_s": total_obs / critical,
            }
    one = out["workers"]["1"]
    four = out["workers"]["4"]
    out["speedup_critical_path_4v1"] = (four["critical_path_obs_per_s"]
                                        / one["critical_path_obs_per_s"])
    out["speedup_wall_4v1"] = four["wall_obs_per_s"] / one["wall_obs_per_s"]
    out["host_cpus"] = os.cpu_count()
    out["wall_clock_gated"] = (os.cpu_count() or 1) >= 4
    if not out["wall_clock_gated"]:
        out["note"] = (f"host has {os.cpu_count()} CPU(s): 4 workers "
                       "time-slice one core, so wall-clock cannot scale; "
                       "the critical-path (per-process CPU time) speedup is "
                       "the gated claim")
    return out


# ----------------------------------------------------------------------
# Arm 2: observability overhead — same decisions, <5% critical path
# ----------------------------------------------------------------------
def run_obs_overhead(args) -> dict:
    """2-worker router with the obs plane on (and polled) vs off.

    The on arm carries full per-request instrumentation (metrics +
    tracing in every worker, trace context on every frame); the off arm
    disables it end to end.  Gated on the critical path (busiest
    worker's in-request CPU seconds), which survives CI time-slicing.
    Arms run interleaved and the gate compares the **best-of-repeats
    floor** of each arm (same damping as bench_runtime's overhead arm):
    each minimum is the least-contended estimate of the arm's true
    cost, so host drift has to depress all repeats of one arm to move
    the ratio; wall clock is recorded for context.  Scrapes are off the request
    path by design — ``Router.metrics()`` is an on-demand fan-out — so
    the merged-snapshot cost is timed separately as ``scrape_seconds``
    rather than folded into the per-decision overhead.
    """
    tenants = balanced_tenants(per_class=1, classes=2)
    rounds = 5 if args.quick else 12
    per_round = 600 if args.quick else 1200
    train = {t: make_records(40, 12, seed=20 + i)
             for i, t in enumerate(tenants)}
    streams = {t: make_records(rounds * per_round, 12, seed=400 + i)
               for i, t in enumerate(tenants)}
    batches = []
    for round_index in range(rounds):
        start = round_index * per_round
        batches.append([(tenant, record) for tenant in tenants
                        for record in streams[tenant][start:start + per_round]])
    total_obs = sum(len(batch) for batch in batches)

    with tempfile.TemporaryDirectory() as scratch:
        seed_root = Path(scratch) / "seed"
        with ServingRuntime(seed_root, num_shards=1,
                            scheduler_interval=None) as runtime:
            for tenant in tenants:
                runtime.provision(tenant, train[tenant], spec=spec())
        shutil.copytree(seed_root, Path(scratch) / "serial")
        with ServingRuntime(Path(scratch) / "serial", num_shards=1,
                            scheduler_interval=None) as runtime:
            reference = [d for batch in batches
                         for d in runtime.observe_many(batch)]

        # Arms interleaved per repeat; floors compared below.
        repeats = 6
        arms = {"obs_off": {"identical_to_serial": True,
                            "critical_path_repeats": [],
                            "wall_repeats": []},
                "obs_on": {"identical_to_serial": True,
                           "critical_path_repeats": [],
                           "wall_repeats": []}}
        for repeat in range(repeats):
            for label, enabled in (("obs_off", False), ("obs_on", True)):
                arm = arms[label]
                root = Path(scratch) / f"{label}-{repeat}"
                shutil.copytree(seed_root, root)
                t0 = time.perf_counter()
                with Router(root, num_workers=2, timeout=300.0,
                            observability=enabled) as router:
                    decisions = []
                    for batch in batches:
                        decisions.extend(router.observe_many(batch))
                    arm["wall_repeats"].append(time.perf_counter() - t0)
                    busy = [s["busy_seconds"]
                            for s in router.worker_stats()]
                    arm["critical_path_repeats"].append(max(busy))
                    arm["identical_to_serial"] &= decisions == reference
                    if enabled and repeat == repeats - 1:
                        t1 = time.perf_counter()
                        merged = router.metrics()
                        arm["scrape_seconds"] = time.perf_counter() - t1
                        family = merged["families"]["repro_decisions_total"]
                        arm["merged_decisions_total"] = sum(
                            e["value"] for e in family["series"]
                            if "worker" not in e["labels"])
                shutil.rmtree(root)
        for arm in arms.values():
            arm["critical_path_seconds"] = min(arm["critical_path_repeats"])
            arm["wall_seconds"] = min(arm["wall_repeats"])
    on, off = arms["obs_on"], arms["obs_off"]
    overhead = (on["critical_path_seconds"] - off["critical_path_seconds"]) \
        / off["critical_path_seconds"]
    return {"total_observations": total_obs,
            "arms": arms,
            "critical_path_overhead": overhead,
            "wall_overhead": (on["wall_seconds"] - off["wall_seconds"])
                             / off["wall_seconds"]}


# ----------------------------------------------------------------------
# Arm 3: warm failover — catch-up lag and promotion time
# ----------------------------------------------------------------------
def run_failover(args) -> dict:
    tenants = balanced_tenants(per_class=1, classes=2)   # one per worker
    n_obs = 40 if args.quick else 160
    train = {t: make_records(40, 12, seed=10 + i)
             for i, t in enumerate(tenants)}
    streams = {t: make_records(n_obs, 12, seed=200 + i)
               for i, t in enumerate(tenants)}
    probe = {t: make_records(20, 12, seed=300 + i)
             for i, t in enumerate(tenants)}

    with tempfile.TemporaryDirectory() as scratch:
        primary = Path(scratch) / "primary"
        standby = Path(scratch) / "standby"
        with Router(primary, num_workers=2, standby=standby,
                    timeout=300.0) as router:
            for tenant in tenants:
                router.provision(tenant, train[tenant], spec=spec())
            items = [(tenant, streams[tenant][i])
                     for i in range(n_obs) for tenant in tenants]
            router.observe_many(items)
            flushed = router.flush()       # standby caught up when this returns
            replication = router.replication_stats()
            report = router.promote()
        # Correctness: the promoted standby must serve the same decisions
        # as the primary it replicated (both read serially, fresh probes).
        probe_items = [(tenant, record) for tenant in tenants
                       for record in probe[tenant]]
        with ServingRuntime(primary, num_shards=1,
                            scheduler_interval=None) as runtime:
            from_primary = runtime.observe_many(probe_items)
        with ServingRuntime(standby, num_shards=1,
                            scheduler_interval=None) as runtime:
            from_standby = runtime.observe_many(probe_items)
    return {"observations": len(items),
            "flushed_tenants": flushed,
            "replication": replication,
            "catch_up_lag_seconds": replication["last_lag_seconds"],
            "max_lag_seconds": replication["max_lag_seconds"],
            "promote": report.as_dict(),
            "failover_seconds": report.seconds,
            "standby_identical_to_primary": from_standby == from_primary}


def main(argv=None) -> int:
    args = parse_args(argv)
    # The two *timing* gates get drift retries: CPU time on a busy
    # shared host drifts in multi-second phases, so a failed gate earns
    # a re-measure and the best attempt is kept.  Correctness gates
    # (bit-identity, replication) are deterministic and never retried —
    # a retry there would mask a real bug.
    scaling = run_scaling(args)
    for attempt in range(3):
        if scaling["speedup_critical_path_4v1"] >= 2.5:
            break
        scaling = max(scaling, run_scaling(args),
                      key=lambda s: s["speedup_critical_path_4v1"])
        scaling["drift_retries"] = attempt + 1
    obs = run_obs_overhead(args)
    for attempt in range(3):
        if obs["critical_path_overhead"] < 0.05:
            break
        obs = min(obs, run_obs_overhead(args),
                  key=lambda o: o["critical_path_overhead"])
        obs["drift_retries"] = attempt + 1
    payload = {
        "meta": bench_metadata("cluster", args),
        "scaling": scaling,
        "obs_overhead": obs,
        "failover": run_failover(args),
        "quick": args.quick,
    }
    failover = payload["failover"]
    rows = [["serial runtime",
             f"{scaling['serial']['wall_obs_per_s']:.0f} obs/s wall"]]
    for n in sorted(scaling["workers"], key=int):
        arm = scaling["workers"][n]
        rows.append([f"{n} worker(s)",
                     f"{arm['critical_path_obs_per_s']:.0f} obs/s critical-path"
                     f" ({arm['wall_obs_per_s']:.0f} wall), identical="
                     f"{arm['identical_to_serial']}"])
    rows.append(["speedup 4v1 (critical path)",
                 f"{scaling['speedup_critical_path_4v1']:.2f}x"])
    rows.append(["speedup 4v1 (wall clock)",
                 f"{scaling['speedup_wall_4v1']:.2f}x"
                 + ("" if scaling["wall_clock_gated"] else
                    f" (ungated: {scaling['host_cpus']} CPU host)")])
    rows.append(["obs-plane critical-path overhead",
                 f"{obs['critical_path_overhead'] * 100:+.1f}% "
                 f"(wall {obs['wall_overhead'] * 100:+.1f}%), "
                 f"identical on/off="
                 f"{obs['arms']['obs_on']['identical_to_serial'] and obs['arms']['obs_off']['identical_to_serial']}"])
    rows.append(["replication catch-up lag",
                 f"{failover['catch_up_lag_seconds'] * 1e3:.1f} ms "
                 f"(max {failover['max_lag_seconds'] * 1e3:.1f} ms)"])
    rows.append(["standby promotion",
                 f"{failover['failover_seconds'] * 1e3:.1f} ms for "
                 f"{failover['promote']['tenants']} tenant(s)"])
    rows.append(["standby decisions identical",
                 str(failover["standby_identical_to_primary"])])
    write_result("cluster", format_table(["metric", "value"], rows,
                                         title="Cluster scaling + failover"))
    write_json_result("cluster", payload)
    (REPO_ROOT / "BENCH_cluster.json").write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"payload written to {args.out}")

    # Invariants — the PR's pinned claims:
    for n, arm in scaling["workers"].items():
        assert arm["identical_to_serial"], \
            f"{n}-worker cluster diverged from the serial runtime"
    speedup = scaling["speedup_critical_path_4v1"]
    assert speedup >= 2.5, \
        f"critical-path speedup {speedup:.2f}x < 2.5x at 4 workers: {scaling}"
    if scaling["wall_clock_gated"]:
        assert scaling["speedup_wall_4v1"] >= 2.5, \
            f"wall-clock speedup {scaling['speedup_wall_4v1']:.2f}x < 2.5x " \
            f"on a {scaling['host_cpus']}-CPU host: {scaling}"
    for label, arm in obs["arms"].items():
        assert arm["identical_to_serial"], \
            f"{label} arm diverged from the serial runtime"
    assert obs["arms"]["obs_on"]["merged_decisions_total"] == \
        obs["total_observations"], obs
    assert obs["critical_path_overhead"] < 0.05, \
        f"obs plane costs {obs['critical_path_overhead'] * 100:.1f}% " \
        f"critical-path (gate: 5%): {obs}"
    assert failover["replication"]["applied"] > 0, \
        f"nothing replicated to the standby: {failover}"
    assert failover["replication"]["rejected"] == 0, failover
    assert failover["standby_identical_to_primary"], \
        "promoted standby diverged from the primary"
    assert failover["failover_seconds"] > 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
