"""Fig. 8 — F-score vs training ratio (a) and update ratio (b).

Paper: performance grows with the fraction of the initial training set
used, but GEM already works at 10 % (<50 records); and streaming more
test data with the self-update on improves F over the stream.
"""

import numpy as np

from bench_common import cached_user_dataset, write_result

from repro.datasets import GeofenceDataset
from repro.eval import evaluate_streaming, make_algorithm
from repro.eval.metrics import metrics_from_pairs
from repro.eval.reporting import format_series

RATIOS = [0.1, 0.25, 0.5, 0.75, 1.0]


def run_training_ratio(user: int = 3):
    data = cached_user_dataset(user)
    series = []
    for ratio in RATIOS:
        n = max(5, int(len(data.train) * ratio))
        sliced = GeofenceDataset(scenario=data.scenario, train=data.train[:n],
                                 test=data.test, meta=dict(data.meta))
        result = evaluate_streaming(make_algorithm("GEM", seed=user), sliced)
        series.append((ratio, result.metrics.f_in, result.metrics.f_out))
    return series


def run_update_ratio(user: int = 3, steps: int = 10):
    """Cumulative F over ten equal slices of the streamed test data."""
    data = cached_user_dataset(user)
    model = make_algorithm("GEM", seed=user)
    model.fit(data.train)
    pairs = []
    series = []
    chunk = max(1, len(data.test) // steps)
    for step in range(steps):
        for item in data.test[step * chunk:(step + 1) * chunk]:
            decision = model.observe(item.record)
            pairs.append((item.inside, decision.inside))
        metrics = metrics_from_pairs(pairs)
        series.append(((step + 1) / steps, metrics.f_in, metrics.f_out))
    return series


def test_fig8a_training_ratio(benchmark):
    series = benchmark.pedantic(run_training_ratio, rounds=1, iterations=1)
    ratios = [s[0] for s in series]
    f_in = [s[1] for s in series]
    f_out = [s[2] for s in series]
    write_result("fig8a_training_ratio",
                 format_series("Fin", ratios, f_in) + "\n" + format_series("Fout", ratios, f_out))
    # Workable already at 10% of training data, and full data not worse.
    assert f_in[0] > 0.5 and f_out[0] > 0.5
    assert f_out[-1] >= f_out[0] - 0.05


def test_fig8b_update_ratio(benchmark):
    series = benchmark.pedantic(run_update_ratio, rounds=1, iterations=1)
    xs = [s[0] for s in series]
    f_in = [s[1] for s in series]
    f_out = [s[2] for s in series]
    write_result("fig8b_update_ratio",
                 format_series("Fin", xs, f_in) + "\n" + format_series("Fout", xs, f_out))
    # Self-enhancement: late-stream cumulative F at least holds its level.
    assert np.mean(f_out[-3:]) >= f_out[0] - 0.10
