"""Shared helpers for the reproduction benchmarks.

Each ``bench_*.py`` regenerates one table or figure of the paper at
laptop scale: the dataset sizes are reduced from the paper's multi-hour
campaigns, so *absolute* numbers differ while the comparisons (who wins,
roughly by how much, where the knees are) are the reproduction target.

Every benchmark writes its result table to ``benchmarks/results/`` so
the numbers survive pytest's stdout capture.
"""

from __future__ import annotations

import functools
import os
import platform
import sys
import time
from pathlib import Path

from repro.datasets import generate_dataset, user_dataset
from repro.eval import arm_accepts, evaluate_streaming, make_algorithm

RESULTS_DIR = Path(__file__).parent / "results"

# Version of the shared metadata block benchmarks embed in their JSON
# payloads (``bench_metadata``); bump on incompatible shape changes.
BENCH_META_SCHEMA = 1

# REPRO_BENCH_FULL=1 runs the full 10-user / full-sweep versions.
FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

BENCH_USERS = list(range(1, 11)) if FULL else [1, 3, 6, 10]
TEST_SESSIONS = 6
SESSION_S = 80.0


def churn_shock_schedules(scenario, shock_epoch: int, fraction: float,
                          churn: float = 0.04) -> list:
    """The canonical churn-shock drift workload over ``scenario``.

    Shared between ``bench_drift.py`` (the headline coordinated-refresh
    comparison) and ``bench_fleet_drift.py``'s admission / worst-case
    arms so the two benches keep measuring the *same* world: gradual AP
    churn + TX-power and device-gain drift, with a one-shot replacement
    of ``fraction`` of the ambient APs at ``shock_epoch``.  The home's
    own APs are protected throughout.
    """
    from repro.rf.dynamics import (APChurn, ChurnShock, DeviceGainDrift,
                                   TxPowerDrift, home_ap_ids)
    protect = home_ap_ids(scenario)
    return [APChurn(rate=churn, protect=protect), TxPowerDrift(),
            DeviceGainDrift(),
            ChurnShock(epoch=shock_epoch, fraction=fraction, protect=protect)]


def bench_metadata(bench: str, args=None) -> dict:
    """Shared metadata block for benchmark JSON payloads.

    Every machine-readable result embeds the same ``meta`` shape —
    schema version, which bench produced it with which arguments, and
    enough host context to judge whether two recorded runs are
    comparable at all (absolute numbers off a laptop and a CI box are
    not).  ``args`` is an ``argparse.Namespace`` (or mapping) whose
    values are recorded verbatim when JSON-representable.
    """
    if args is None:
        arg_items = {}
    else:
        arg_items = dict(args) if isinstance(args, dict) else vars(args)
    recorded = {key: value for key, value in sorted(arg_items.items())
                if isinstance(value, (bool, int, float, str)) or value is None}
    return {
        "schema_version": BENCH_META_SCHEMA,
        "bench": bench,
        "args": recorded,
        "full": FULL,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "cpus": os.cpu_count(),
        },
    }


def write_result(name: str, text: str) -> None:
    """Persist one benchmark's table; also echo to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(text)


def write_json_result(name: str, payload) -> None:
    """Persist one benchmark's machine-readable result as JSON.

    Human tables (``write_result``) are for eyeballs; dashboards and
    regression tooling read ``benchmarks/results/<name>.json``.
    """
    import json
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")


@functools.lru_cache(maxsize=None)
def cached_user_dataset(user_id: int):
    """User dataset with the bench-scale stream (cached across benches)."""
    return user_dataset(user_id, test_sessions=TEST_SESSIONS,
                        session_duration_s=SESSION_S)


def run_arm(name: str, dataset, seed: int = 0):
    """Fit + stream one algorithm arm; returns the EvaluationResult.

    Seed-less arms (SignatureHome, INOA, ...) get the default seed so a
    per-user sweep does not trip the inapplicable-parameter warning.
    """
    model = make_algorithm(name, seed=seed if arm_accepts(name, "seed") else 0)
    return evaluate_streaming(model, dataset)
