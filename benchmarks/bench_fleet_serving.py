"""Fleet serving — multi-tenant throughput and checkpoint latency.

Not a paper figure: this benchmarks the ``repro.serve`` subsystem the
ROADMAP's production north-star rests on.  Reported shapes to watch:

* throughput (records/s) with every tenant resident vs. an LRU budget
  of half the tenants (eviction churn pays a load+save per miss);
* the same comparison for a **mixed-arm** fleet (GEM next to
  BiSAGE+LOF next to GEM(no-BiSAGE)), so the cost of the registry
  indirection and heterogeneous checkpoints is measured, not assumed;
* checkpoint save/load latency, which bounds how fast a cold tenant
  can come online and how expensive write-back eviction is.

Each table also lands as machine-readable JSON under
``benchmarks/results/*.json`` for regression tooling.
"""

import time
import warnings

import numpy as np

from bench_common import FULL, write_json_result, write_result

from repro.core.config import GEMConfig
from repro.core.gem import GEM
from repro.core.records import SignalRecord
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.algorithms import arm_spec
from repro.eval.reporting import format_table
from repro.serve import GeofenceFleet, ModelRegistry, load_checkpoint, save_checkpoint

TENANT_COUNTS = [4, 8, 16] if FULL else [3, 6]
TRAIN_RECORDS = 40
STREAM_PER_TENANT = 40 if FULL else 25
SERVE_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=16, epochs=2, seed=0))
# Mixed-arm fleet: tenants cycle through these paper arms.
MIXED_ARMS = ("GEM", "BiSAGE+LOF", "GEM(no-BiSAGE)")


def tenant_world(tenant: int, n: int, seed_offset: int = 0) -> list[SignalRecord]:
    """Cheap per-tenant RF world: RSS pattern centred on the tenant id."""
    rng = np.random.default_rng(1000 * tenant + seed_offset)
    records = []
    for i in range(n):
        readings = {}
        for m in range(12):
            rss = -45.0 - 5.0 * abs(m - (2.0 + tenant % 5)) + rng.normal(0, 1.5)
            if rss > -95 and rng.random() < 0.9:
                readings[f"t{tenant % 5}:mac{m:02d}"] = float(rss)
        if not readings:
            readings[f"t{tenant % 5}:mac00"] = -80.0
        records.append(SignalRecord(readings, timestamp=float(i)))
    return records


def make_model() -> GEM:
    return GEM(SERVE_CONFIG)


def mixed_spec(tenant: int):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", UserWarning)
        return arm_spec(MIXED_ARMS[tenant % len(MIXED_ARMS)], seed=0, dim=16,
                        gem_config=SERVE_CONFIG, strict=False)


def provision_fleet(root, num_tenants: int, capacity: int,
                    mixed: bool = False) -> GeofenceFleet:
    fleet = GeofenceFleet(ModelRegistry(root), capacity=capacity,
                          model_factory=make_model)
    for t in range(num_tenants):
        fleet.provision(f"tenant-{t:03d}", tenant_world(t, TRAIN_RECORDS),
                        spec=mixed_spec(t) if mixed else None)
    return fleet


def interleaved_stream(num_tenants: int):
    items = []
    for i in range(STREAM_PER_TENANT):
        for t in range(num_tenants):
            record = tenant_world(t, 1, seed_offset=10_000 + i)[0]
            items.append((f"tenant-{t:03d}", record))
    return items


def run_throughput(tmp_root, mixed: bool = False):
    rows = []
    flavor = "mixed" if mixed else "gem"
    for num_tenants in TENANT_COUNTS:
        for label, capacity in (("all resident", num_tenants),
                                ("half resident", max(1, num_tenants // 2))):
            fleet = provision_fleet(tmp_root / f"{flavor}-{num_tenants}-{capacity}",
                                    num_tenants, capacity, mixed=mixed)
            items = interleaved_stream(num_tenants)
            start = time.perf_counter()
            fleet.observe_many(items)
            elapsed = time.perf_counter() - start
            totals = fleet.telemetry.totals()
            rows.append((num_tenants, capacity, label, len(items) / elapsed,
                         totals.loads, totals.evictions))
            fleet.close()
    return rows


def run_checkpoint_latency(tmp_root, rounds: int = 5):
    model = make_model().fit(tenant_world(0, TRAIN_RECORDS))
    path = tmp_root / "latency"
    save_ms, load_ms = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        save_checkpoint(model, path)
        save_ms.append(1e3 * (time.perf_counter() - start))
        start = time.perf_counter()
        load_checkpoint(path)
        load_ms.append(1e3 * (time.perf_counter() - start))
    return float(np.median(save_ms)), float(np.median(load_ms))


def emit_throughput(name: str, title: str, rows) -> None:
    table = [[str(t), str(c), label, f"{rps:.0f}", str(loads), str(evictions)]
             for t, c, label, rps, loads, evictions in rows]
    write_result(name,
                 format_table(["tenants", "capacity", "mode", "records/s",
                               "loads", "evictions"],
                              table, title=title))
    write_json_result(name, [
        {"tenants": t, "capacity": c, "mode": label, "records_per_s": rps,
         "loads": loads, "evictions": evictions}
        for t, c, label, rps, loads, evictions in rows
    ])


def check_throughput(rows) -> None:
    # Churn must cost throughput but never correctness; resident serving
    # must not page models at all.
    by_mode = {(t, label): rps for t, _, label, rps, _, _ in rows}
    for num_tenants in TENANT_COUNTS:
        assert by_mode[(num_tenants, "all resident")] > 0
        assert by_mode[(num_tenants, "half resident")] > 0
    resident_loads = [loads for _, c, label, _, loads, _ in rows if label == "all resident"]
    assert all(loads == 0 for loads in resident_loads)


def test_fleet_throughput(benchmark, tmp_path):
    rows = benchmark.pedantic(run_throughput, args=(tmp_path,), rounds=1, iterations=1)
    emit_throughput("fleet_throughput", "Fleet serving throughput (all GEM)", rows)
    check_throughput(rows)


def test_fleet_throughput_mixed_arms(benchmark, tmp_path):
    rows = benchmark.pedantic(run_throughput, args=(tmp_path,),
                              kwargs={"mixed": True}, rounds=1, iterations=1)
    emit_throughput("fleet_throughput_mixed",
                    f"Fleet serving throughput (mixed arms: {', '.join(MIXED_ARMS)})",
                    rows)
    check_throughput(rows)


def test_checkpoint_latency(benchmark, tmp_path):
    save_ms, load_ms = benchmark.pedantic(run_checkpoint_latency, args=(tmp_path,),
                                          rounds=1, iterations=1)
    write_result("fleet_checkpoint_latency",
                 format_table(["operation", "median ms"],
                              [["save", f"{save_ms:.1f}"], ["load", f"{load_ms:.1f}"]],
                              title="Checkpoint save/load latency"))
    write_json_result("fleet_checkpoint_latency",
                      {"save_median_ms": save_ms, "load_median_ms": load_ms})
    assert save_ms > 0 and load_ms > 0
