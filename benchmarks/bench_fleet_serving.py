"""Fleet serving — multi-tenant throughput and checkpoint latency.

Not a paper figure: this benchmarks the ``repro.serve`` subsystem the
ROADMAP's production north-star rests on.  Reported shapes to watch:

* throughput (records/s) with every tenant resident vs. an LRU budget
  of half the tenants (eviction churn pays a load+save per miss);
* checkpoint save/load latency, which bounds how fast a cold tenant
  can come online and how expensive write-back eviction is.
"""

import time

import numpy as np

from bench_common import FULL, write_result

from repro.core.config import GEMConfig
from repro.core.gem import GEM
from repro.core.records import SignalRecord
from repro.embedding.bisage import BiSAGEConfig
from repro.eval.reporting import format_table
from repro.serve import GeofenceFleet, ModelRegistry, load_checkpoint, save_checkpoint

TENANT_COUNTS = [4, 8, 16] if FULL else [3, 6]
TRAIN_RECORDS = 40
STREAM_PER_TENANT = 40 if FULL else 25
SERVE_CONFIG = GEMConfig(bisage=BiSAGEConfig(dim=16, epochs=2, seed=0))


def tenant_world(tenant: int, n: int, seed_offset: int = 0) -> list[SignalRecord]:
    """Cheap per-tenant RF world: RSS pattern centred on the tenant id."""
    rng = np.random.default_rng(1000 * tenant + seed_offset)
    records = []
    for i in range(n):
        readings = {}
        for m in range(12):
            rss = -45.0 - 5.0 * abs(m - (2.0 + tenant % 5)) + rng.normal(0, 1.5)
            if rss > -95 and rng.random() < 0.9:
                readings[f"t{tenant % 5}:mac{m:02d}"] = float(rss)
        if not readings:
            readings[f"t{tenant % 5}:mac00"] = -80.0
        records.append(SignalRecord(readings, timestamp=float(i)))
    return records


def make_model() -> GEM:
    return GEM(SERVE_CONFIG)


def provision_fleet(root, num_tenants: int, capacity: int) -> GeofenceFleet:
    fleet = GeofenceFleet(ModelRegistry(root), capacity=capacity,
                          model_factory=make_model)
    for t in range(num_tenants):
        fleet.provision(f"tenant-{t:03d}", tenant_world(t, TRAIN_RECORDS))
    return fleet


def interleaved_stream(num_tenants: int):
    items = []
    for i in range(STREAM_PER_TENANT):
        for t in range(num_tenants):
            record = tenant_world(t, 1, seed_offset=10_000 + i)[0]
            items.append((f"tenant-{t:03d}", record))
    return items


def run_throughput(tmp_root):
    rows = []
    for num_tenants in TENANT_COUNTS:
        for label, capacity in (("all resident", num_tenants),
                                ("half resident", max(1, num_tenants // 2))):
            fleet = provision_fleet(tmp_root / f"{num_tenants}-{capacity}",
                                    num_tenants, capacity)
            items = interleaved_stream(num_tenants)
            start = time.perf_counter()
            fleet.observe_many(items)
            elapsed = time.perf_counter() - start
            totals = fleet.telemetry.totals()
            rows.append((num_tenants, capacity, label, len(items) / elapsed,
                         totals.loads, totals.evictions))
            fleet.close()
    return rows


def run_checkpoint_latency(tmp_root, rounds: int = 5):
    model = make_model().fit(tenant_world(0, TRAIN_RECORDS))
    path = tmp_root / "latency"
    save_ms, load_ms = [], []
    for _ in range(rounds):
        start = time.perf_counter()
        save_checkpoint(model, path)
        save_ms.append(1e3 * (time.perf_counter() - start))
        start = time.perf_counter()
        load_checkpoint(path)
        load_ms.append(1e3 * (time.perf_counter() - start))
    return float(np.median(save_ms)), float(np.median(load_ms))


def test_fleet_throughput(benchmark, tmp_path):
    rows = benchmark.pedantic(run_throughput, args=(tmp_path,), rounds=1, iterations=1)
    table = [[str(t), str(c), label, f"{rps:.0f}", str(loads), str(evictions)]
             for t, c, label, rps, loads, evictions in rows]
    write_result("fleet_throughput",
                 format_table(["tenants", "capacity", "mode", "records/s",
                               "loads", "evictions"],
                              table, title="Fleet serving throughput"))
    # Churn must cost throughput but never correctness; resident serving
    # must not page models at all.
    by_mode = {(t, label): rps for t, _, label, rps, _, _ in rows}
    for num_tenants in TENANT_COUNTS:
        assert by_mode[(num_tenants, "all resident")] > 0
        assert by_mode[(num_tenants, "half resident")] > 0
    resident_loads = [loads for _, c, label, _, loads, _ in rows if label == "all resident"]
    assert all(loads == 0 for loads in resident_loads)


def test_checkpoint_latency(benchmark, tmp_path):
    save_ms, load_ms = benchmark.pedantic(run_checkpoint_latency, args=(tmp_path,),
                                          rounds=1, iterations=1)
    write_result("fleet_checkpoint_latency",
                 format_table(["operation", "median ms"],
                              [["save", f"{save_ms:.1f}"], ["load", f"{load_ms:.1f}"]],
                              title="Checkpoint save/load latency"))
    assert save_ms > 0 and load_ms > 0
