"""Design-choice ablations beyond the paper's own figures (DESIGN.md §5).

Probes each BiSAGE/OD design decision in isolation on one home world:

* weighted vs uniform neighbour sampling and random walks;
* degree^{3/4} vs uniform negative sampling;
* bi-level (primary/auxiliary) aggregation vs homogeneous GraphSAGE;
* online self-update on vs off.
"""

from dataclasses import replace

from bench_common import cached_user_dataset, write_result

from repro.core.config import GEMConfig
from repro.core.gem import GEM
from repro.eval import evaluate_streaming, make_algorithm
from repro.eval.reporting import format_table


def _gem_with(config: GEMConfig, user: int = 6):
    result = evaluate_streaming(GEM(config), cached_user_dataset(user))
    return result.metrics


def run_ablations():
    base = GEMConfig()
    rows = {}
    rows["GEM (full)"] = _gem_with(base)
    rows["uniform negative sampling"] = _gem_with(
        replace(base, bisage=replace(base.bisage, negative_power=0.0)))
    rows["no self-update"] = _gem_with(replace(base, self_update=False))
    rows["single aggregation layer (K=1)"] = _gem_with(
        replace(base, bisage=replace(base.bisage, num_layers=1)))
    rows["full-neighbourhood aggregation"] = _gem_with(
        replace(base, bisage=replace(base.bisage, sample_size=None)))
    result = evaluate_streaming(make_algorithm("GraphSAGE+OD", seed=0),
                                cached_user_dataset(6))
    rows["homogeneous aggregation (GraphSAGE)"] = result.metrics
    return rows


def test_design_ablations(benchmark):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    table = [[name, f"{m.f_in:.3f}", f"{m.f_out:.3f}"] for name, m in rows.items()]
    write_result("ablations",
                 format_table(["Variant", "Fin", "Fout"], table,
                              title="Design-choice ablations (user 6)"))
    full = rows["GEM (full)"]
    # The full configuration is competitive with every ablation.
    for name, metrics in rows.items():
        assert full.f_out >= metrics.f_out - 0.1, name
