"""Declarative pipeline specifications with a JSON round trip.

A :class:`PipelineSpec` names *what* to build — either one standalone
model, or an embedder x detector composition plus the pipeline-level
self-update knobs — without constructing anything.  Specs are frozen,
JSON-serialisable (``to_dict``/``from_dict``, ``to_json``/``from_json``)
and validate against the component registry with actionable errors, so
an arm of the paper's evaluation, a checkpoint on disk and a tenant in a
serving fleet all share one portable description.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.pipeline.registry import ComponentEntry, get_component

__all__ = ["SPEC_VERSION", "ComponentSpec", "DriftSpec", "PipelineSpec"]

SPEC_VERSION = 1


def _json_ready(value: Any, context: str) -> Any:
    """Deep-normalise ``value`` into plain JSON types (tuples -> lists).

    Normalising at construction time makes spec equality agree with a
    JSON round trip: ``from_dict(json.loads(json.dumps(s.to_dict())))``
    compares equal to ``s``.
    """
    if isinstance(value, Mapping):
        return {str(k): _json_ready(v, context) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_ready(v, context) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, (int, float)):
        return value
    if hasattr(value, "item") and callable(value.item):  # numpy scalars
        return _json_ready(value.item(), context)
    raise TypeError(f"{context}: value of type {type(value).__name__} is not JSON-safe")


@dataclass(frozen=True)
class ComponentSpec:
    """One named component plus its (partial) parameters.

    Parameters omitted here fall back to the component's defaults at
    build time; parameter *names* are validated against the registry
    entry so nothing is silently dropped.
    """

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"component name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "params",
                           _json_ready(dict(self.params), f"component {self.name!r} params"))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": self.params}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ComponentSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"component spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"name", "params"}
        if unknown:
            raise ValueError(f"component spec has unknown keys {sorted(unknown)}; "
                             "expected only 'name' and 'params'")
        if "name" not in data:
            raise ValueError("component spec is missing its 'name'")
        return cls(name=data["name"], params=dict(data.get("params") or {}))

    def resolve(self, kind: str) -> ComponentEntry:
        """Validate against the registry; returns the matching entry.

        Raises :class:`~repro.pipeline.registry.UnknownComponentError`
        for unknown names (listing the known ones) and ``ValueError``
        for parameters outside the entry's accepted set.
        """
        entry = get_component(kind, self.name)
        unknown = set(self.params) - set(entry.params)
        if unknown:
            raise ValueError(
                f"{kind} {self.name!r} does not accept parameter(s) "
                f"{', '.join(sorted(repr(p) for p in unknown))}; accepted parameters: "
                f"{', '.join(sorted(entry.params))}")
        return entry


@dataclass(frozen=True)
class DriftSpec:
    """Declarative temporal-dynamics workload attached to a pipeline spec.

    Each schedule entry names a registered world-mutation schedule from
    :data:`repro.rf.dynamics.SCHEDULES` (``ap-churn``, ``churn-shock``,
    ``tx-power-drift``, ``mac-randomization``, ``transient-hotspots``,
    ``device-gain-drift``) with its parameters.  A drift block describes
    the *evaluation world's* evolution, not the model — building the
    pipeline ignores it; the drift harness and ``python -m repro drift``
    consume it via :meth:`build_timeline`.
    """

    num_epochs: int = 8
    seed: int = 0
    schedules: tuple = ()

    def __post_init__(self):
        if isinstance(self.num_epochs, bool) or not isinstance(self.num_epochs, int):
            raise ValueError(f"num_epochs must be an integer, got {self.num_epochs!r}")
        if self.num_epochs < 1:
            raise ValueError(f"num_epochs must be >= 1, got {self.num_epochs}")
        if isinstance(self.seed, bool) or not isinstance(self.seed, int):
            raise ValueError(f"seed must be an integer, got {self.seed!r}")
        schedules = tuple(
            entry if isinstance(entry, ComponentSpec) else ComponentSpec.from_dict(entry)
            for entry in self.schedules)
        object.__setattr__(self, "schedules", schedules)

    def validate(self) -> "DriftSpec":
        """Check every schedule name and parameter set; returns self."""
        self.build_schedules()
        return self

    def build_schedules(self) -> list:
        from repro.rf.dynamics import build_schedule
        return [build_schedule(entry.name, entry.params) for entry in self.schedules]

    def build_timeline(self, scenario):
        """The :class:`~repro.rf.dynamics.DynamicsTimeline` this block describes."""
        from repro.rf.dynamics import DynamicsTimeline
        return DynamicsTimeline(scenario, self.build_schedules(),
                                num_epochs=self.num_epochs, seed=self.seed)

    def to_dict(self) -> dict:
        return {"num_epochs": self.num_epochs, "seed": self.seed,
                "schedules": [entry.to_dict() for entry in self.schedules]}

    @classmethod
    def from_dict(cls, data: Mapping) -> "DriftSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"drift spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"num_epochs", "seed", "schedules"}
        if unknown:
            raise ValueError(f"drift spec has unknown keys {sorted(unknown)}")
        return cls(num_epochs=data.get("num_epochs", 8), seed=data.get("seed", 0),
                   schedules=tuple(data.get("schedules") or ()))


@dataclass(frozen=True)
class PipelineSpec:
    """Declarative description of one geofencing pipeline.

    Exactly one of two shapes:

    * ``model=ComponentSpec(...)`` — a standalone registered model
      (``gem``, ``signature-home``, ``inoa``);
    * ``embedder=... detector=...`` — an
      :class:`~repro.core.gem.EmbeddingGeofencer` composition, with
      ``self_update``/``batch_update_size`` steering Algorithm 2's
      online model update.

    Either shape may carry an optional ``drift`` block — a declarative
    temporal-dynamics workload (:class:`DriftSpec`) for the drift
    evaluation harness — and an optional ``maintenance`` block — a
    :class:`~repro.serve.policy.MaintenancePolicy` telling a fleet
    controller when to run coordinated refresh / re-provision / flush
    for tenants built from this spec.  Neither block affects what
    ``build_pipeline`` constructs.
    """

    embedder: ComponentSpec | None = None
    detector: ComponentSpec | None = None
    model: ComponentSpec | None = None
    self_update: bool = True
    batch_update_size: int = 1
    drift: DriftSpec | None = None
    maintenance: object | None = None

    def __post_init__(self):
        if self.drift is not None and not isinstance(self.drift, DriftSpec):
            object.__setattr__(self, "drift", DriftSpec.from_dict(self.drift))
        if self.maintenance is not None:
            # Imported lazily: repro.serve imports repro.pipeline at module
            # load, so the reverse import must happen at call time.
            from repro.serve.policy import MaintenancePolicy
            if not isinstance(self.maintenance, MaintenancePolicy):
                object.__setattr__(self, "maintenance",
                                   MaintenancePolicy.from_dict(self.maintenance))
        if self.model is not None:
            if self.embedder is not None or self.detector is not None:
                raise ValueError("a model spec cannot also name an embedder/detector; "
                                 "use either model=... or embedder=... detector=...")
            if self.self_update is not True or self.batch_update_size != 1:
                raise ValueError(
                    "self_update/batch_update_size do not apply to model specs "
                    "(the model bundles its own update behaviour); configure them "
                    "in the model's params instead, e.g. "
                    "ComponentSpec('gem', {'self_update': False})")
        elif self.embedder is None or self.detector is None:
            raise ValueError("a pipeline spec needs either model=... or BOTH "
                             "embedder=... and detector=...")
        if self.batch_update_size < 1:
            raise ValueError("batch_update_size must be >= 1")

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> "PipelineSpec":
        """Check every named component and parameter against the registry.

        Also rejects ``self_update=True`` over a detector without an
        online-update capability — the update would otherwise be
        silently skipped at serving time.
        """
        if self.drift is not None:
            self.drift.validate()
        wants_refresh = self.maintenance is not None and self.maintenance.wants_refresh()
        if self.model is not None:
            entry = self.model.resolve("model")
            if wants_refresh and not entry.supports_refresh:
                raise ValueError(
                    f"the maintenance policy can demand a coordinated refresh but "
                    f"model {self.model.name!r} is not refresh-capable; drop the "
                    "refresh clauses or pick a refresh-capable model (e.g. 'gem')")
            return self
        embedder_entry = self.embedder.resolve("embedder")
        detector_entry = self.detector.resolve("detector")
        if self.self_update and not detector_entry.supports_update:
            raise ValueError(
                f"self_update=True but detector {self.detector.name!r} has no online "
                "update; set self_update=False or choose an updatable detector "
                "(e.g. 'histogram')")
        if wants_refresh and not (embedder_entry.supports_refresh
                                  and detector_entry.supports_refresh):
            culprit = (("embedder", self.embedder.name)
                       if not embedder_entry.supports_refresh
                       else ("detector", self.detector.name))
            raise ValueError(
                f"the maintenance policy can demand a coordinated refresh but "
                f"{culprit[0]} {culprit[1]!r} is not refresh-capable; drop the "
                "refresh clauses or pick refresh-capable components "
                "(e.g. embedder 'bisage', detector 'histogram')")
        return self

    def supports_refresh(self) -> bool:
        """True when pipelines built from this spec can run a coordinated
        refresh (embedder with ``refresh_cache`` + detector with
        ``refit``, or a refresh-capable standalone model)."""
        if self.model is not None:
            return self.model.resolve("model").supports_refresh
        return (self.embedder.resolve("embedder").supports_refresh
                and self.detector.resolve("detector").supports_refresh)

    def require_state_dict(self) -> "PipelineSpec":
        """Reject specs naming any component registered as non-persistable.

        The serving layer calls this *before* fitting/saving, so a
        tenant never pays a full ``fit`` only to fail at checkpoint
        time.
        """
        self.validate()
        components = ((("model", self.model),) if self.model is not None
                      else (("embedder", self.embedder), ("detector", self.detector)))
        for kind, component in components:
            if not component.resolve(kind).supports_state_dict:
                raise ValueError(
                    f"{kind} {component.name!r} is registered with "
                    "supports_state_dict=False, so this pipeline cannot be "
                    "checkpointed or served from a registry")
        return self

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {"spec_version": SPEC_VERSION}
        if self.model is not None:
            out["model"] = self.model.to_dict()
        else:
            out["embedder"] = self.embedder.to_dict()
            out["detector"] = self.detector.to_dict()
            out["self_update"] = self.self_update
            out["batch_update_size"] = self.batch_update_size
        if self.drift is not None:
            out["drift"] = self.drift.to_dict()
        if self.maintenance is not None:
            out["maintenance"] = self.maintenance.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "PipelineSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"pipeline spec must be a mapping, got {type(data).__name__}")
        data = dict(data)
        version = data.pop("spec_version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"pipeline spec version {version!r} is not supported "
                             f"(this build reads version {SPEC_VERSION})")
        unknown = set(data) - {"embedder", "detector", "model",
                               "self_update", "batch_update_size", "drift",
                               "maintenance"}
        if unknown:
            raise ValueError(f"pipeline spec has unknown keys {sorted(unknown)}")
        kwargs: dict = {}
        for key in ("embedder", "detector", "model"):
            if data.get(key) is not None:
                kwargs[key] = ComponentSpec.from_dict(data[key])
        if data.get("drift") is not None:
            kwargs["drift"] = DriftSpec.from_dict(data["drift"])
        if data.get("maintenance") is not None:
            from repro.serve.policy import MaintenancePolicy
            kwargs["maintenance"] = MaintenancePolicy.from_dict(data["maintenance"])
        if "self_update" in data:
            # No bool() coercion: a hand-edited "false" string would
            # silently flip self-update ON, drifting every decision.
            if not isinstance(data["self_update"], bool):
                raise ValueError(f"self_update must be a JSON boolean, "
                                 f"got {data['self_update']!r}")
            kwargs["self_update"] = data["self_update"]
        if "batch_update_size" in data:
            size = data["batch_update_size"]
            if isinstance(size, bool) or not isinstance(size, int):
                raise ValueError(f"batch_update_size must be a JSON integer, got {size!r}")
            kwargs["batch_update_size"] = size
        return cls(**kwargs)

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """One-line human summary ("bisage + lof" / "model gem")."""
        if self.model is not None:
            return f"model {self.model.name}"
        update = f", self_update x{self.batch_update_size}" if self.self_update else ""
        return f"{self.embedder.name} + {self.detector.name}{update}"
