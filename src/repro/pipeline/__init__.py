"""Declarative pipeline composition: registry + spec + builder.

Any embedder x detector arm of the paper's evaluation — and any
standalone baseline — is described by a JSON-serialisable
:class:`PipelineSpec`, validated against the component registry and
built with :func:`build_pipeline`::

    from repro.pipeline import ComponentSpec, PipelineSpec, build_pipeline

    spec = PipelineSpec(embedder=ComponentSpec("bisage", {"dim": 16}),
                        detector=ComponentSpec("lof"),
                        self_update=False)
    pipeline = build_pipeline(spec).fit(train_records)

The same spec travels inside every checkpoint, so ``repro.serve`` can
reconstruct and serve any arm without knowing its class.
"""

from repro.pipeline.build import build_pipeline, infer_spec
from repro.pipeline.registry import (
    COMPONENT_KINDS,
    ComponentEntry,
    UnknownComponentError,
    get_component,
    known_components,
    register_component,
)
from repro.pipeline.spec import SPEC_VERSION, ComponentSpec, DriftSpec, PipelineSpec

__all__ = [
    "COMPONENT_KINDS",
    "ComponentEntry",
    "ComponentSpec",
    "DriftSpec",
    "PipelineSpec",
    "SPEC_VERSION",
    "UnknownComponentError",
    "build_pipeline",
    "get_component",
    "infer_spec",
    "known_components",
    "register_component",
]
