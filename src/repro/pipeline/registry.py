"""Component registry: embedders, detectors and standalone models by name.

Every composable building block of the paper's evaluation registers
here under a stable lowercase name together with a factory, the set of
parameters its spec may carry, and its capabilities (online update,
checkpointing).  :mod:`repro.pipeline.spec` validates declarative
pipeline specs against this registry, and
:func:`repro.pipeline.build.build_pipeline` resolves them into live
pipelines — so adding a new embedder or detector is one ``register_*``
call, never an edit to core code.

Three kinds exist:

``embedder``
    A :class:`~repro.core.protocols.RecordEmbedder` (BiSAGE, GraphSAGE,
    autoencoder, MDS, raw imputed matrix).
``detector``
    A one-class :class:`~repro.core.protocols.Detector` over embeddings
    (enhanced histogram, LOF, iForest, feature bagging).
``model``
    A standalone :class:`~repro.core.protocols.GeofenceModel` that is
    not an embedder x detector composition (GEM's tuned bundle,
    SignatureHome, INOA).
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Any, Callable, Iterable

from repro.baselines.inoa import INOA
from repro.baselines.signature_home import SignatureHome
from repro.core.config import GEMConfig
from repro.core.embedders import (
    AutoencoderEmbedder,
    BiSAGEEmbedder,
    GraphSAGEEmbedder,
    ImputedMatrixEmbedder,
    MDSEmbedder,
)
from repro.core.gem import GEM
from repro.detection.feature_bagging import FeatureBagging
from repro.detection.histogram import HistogramConfig, HistogramDetector
from repro.detection.iforest import IsolationForest
from repro.detection.lof import LocalOutlierFactor
from repro.embedding.autoencoder import AutoencoderConfig
from repro.embedding.bisage import BiSAGEConfig
from repro.embedding.graphsage import GraphSAGEConfig
from repro.embedding.matrix import DEFAULT_FILL_DBM

__all__ = [
    "COMPONENT_KINDS",
    "ComponentEntry",
    "UnknownComponentError",
    "get_component",
    "known_components",
    "register_component",
]

COMPONENT_KINDS = ("embedder", "detector", "model")


class UnknownComponentError(ValueError):
    """A spec referenced a component name the registry does not know."""


@dataclass(frozen=True)
class ComponentEntry:
    """One registered component.

    ``params`` is the closed set of spec-parameter names the factory
    accepts; validation rejects anything outside it so a typo'd or
    inapplicable hyper-parameter fails loudly instead of being silently
    dropped.  ``supports_update`` marks detectors (and models) with an
    online self-update path; ``supports_state_dict`` marks components
    whose instances can be checkpointed and restored;
    ``supports_refresh`` marks components that can take part in a
    coordinated refresh — embedders exposing ``refresh_cache``,
    detectors exposing ``refit``, and standalone models exposing
    ``refresh(records)``.  ``supports_batch_score`` marks detectors
    (and models built on them) whose batch scoring is bit-identical per
    row to scalar scoring, making them eligible for the vectorized
    batch data plane (:mod:`repro.serve.batchplane`); row-coupled
    scorers like LOF/iForest must leave it False and stay on the scalar
    path.
    """

    name: str
    kind: str
    factory: Callable[..., Any]
    params: tuple[str, ...]
    supports_update: bool = False
    supports_state_dict: bool = True
    supports_refresh: bool = False
    supports_batch_score: bool = False
    description: str = ""


_REGISTRY: dict[tuple[str, str], ComponentEntry] = {}


def register_component(kind: str, name: str, factory: Callable[..., Any],
                       params: Iterable[str], *, supports_update: bool = False,
                       supports_state_dict: bool = True,
                       supports_refresh: bool = False,
                       supports_batch_score: bool = False,
                       description: str = "",
                       replace: bool = False) -> ComponentEntry:
    """Register a component; returns the new :class:`ComponentEntry`.

    Re-registering an existing (kind, name) is an error unless
    ``replace=True`` — accidental shadowing of a built-in would silently
    change what every spec referencing the name builds.
    """
    if kind not in COMPONENT_KINDS:
        raise ValueError(f"unknown component kind {kind!r}; known kinds: "
                         f"{', '.join(COMPONENT_KINDS)}")
    if not name or name != name.strip():
        raise ValueError(f"component name must be a non-empty trimmed string, got {name!r}")
    key = (kind, name)
    if key in _REGISTRY and not replace:
        raise ValueError(f"{kind} {name!r} is already registered; pass replace=True to override")
    entry = ComponentEntry(name=name, kind=kind, factory=factory,
                           params=tuple(params), supports_update=supports_update,
                           supports_state_dict=supports_state_dict,
                           supports_refresh=supports_refresh,
                           supports_batch_score=supports_batch_score,
                           description=description)
    _REGISTRY[key] = entry
    return entry


def get_component(kind: str, name: str) -> ComponentEntry:
    """Look up one component; unknown names raise with the known list."""
    if kind not in COMPONENT_KINDS:
        raise ValueError(f"unknown component kind {kind!r}; known kinds: "
                         f"{', '.join(COMPONENT_KINDS)}")
    entry = _REGISTRY.get((kind, name))
    if entry is None:
        known = ", ".join(sorted(n for k, n in _REGISTRY if k == kind))
        raise UnknownComponentError(
            f"unknown {kind} {name!r}; known {kind}s: {known}")
    return entry


def known_components(kind: str | None = None) -> list[ComponentEntry]:
    """Every registered entry (of one kind, or all), sorted by kind then name."""
    entries = [entry for (k, _), entry in _REGISTRY.items() if kind is None or k == kind]
    return sorted(entries, key=lambda e: (COMPONENT_KINDS.index(e.kind), e.name))


def _config_params(config_class) -> tuple[str, ...]:
    return tuple(f.name for f in dataclass_fields(config_class))


# ----------------------------------------------------------------------
# Built-in embedders
# ----------------------------------------------------------------------
def _make_bisage(**params):
    weight_offset = float(params.pop("weight_offset", 120.0))
    refresh_every = int(params.pop("refresh_every", 0))
    return BiSAGEEmbedder(BiSAGEConfig.from_dict(params),
                          weight_offset=weight_offset, refresh_every=refresh_every)


def _make_graphsage(**params):
    weight_offset = float(params.pop("weight_offset", 120.0))
    refresh_every = int(params.pop("refresh_every", 0))
    return GraphSAGEEmbedder(GraphSAGEConfig.from_dict(params),
                             weight_offset=weight_offset, refresh_every=refresh_every)


def _make_autoencoder(**params):
    fill_value = float(params.pop("fill_value", DEFAULT_FILL_DBM))
    return AutoencoderEmbedder(AutoencoderConfig.from_dict(params), fill_value=fill_value)


register_component(
    "embedder", "bisage", _make_bisage,
    _config_params(BiSAGEConfig) + ("weight_offset", "refresh_every"),
    supports_refresh=True,
    description="Weighted bipartite graph + BiSAGE GNN (the paper's embedder)")
register_component(
    "embedder", "graphsage", _make_graphsage,
    _config_params(GraphSAGEConfig) + ("weight_offset", "refresh_every"),
    supports_refresh=True,
    description="Homogeneous GraphSAGE over the same bipartite graph")
register_component(
    "embedder", "autoencoder", _make_autoencoder,
    _config_params(AutoencoderConfig) + ("fill_value",),
    description="Four-layer 1-D conv autoencoder over the imputed matrix")
register_component(
    "embedder", "mds", MDSEmbedder, ("dim", "fill_value"),
    description="Classical MDS on 1-cosine distances of imputed vectors")
register_component(
    "embedder", "imputed-matrix", ImputedMatrixEmbedder, ("fill_value",),
    description="Identity embedding: the -120-padded RSS vector itself")


# ----------------------------------------------------------------------
# Built-in detectors
# ----------------------------------------------------------------------
def _make_histogram(**params):
    return HistogramDetector(HistogramConfig.from_dict(params))


register_component(
    "detector", "histogram", _make_histogram, _config_params(HistogramConfig),
    supports_update=True, supports_refresh=True, supports_batch_score=True,
    description="Enhanced histogram OD (HBOS + softmax enhancement + update)")
register_component(
    "detector", "lof", LocalOutlierFactor, ("n_neighbors", "contamination"),
    supports_refresh=True,
    description="Local outlier factor with out-of-sample queries")
register_component(
    "detector", "iforest", IsolationForest,
    ("n_trees", "subsample_size", "contamination", "seed"),
    supports_refresh=True,
    description="Isolation forest over embedding vectors")
register_component(
    "detector", "feature-bagging", FeatureBagging,
    ("n_estimators", "n_neighbors", "contamination", "seed"),
    supports_refresh=True,
    description="Cumulative-sum feature-bagged LOF ensemble")


# ----------------------------------------------------------------------
# Built-in standalone models
# ----------------------------------------------------------------------
def _make_gem(**params):
    return GEM(GEMConfig.from_dict(params))


register_component(
    "model", "gem", _make_gem, _config_params(GEMConfig),
    supports_update=True, supports_refresh=True, supports_batch_score=True,
    description="The paper's tuned system: BiSAGE + enhanced histogram + self-update")
register_component(
    "model", "signature-home", SignatureHome,
    ("association_weight", "overlap_weight", "threshold", "association_rssi_floor"),
    description="MAC-overlap + associated-AP signature baseline")
register_component(
    "model", "inoa", INOA,
    ("threshold", "radius_quantile", "min_support", "unseen_pair_vote",
     "calibration_quantile"),
    description="Ensemble of per-AP-pair hypersphere learners baseline")
