"""Resolve a :class:`~repro.pipeline.spec.PipelineSpec` into a live pipeline."""

from __future__ import annotations

from repro.baselines.inoa import INOA
from repro.baselines.signature_home import SignatureHome
from repro.core.gem import GEM, EmbeddingGeofencer
from repro.pipeline.spec import ComponentSpec, PipelineSpec

__all__ = ["build_pipeline", "infer_spec"]


def build_pipeline(spec: PipelineSpec):
    """Build the pipeline a spec describes (validating it first).

    Returns a standalone model for model specs, an
    :class:`~repro.core.gem.EmbeddingGeofencer` for embedder x detector
    specs.  The spec is stamped on the result (``pipeline.spec``) so
    checkpoints can embed it and a fleet can rebuild the exact same arm
    on reload.
    """
    spec.validate()
    if spec.model is not None:
        entry = spec.model.resolve("model")
        pipeline = entry.factory(**spec.model.params)
    else:
        embedder = spec.embedder.resolve("embedder").factory(**spec.embedder.params)
        detector = spec.detector.resolve("detector").factory(**spec.detector.params)
        pipeline = EmbeddingGeofencer(embedder, detector,
                                      self_update=spec.self_update,
                                      batch_update_size=spec.batch_update_size)
    pipeline.spec = spec
    return pipeline


def infer_spec(model) -> PipelineSpec:
    """Best-effort spec for a pipeline built *without* one.

    Pipelines from :func:`build_pipeline` carry their spec already; this
    covers the hand-constructed built-ins whose constructor parameters
    are recoverable from the instance.  Anything else must be built from
    a spec (or handed one explicitly) to be checkpointable.
    """
    spec = getattr(model, "spec", None)
    if spec is not None:
        return spec
    if isinstance(model, GEM):
        return PipelineSpec(model=ComponentSpec("gem", model.config.to_dict()))
    if isinstance(model, SignatureHome):
        return PipelineSpec(model=ComponentSpec("signature-home", {
            "association_weight": model.association_weight,
            "overlap_weight": model.overlap_weight,
            "threshold": model.threshold,
            "association_rssi_floor": model.association_rssi_floor,
        }))
    if isinstance(model, INOA):
        return PipelineSpec(model=ComponentSpec("inoa", {
            "threshold": model.threshold,
            "radius_quantile": model.radius_quantile,
            "min_support": model.min_support,
            "unseen_pair_vote": model.unseen_pair_vote,
            "calibration_quantile": model.calibration_quantile,
        }))
    raise TypeError(
        f"cannot infer a PipelineSpec for {type(model).__name__}; build the "
        "pipeline with repro.pipeline.build_pipeline or pass spec= explicitly")
