"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts a ``seed`` argument
that may be ``None``, an integer, or an existing
:class:`numpy.random.Generator`.  Centralising the coercion here keeps
experiments reproducible: a single integer seed at the top of a script
deterministically derives every stream used below it.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_rng(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` produces a fresh OS-seeded generator; an ``int`` or
    :class:`~numpy.random.SeedSequence` produces a deterministic one; an
    existing generator is passed through unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from a single seed.

    Uses :class:`numpy.random.SeedSequence` spawning so the children are
    statistically independent regardless of how the parent is consumed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children by drawing entropy from the parent stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    sequence = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]
