"""Small argument-validation helpers shared across the library.

These raise early with messages that name the offending argument, per
the "errors should never pass silently" guideline.  They return the
validated value so call sites can validate and assign in one statement.
"""

from __future__ import annotations

import math

import numpy as np


def check_positive(value: float, name: str) -> float:
    """Ensure ``value`` is a finite number strictly greater than zero."""
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a positive finite number, got {value!r}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Ensure ``value`` is an integer strictly greater than zero."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Ensure ``value`` lies in the closed interval [0, 1]."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_in_range(value: float, name: str, low: float, high: float) -> float:
    """Ensure ``value`` lies in the closed interval [low, high]."""
    if not math.isfinite(value) or not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return float(value)


def check_finite(array, name: str) -> np.ndarray:
    """Ensure every element of ``array`` is finite; returns an ndarray."""
    arr = np.asarray(array, dtype=float)
    if arr.size and not np.isfinite(arr).all():
        raise ValueError(f"{name} contains non-finite values")
    return arr
