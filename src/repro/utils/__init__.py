"""Shared utilities: seeded randomness and argument validation."""

from repro.utils.rng import as_rng, spawn_rngs
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_positive_int,
    check_probability,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_positive_int",
    "check_probability",
]
