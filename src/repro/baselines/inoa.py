"""INOA baseline (Chow et al., IEEE TMC 2019).

As summarised in Sec. II/V of the GEM paper: each variable-length record
is decomposed into records over *pairs* of sensed APs; for every AP pair
a base learner learns a hypersphere over the 2-D RSS points observed in
training; at inference the record's pairs are fed to their base learners
and the fraction of out-of-sphere votes is the outlier score, thresholded
to decide in/out.

The hypersphere per pair is centred at the training mean with radius set
to a high quantile of training distances (a one-class support region, as
in the original ensemble-of-hyperspheres formulation).
"""

from __future__ import annotations

from itertools import combinations
from typing import Sequence

import numpy as np

from repro.core.protocols import GeofenceDecision
from repro.core.records import SignalRecord
from repro.utils.validation import check_positive_int, check_probability

__all__ = ["INOA"]


class _PairLearner:
    """Hypersphere over the 2-D RSS observations of one AP pair."""

    __slots__ = ("center", "radius")

    def __init__(self, points: np.ndarray, quantile: float):
        self.center = points.mean(axis=0)
        distances = np.linalg.norm(points - self.center, axis=1)
        # Never collapse to zero radius: allow per-sample RSS jitter.
        self.radius = max(float(np.quantile(distances, quantile)), 2.0)

    def is_outlier(self, point: np.ndarray) -> bool:
        return bool(np.linalg.norm(point - self.center) > self.radius)

    @classmethod
    def from_state(cls, center: np.ndarray, radius: float) -> "_PairLearner":
        """Rebuild a learner from checkpointed (center, radius)."""
        learner = cls.__new__(cls)
        learner.center = np.asarray(center, dtype=np.float64)
        learner.radius = float(radius)
        return learner


class INOA:
    """Ensemble of per-AP-pair hypersphere learners."""

    def __init__(self, threshold: float | None = 0.5, radius_quantile: float = 0.85,
                 min_support: int = 5, unseen_pair_vote: float = 1.0,
                 calibration_quantile: float = 0.95):
        if threshold is not None:
            check_probability(threshold, "threshold")
        check_probability(radius_quantile, "radius_quantile")
        check_positive_int(min_support, "min_support")
        check_probability(unseen_pair_vote, "unseen_pair_vote")
        check_probability(calibration_quantile, "calibration_quantile")
        self.threshold = threshold
        self.radius_quantile = radius_quantile
        self.min_support = min_support
        self.unseen_pair_vote = unseen_pair_vote
        self.calibration_quantile = calibration_quantile
        self._learners: dict[tuple[str, str], _PairLearner] = {}
        self._fitted = False

    def fit(self, records: Sequence[SignalRecord]) -> "INOA":
        records = list(records)
        if not records:
            raise ValueError("INOA requires at least one training record")
        points: dict[tuple[str, str], list[tuple[float, float]]] = {}
        for record in records:
            macs = sorted(record.readings)
            for a, b in combinations(macs, 2):
                points.setdefault((a, b), []).append((record.readings[a], record.readings[b]))
        self._learners = {
            pair: _PairLearner(np.asarray(observations, dtype=np.float64), self.radius_quantile)
            for pair, observations in points.items()
            if len(observations) >= self.min_support
        }
        self._fitted = True
        # Self-calibrate the vote threshold on the training records'
        # scores when none was given: the training quantile plus a small
        # margin.  A fixed threshold does not transfer between a 10 m²
        # dorm and a five-storey mall.
        if self.threshold is None:
            train_scores = [self.outlier_score(record) for record in records]
            self.threshold = min(1.0, float(np.quantile(train_scores,
                                                        self.calibration_quantile)) + 0.05)
        return self

    @property
    def num_learners(self) -> int:
        return len(self._learners)

    def outlier_score(self, record: SignalRecord) -> float:
        """Fraction of out-of-sphere votes over the record's AP pairs.

        Pairs never seen in training vote ``unseen_pair_vote`` (a record
        dominated by unfamiliar AP combinations is suspicious).  Records
        with fewer than two readings score 1.0 (nothing to support an
        in-premises claim).
        """
        if not self._fitted:
            raise RuntimeError("INOA has not been fitted; call fit first")
        macs = sorted(record.readings)
        if len(macs) < 2:
            return 1.0
        votes = []
        for a, b in combinations(macs, 2):
            learner = self._learners.get((a, b))
            if learner is None:
                votes.append(self.unseen_pair_vote)
            else:
                point = np.asarray([record.readings[a], record.readings[b]])
                votes.append(1.0 if learner.is_outlier(point) else 0.0)
        return float(np.mean(votes))

    def predict(self, record: SignalRecord) -> bool:
        return self.outlier_score(record) <= self.threshold

    def observe(self, record: SignalRecord) -> GeofenceDecision:
        """Streaming interface; INOA has no online update."""
        score = self.outlier_score(record)
        return GeofenceDecision(inside=score <= self.threshold, score=score)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: hyper-parameters + every pair hypersphere.

        Learners are stored as parallel (pairs, centers, radii) in a
        deterministic sort order; scoring is a deterministic function of
        them, so a restored model scores bit-for-bit identically.
        """
        if not self._fitted:
            raise RuntimeError("cannot checkpoint an unfitted INOA; call fit first")
        pairs = sorted(self._learners)
        centers = (np.vstack([self._learners[pair].center for pair in pairs])
                   if pairs else np.empty((0, 2), dtype=np.float64))
        radii = np.asarray([self._learners[pair].radius for pair in pairs], dtype=np.float64)
        return {
            "threshold": float(self.threshold),
            "radius_quantile": self.radius_quantile,
            "min_support": self.min_support,
            "unseen_pair_vote": self.unseen_pair_vote,
            "calibration_quantile": self.calibration_quantile,
            "pairs": [[a, b] for a, b in pairs],
            "centers": centers,
            "radii": radii,
        }

    def load_state_dict(self, state: dict) -> "INOA":
        """Restore a model saved by :meth:`state_dict`."""
        pairs = [(str(a), str(b)) for a, b in state["pairs"]]
        centers = np.asarray(state["centers"], dtype=np.float64).reshape(len(pairs), 2)
        radii = np.asarray(state["radii"], dtype=np.float64)
        if len(radii) != len(pairs):
            raise ValueError(f"INOA state has {len(pairs)} pairs but {len(radii)} radii")
        check_probability(float(state["threshold"]), "threshold")
        self.threshold = float(state["threshold"])
        self.radius_quantile = float(state["radius_quantile"])
        self.min_support = int(state["min_support"])
        self.unseen_pair_vote = float(state["unseen_pair_vote"])
        self.calibration_quantile = float(state["calibration_quantile"])
        self._learners = {pair: _PairLearner.from_state(center, radius)
                          for pair, center, radius in zip(pairs, centers, radii)}
        self._fitted = True
        return self
