"""End-to-end comparator systems from the paper's evaluation."""

from repro.baselines.inoa import INOA
from repro.baselines.signature_home import SignatureHome

__all__ = ["INOA", "SignatureHome"]
