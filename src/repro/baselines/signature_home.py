"""SignatureHome baseline (Tan et al., IEEE IoT Magazine 2020).

As described in Sec. II/V of the GEM paper: the system learns a "home
signature" — the union of MACs detected inside the area plus the
identity of the AP the device associates with — and classifies a new
record by a weighted combination of (a) whether the currently associated
AP belongs to the signature and (b) the overlap ratio between the
record's MACs and the signature.

The real system uses the IP address of the associated AP; ambient-scan
data carries no association, so we model association *stickiness*: a
device associates to the strongest AP seen during training (the home
network) and **stays** associated while any of those radios is heard
above the stay-connected floor (~-80 dBm).  This reproduces the failure
mode the paper attributes to SignatureHome — "problems in separating
signals observed near the boundary of the house since its network-based
approach is not able to capture any perimeter information": one wall of
attenuation does not break a WiFi association, so records just outside
still pass the association check.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.protocols import GeofenceDecision
from repro.core.records import SignalRecord
from repro.utils.validation import check_probability

__all__ = ["SignatureHome"]


class SignatureHome:
    """MAC-overlap + associated-AP geofencing signature."""

    def __init__(self, association_weight: float = 0.5, overlap_weight: float = 0.5,
                 threshold: float = 0.75, association_rssi_floor: float = -72.0):
        check_probability(association_weight, "association_weight")
        check_probability(overlap_weight, "overlap_weight")
        if abs(association_weight + overlap_weight - 1.0) > 1e-9:
            raise ValueError("association_weight and overlap_weight must sum to 1")
        check_probability(threshold, "threshold")
        self.association_weight = association_weight
        self.overlap_weight = overlap_weight
        self.threshold = threshold
        self.association_rssi_floor = association_rssi_floor
        self.signature: set[str] = set()
        self.association_set: set[str] = set()
        self._fitted = False

    def fit(self, records: Sequence[SignalRecord]) -> "SignatureHome":
        """Build the home signature from in-premises records."""
        records = list(records)
        if not records:
            raise ValueError("SignatureHome requires at least one training record")
        self.signature = set()
        self.association_set = set()
        totals: dict[str, list[float]] = {}
        for record in records:
            self.signature.update(record.readings)
            for mac, rss in record.readings.items():
                totals.setdefault(mac, []).append(rss)
        # The association set is the home network's own radios: the MACs
        # whose mean RSS sits within a few dB of the strongest mean (a
        # dual-band router exposes two such MACs).  Per-scan argmax would
        # wrongly admit neighbour APs whenever a deep fade flips the top.
        if totals:
            means = {mac: sum(values) / len(values) for mac, values in totals.items()}
            best = max(means.values())
            self.association_set = {mac for mac, mean in means.items() if mean >= best - 6.0}
        self._fitted = True
        return self

    def inside_score(self, record: SignalRecord) -> float:
        """Weighted signature score in [0, 1]; higher = more likely inside."""
        if not self._fitted:
            raise RuntimeError("SignatureHome has not been fitted; call fit first")
        if not record.readings:
            return 0.0
        overlap = len(record.macs & self.signature) / len(record.macs)
        # Sticky association: connected while any home radio is heard
        # above the stay-connected floor.
        associated = 1.0 if any(
            record.readings.get(mac, -1e9) >= self.association_rssi_floor
            for mac in self.association_set
        ) else 0.0
        return self.association_weight * associated + self.overlap_weight * overlap

    def predict(self, record: SignalRecord) -> bool:
        return self.inside_score(record) >= self.threshold

    def observe(self, record: SignalRecord) -> GeofenceDecision:
        """Streaming interface; SignatureHome has no online update."""
        score = self.inside_score(record)
        # Report an outlier-style score (higher = more outlying) for parity
        # with the other pipelines.
        return GeofenceDecision(inside=score >= self.threshold, score=1.0 - score)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Checkpointable state: weights, thresholds and both MAC sets."""
        if not self._fitted:
            raise RuntimeError("cannot checkpoint an unfitted SignatureHome; call fit first")
        return {
            "association_weight": self.association_weight,
            "overlap_weight": self.overlap_weight,
            "threshold": self.threshold,
            "association_rssi_floor": self.association_rssi_floor,
            "signature": sorted(self.signature),
            "association_set": sorted(self.association_set),
        }

    def load_state_dict(self, state: dict) -> "SignatureHome":
        """Restore a model saved by :meth:`state_dict`."""
        signature = {str(mac) for mac in state["signature"]}
        association_set = {str(mac) for mac in state["association_set"]}
        if not association_set <= signature:
            raise ValueError("association_set contains MACs outside the signature")
        check_probability(float(state["threshold"]), "threshold")
        self.association_weight = float(state["association_weight"])
        self.overlap_weight = float(state["overlap_weight"])
        self.threshold = float(state["threshold"])
        self.association_rssi_floor = float(state["association_rssi_floor"])
        self.signature = signature
        self.association_set = association_set
        self._fitted = True
        return self
