"""Background maintenance worker for a sharded serving runtime.

The :class:`MaintenanceScheduler` is the piece that turns the passive
fleet library into a daemon: a single worker thread that periodically
**pumps** each shard's decision bus into its controller (executing any
scheduled or telemetry-triggered refreshes there, off the observe path)
and, less often, runs the controllers' **sweep** clauses (flush, idle
eviction).  One thread serves every shard — controllers are
single-threaded by design, and maintenance is IO/compute the shards'
own locks already order against the data plane.

Failure containment: a maintenance exception (e.g. a refresh discarded
because its tenant was evicted mid-rebuild) must not kill the daemon.
Each tick catches per-shard errors into a bounded ``errors`` log and
keeps going; inspect it (or ``stats()``) from operational code.

Clean shutdown: :meth:`stop` wakes the worker, joins it, and runs one
final synchronous drain so every decision observed before the stop is
folded into controller telemetry — the conservation property the
concurrency tests pin.
"""

from __future__ import annotations

import threading
import time
import traceback
from typing import Sequence

__all__ = ["MaintenanceScheduler"]

_MAX_ERRORS = 64


class MaintenanceScheduler:
    """Periodic pump + sweep over a set of :class:`FleetShard`\\ s.

    Parameters
    ----------
    shards:
        The shards to maintain (the runtime passes its own).
    interval:
        Seconds between ticks.  Each tick drains every shard's decision
        queue; refreshes the controllers decide on run inside the tick.
    sweep_every:
        Run the controllers' ``maintain()`` sweep every N ticks;
        0 disables sweeps (pump only).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; mirrors
        ticks, drained decisions and errors into counters, and per-shard
        pump recency into the ``repro_scheduler_last_pump_age_seconds``
        gauge (refreshed by the runtime's ``metrics()`` snapshot).
    """

    def __init__(self, shards: Sequence, interval: float = 0.05,
                 sweep_every: int = 20, metrics=None):
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if sweep_every < 0:
            raise ValueError(f"sweep_every must be >= 0, got {sweep_every}")
        self.shards = list(shards)
        self.interval = interval
        self.sweep_every = sweep_every
        self.errors: list[tuple[int, str]] = []   # (shard index, traceback tail)
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._ticks = 0
        self._drained = 0
        self._sweeps = 0
        self._errors_total = 0    # cumulative, unlike the bounded log
        self._started_at: float | None = None
        # shard index -> monotonic time of its last completed pump.
        self._last_pump: dict[int, float] = {}
        self._metrics = metrics
        if metrics is not None:
            self._ticks_counter = metrics.counter(
                "repro_scheduler_ticks_total",
                help="Maintenance ticks completed")
            self._drained_counter = metrics.counter(
                "repro_scheduler_decisions_drained_total",
                help="Decisions drained from shard buses into controllers")
            self._errors_counter = metrics.counter(
                "repro_scheduler_errors_total",
                help="Maintenance exceptions caught (daemon kept running)")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MaintenanceScheduler":
        """Launch the worker thread (idempotent while running)."""
        if self.running:
            return self
        self._stop.clear()
        self._started_at = time.monotonic()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-maintenance", daemon=True)
        self._thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the worker and drain what it had not yet pumped.

        After this returns, every decision the data plane enqueued
        before the call has been folded into its shard's controller.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():  # pragma: no cover - only on a wedged tick
                raise RuntimeError("maintenance worker did not stop within "
                                   f"{timeout}s; a tick appears wedged")
        self._thread = None
        # Final synchronous drain: the worker may have been parked on
        # its interval wait while decisions kept arriving.
        self.tick(sweep=False)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    # ------------------------------------------------------------------
    # One iteration (public so serial-mode callers can pump by hand)
    # ------------------------------------------------------------------
    def tick(self, sweep: bool | None = None) -> int:
        """Pump every shard once (and maybe sweep); returns decisions drained.

        ``sweep=None`` follows the ``sweep_every`` cadence; True/False
        force or suppress the sweep for this tick.
        """
        drained = 0
        self._ticks += 1
        if sweep is None:
            sweep = bool(self.sweep_every) and self._ticks % self.sweep_every == 0
        for shard in self.shards:
            try:
                drained += shard.pump()
                self._last_pump[shard.index] = time.monotonic()
                if sweep:
                    shard.sweep()
            except Exception:
                self._record_error(shard.index)
        self._drained += drained
        if sweep:
            self._sweeps += 1
        if self._metrics is not None:
            self._ticks_counter.inc()
            if drained:
                self._drained_counter.inc(drained)
        return drained

    def _record_error(self, shard_index: int) -> None:
        if len(self.errors) >= _MAX_ERRORS:
            del self.errors[: _MAX_ERRORS // 2]
        self.errors.append((shard_index, traceback.format_exc(limit=4)))
        self._errors_total += 1
        if self._metrics is not None:
            self._errors_counter.inc()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        return {
            "running": self.running,
            "ticks": self._ticks,
            "decisions_drained": self._drained,
            "sweeps": self._sweeps,
            "pending": sum(shard.pending_decisions for shard in self.shards),
            "errors": len(self.errors),
            "uptime_seconds": (time.monotonic() - self._started_at
                               if self._started_at is not None else 0.0),
        }

    def last_pump_ages(self) -> dict[int, float]:
        """Seconds since each shard's last completed pump.

        Shards never pumped are absent; a shard whose pump keeps raising
        therefore *ages* here, which is the scheduler-staleness health
        signal.
        """
        now = time.monotonic()
        return {index: now - at for index, at in self._last_pump.items()}

    def snapshot(self, recent_errors: int = 8) -> dict:
        """Operational snapshot: :meth:`stats` plus the error log.

        ``errors`` becomes a dict — ``count`` is the *cumulative* error
        total (the inline log is bounded and halves when full, so its
        length undercounts a long-lived daemon) and ``recent`` holds the
        last ``recent_errors`` entries as ``{"shard", "error"}`` with
        the traceback's final line (the exception message) as the error.
        """
        out = self.stats()
        out["errors"] = {
            "count": self._errors_total,
            "recent": [
                {"shard": index,
                 "error": text.strip().rsplit("\n", 1)[-1].strip()}
                for index, text in self.errors[-recent_errors:]
            ],
        }
        out["last_pump_ages"] = {str(index): age
                                 for index, age in self.last_pump_ages().items()}
        return out
