"""Delta-shipped replication: committed writes -> standby registry.

The format-3 checkpoint chain (PR 5) is already the exact unit a warm
standby needs: every committed write is either a full save (arrays file
+ manifest) or one delta entry (append-tails/replacements + manifest
rewrite), and both carry nonces the loader validates.  Replication
therefore ships the *committed artifacts themselves* instead of
inventing a second log:

* :class:`DeltaShipper` subscribes to a registry's commit events
  (:meth:`~repro.serve.registry.ModelRegistry.subscribe`, fired on the
  saving thread right after each commit), packages the committed file's
  bytes plus the manifest as a :class:`ShippedWrite`, and queues it for
  the transport (the cluster worker's protocol link, or a direct
  in-process hand-off in tests).
* :class:`Follower` applies shipped writes to a standby registry with
  the same nonce/parent-chain discipline the loader enforces: a delta
  must chain off the standby's current tip, its npz nonce must match
  the manifest entry, and a torn or truncated payload is rejected
  *before* anything touches the standby's disk.  Replays are
  idempotent (a write whose tip the standby already holds is skipped),
  so a restarted follower can be re-fed from any earlier point.
* :meth:`Follower.promote` turns the standby into a serving primary:
  every tenant still mid-chain is loaded (chain replayed) and
  compacted to a plain format-2 checkpoint, so the promoted registry
  starts clean — the measured ``seconds`` is the failover cost.

What warm failover guarantees — and what it does not: the standby holds
every **committed** write the shipper delivered; in-memory state the
primary had not yet written back (dirty tenants between flushes) is
lost with the primary, exactly as it would be in a single-node crash.
Flush cadence is therefore the replication-staleness knob.
"""

from __future__ import annotations

import io
import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.serve.checkpoint import (
    ARRAYS_PREFIX,
    ARRAYS_SUFFIX,
    DELTA_PREFIX,
    DELTA_SUFFIX,
    MANIFEST_NAME,
    CheckpointError,
    CommitInfo,
    _replace_into,
    load_checkpoint_with_manifest,
    read_manifest,
    save_checkpoint,
    spec_from_manifest,
)
from repro.serve.registry import ModelRegistry, validate_tenant_id

__all__ = ["DeltaShipper", "Follower", "PromotionReport", "ReplicationError",
           "ShippedWrite"]

# npz nonce keys, shared with the checkpoint writer (same package).
_SAVE_ID_KEY = "__save_id__"
_DELTA_ID_KEY = "__delta_id__"


class ReplicationError(RuntimeError):
    """A shipped write is torn, out of order, or otherwise unappliable."""


@dataclass(frozen=True)
class ShippedWrite:
    """One committed checkpoint write, packaged for a follower.

    ``manifest`` is the complete post-commit manifest (for a delta, the
    whole chain including the new entry), ``file_bytes`` the one file
    this commit added.  ``source`` identifies the shipper (one per
    worker process) and ``seq`` is its monotonic counter, so a receiver
    can account for per-source delivery; ``shipped_at`` is the commit
    wall-clock time the replication-lag measurement subtracts from.
    """

    tenant_id: str
    kind: str                # "full" | "delta"
    save_id: str
    delta_id: str | None
    tip_id: str
    chain_length: int
    file_name: str
    manifest: dict
    file_bytes: bytes
    source: str = "local"
    seq: int = 0
    shipped_at: float = 0.0

    # ------------------------------------------------------------------
    # Wire form (protocol frame header + blobs)
    # ------------------------------------------------------------------
    def to_frame(self) -> tuple[dict, list[bytes]]:
        header = {"type": "replicate", "tenant": self.tenant_id,
                  "kind": self.kind, "save_id": self.save_id,
                  "delta_id": self.delta_id, "tip_id": self.tip_id,
                  "chain_length": self.chain_length,
                  "file_name": self.file_name, "manifest": self.manifest,
                  "source": self.source, "seq": self.seq,
                  "shipped_at": self.shipped_at}
        return header, [self.file_bytes]

    @classmethod
    def from_frame(cls, header: dict, blobs: list[bytes]) -> "ShippedWrite":
        try:
            return cls(tenant_id=str(header["tenant"]), kind=str(header["kind"]),
                       save_id=str(header["save_id"]),
                       delta_id=header.get("delta_id"),
                       tip_id=str(header["tip_id"]),
                       chain_length=int(header["chain_length"]),
                       file_name=str(header["file_name"]),
                       manifest=dict(header["manifest"]),
                       file_bytes=blobs[0] if blobs else b"",
                       source=str(header.get("source", "remote")),
                       seq=int(header.get("seq", 0)),
                       shipped_at=float(header.get("shipped_at", 0.0)))
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise ReplicationError(f"malformed replicate frame: {error}") from error


class DeltaShipper:
    """Packages a registry's committed writes for shipping.

    Subscribe with :meth:`attach`; the listener runs on the saving
    thread (synchronously, before the next save of the same tenant can
    begin), reads the just-committed file and manifest, and appends a
    :class:`ShippedWrite` to a thread-safe queue.  The transport drains
    the queue from whatever thread owns the link (:meth:`drain`).
    """

    def __init__(self, source: str = "local"):
        self.source = source
        self._queue: list[ShippedWrite] = []
        self._lock = threading.Lock()
        self._seq = 0
        self.shipped_total = 0
        self._unsubscribe = None

    def attach(self, registry: ModelRegistry) -> "DeltaShipper":
        """Subscribe to ``registry``'s commit events (idempotent-ish:
        call once per shipper)."""
        self._unsubscribe = registry.subscribe(self.on_commit)
        return self

    def detach(self) -> None:
        if self._unsubscribe is not None:
            self._unsubscribe()
            self._unsubscribe = None

    def on_commit(self, tenant_id: str, info: CommitInfo) -> None:
        """Registry listener: package one committed write."""
        directory = Path(info.directory)
        # The saving thread is still inside the registry call, so the
        # manifest and file it just committed cannot be superseded yet.
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        file_bytes = (directory / info.file_name).read_bytes()
        with self._lock:
            self._seq += 1
            write = ShippedWrite(
                tenant_id=tenant_id, kind=info.kind, save_id=info.save_id,
                delta_id=info.delta_id, tip_id=info.tip_id,
                chain_length=info.chain_length, file_name=info.file_name,
                manifest=manifest, file_bytes=file_bytes,
                source=self.source, seq=self._seq, shipped_at=time.time())
            self._queue.append(write)
            self.shipped_total += 1

    def drain(self) -> list[ShippedWrite]:
        """Pop everything queued since the last drain, in commit order."""
        with self._lock:
            out, self._queue = self._queue, []
            return out

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue)


@dataclass(frozen=True)
class PromotionReport:
    """Outcome of one standby promotion."""

    tenants: int             # complete checkpoints found on the standby
    compacted: int           # mid-chain tenants compacted to format 2
    seconds: float           # wall-clock promote duration (failover cost)
    chain_lengths: dict      # pre-promotion delta-chain length per tenant

    def as_dict(self) -> dict:
        return {"tenants": self.tenants, "compacted": self.compacted,
                "seconds": self.seconds, "chain_lengths": dict(self.chain_lengths)}


class Follower:
    """Applies shipped writes to a standby registry, then promotes it.

    The standby is a plain :class:`~repro.serve.registry.ModelRegistry`
    directory tree: every applied write leaves it loadable by the
    ordinary checkpoint reader (same nonce and chain validation), so a
    follower crash loses nothing — restart it over the same directory
    and replay; already-applied writes skip idempotently.
    """

    def __init__(self, registry: ModelRegistry | str | Path):
        self.registry = registry if isinstance(registry, ModelRegistry) \
            else ModelRegistry(registry)
        self._lock = threading.Lock()
        self.applied_total = 0
        self.skipped_total = 0
        self.rejected_total = 0
        self.applied_by_source: dict[str, int] = {}
        # Replication lag of the most recently applied write: apply
        # wall-clock minus the shipper's commit stamp (same machine for
        # the in-tree deployment, so the clocks agree).
        self.last_lag_seconds = 0.0
        self.max_lag_seconds = 0.0

    # ------------------------------------------------------------------
    # Applying
    # ------------------------------------------------------------------
    def apply(self, write: ShippedWrite) -> str:
        """Apply one shipped write; returns ``"applied"`` or ``"skipped"``.

        Raises :class:`ReplicationError` — with the standby untouched —
        when the payload is torn (npz nonce mismatch, truncated bytes),
        the manifest does not describe the shipped file, or a delta does
        not chain off the standby's current tip (a gap: the follower
        missed a write and must be re-seeded from a full save).
        """
        with self._lock:
            try:
                outcome = self._apply_locked(write)
            except ReplicationError:
                self.rejected_total += 1
                raise
            if outcome == "applied":
                self.applied_total += 1
                self.applied_by_source[write.source] = \
                    self.applied_by_source.get(write.source, 0) + 1
                if write.shipped_at:
                    lag = max(0.0, time.time() - write.shipped_at)
                    self.last_lag_seconds = lag
                    self.max_lag_seconds = max(self.max_lag_seconds, lag)
            else:
                self.skipped_total += 1
            return outcome

    def _apply_locked(self, write: ShippedWrite) -> str:
        validate_tenant_id(write.tenant_id)
        if write.kind not in ("full", "delta"):
            raise ReplicationError(f"unknown shipped write kind {write.kind!r}")
        manifest = write.manifest
        if manifest.get("save_id") != write.save_id:
            raise ReplicationError(
                f"shipped manifest save_id {manifest.get('save_id')!r} does not "
                f"match the write's {write.save_id!r}")
        directory = self.registry.path_for(write.tenant_id)
        current = self._current_manifest(directory)
        if write.kind == "full":
            return self._apply_full(write, directory, current)
        return self._apply_delta(write, directory, current)

    def _current_manifest(self, directory: Path) -> dict | None:
        if not (directory / MANIFEST_NAME).is_file():
            return None
        try:
            return read_manifest(directory)
        except CheckpointError as error:
            raise ReplicationError(
                f"standby checkpoint at {directory} is unreadable ({error}); "
                "re-seed this tenant from a full save") from error

    @staticmethod
    def _tip(manifest: dict) -> str:
        deltas = manifest.get("deltas", [])
        return deltas[-1]["delta_id"] if deltas else manifest.get("save_id")

    def _nonce(self, write: ShippedWrite, key: str) -> str:
        """The nonce stored inside the shipped npz bytes (torn detection)."""
        try:
            with np.load(io.BytesIO(write.file_bytes)) as archive:
                if key not in archive.files:
                    raise ReplicationError(
                        f"shipped file {write.file_name} carries no {key} nonce")
                return bytes(archive[key]).decode("ascii")
        except ReplicationError:
            raise
        except Exception as error:  # truncated/corrupt zip, bad header, ...
            raise ReplicationError(
                f"shipped file {write.file_name} is torn or truncated: "
                f"{error}") from error

    def _apply_full(self, write: ShippedWrite, directory: Path,
                    current: dict | None) -> str:
        if manifest_has_deltas(manifest := write.manifest):
            raise ReplicationError(
                f"full write for {write.tenant_id!r} ships a manifest that "
                "still carries a delta chain")
        if manifest.get("arrays_file") != write.file_name:
            raise ReplicationError(
                f"shipped manifest commits {manifest.get('arrays_file')!r} but "
                f"the write carries {write.file_name!r}")
        # Idempotent replay: if the standby already holds this base save
        # (with or without deltas stacked on it), re-applying the full
        # would roll the chain back — skip it instead.
        if current is not None and current.get("save_id") == write.save_id:
            return "skipped"
        if self._nonce(write, _SAVE_ID_KEY) != write.save_id:
            raise ReplicationError(
                f"shipped arrays file {write.file_name} and its manifest come "
                "from different saves (nonce mismatch)")
        directory.mkdir(parents=True, exist_ok=True)
        # Same commit discipline as the writer: file first, manifest
        # second (the commit point), superseded files deleted last.
        _replace_into(directory, write.file_name,
                      lambda handle: handle.write(write.file_bytes))
        _replace_into(directory, MANIFEST_NAME,
                      lambda handle: handle.write(
                          json.dumps(manifest, indent=1, sort_keys=True).encode()))
        for stale in directory.glob(f"{ARRAYS_PREFIX}*{ARRAYS_SUFFIX}"):
            if stale.name != write.file_name:
                stale.unlink(missing_ok=True)
        for stale in directory.glob(f"{DELTA_PREFIX}*{DELTA_SUFFIX}"):
            stale.unlink(missing_ok=True)
        return "applied"

    def _apply_delta(self, write: ShippedWrite, directory: Path,
                     current: dict | None) -> str:
        manifest = write.manifest
        deltas = manifest.get("deltas") or []
        if not deltas:
            raise ReplicationError(
                f"delta write for {write.tenant_id!r} ships a manifest with no "
                "delta chain")
        entry = deltas[-1]
        if entry.get("delta_id") != write.delta_id \
                or entry.get("file") != write.file_name:
            raise ReplicationError(
                f"shipped manifest's newest delta entry "
                f"({entry.get('delta_id')!r}, {entry.get('file')!r}) does not "
                f"describe the shipped write ({write.delta_id!r}, "
                f"{write.file_name!r})")
        if current is None:
            raise ReplicationError(
                f"standby has no checkpoint for {write.tenant_id!r}; a delta "
                "cannot seed a tenant — re-seed from a full save")
        if current.get("save_id") != write.save_id:
            raise ReplicationError(
                f"delta for {write.tenant_id!r} chains off base save "
                f"{write.save_id!r} but the standby holds "
                f"{current.get('save_id')!r}; re-seed from a full save")
        tip = self._tip(current)
        if tip == write.delta_id or any(d.get("delta_id") == write.delta_id
                                        for d in current.get("deltas", [])):
            return "skipped"       # idempotent replay
        if entry.get("parent") != tip:
            raise ReplicationError(
                f"delta for {write.tenant_id!r} chains off {entry.get('parent')!r} "
                f"but the standby tip is {tip!r}; the follower missed a write — "
                "re-seed from a full save")
        if self._nonce(write, _DELTA_ID_KEY) != write.delta_id:
            raise ReplicationError(
                f"shipped delta file {write.file_name} and its manifest entry "
                "come from different writes (nonce mismatch)")
        _replace_into(directory, write.file_name,
                      lambda handle: handle.write(write.file_bytes))
        _replace_into(directory, MANIFEST_NAME,
                      lambda handle: handle.write(
                          json.dumps(manifest, indent=1, sort_keys=True).encode()))
        return "applied"

    # ------------------------------------------------------------------
    # Promotion and introspection
    # ------------------------------------------------------------------
    def promote(self) -> PromotionReport:
        """Turn the standby into a serving primary; returns the report.

        Every tenant whose checkpoint is still mid-chain (format 3) is
        loaded — which replays and validates the chain — and compacted
        to a plain format-2 checkpoint, so the promoted registry serves
        with zero replay debt and any orphaned delta files are swept.
        Tenants already at format 2 are left byte-identical.  The
        report's ``seconds`` is the whole promotion wall-clock: that is
        the failover time a runbook budgets for.
        """
        start = time.perf_counter()
        chain_lengths: dict[str, int] = {}
        compacted = 0
        tenants = self.registry.tenants()
        for tenant_id in tenants:
            directory = self.registry.path_for(tenant_id)
            manifest = read_manifest(directory)
            chain = len(manifest.get("deltas", []))
            chain_lengths[tenant_id] = chain
            if chain == 0:
                continue
            model, manifest = load_checkpoint_with_manifest(directory)
            state = model.state_dict()
            save_checkpoint(model, directory,
                            metadata=manifest.get("metadata", {}),
                            spec=spec_from_manifest(manifest, state))
            compacted += 1
        return PromotionReport(tenants=len(tenants), compacted=compacted,
                               seconds=time.perf_counter() - start,
                               chain_lengths=chain_lengths)

    def stats(self) -> dict:
        with self._lock:
            return {"applied": self.applied_total, "skipped": self.skipped_total,
                    "rejected": self.rejected_total,
                    "applied_by_source": dict(self.applied_by_source),
                    "last_lag_seconds": self.last_lag_seconds,
                    "max_lag_seconds": self.max_lag_seconds}

    def lag_seconds(self) -> float:
        """Replication lag of the most recently applied write."""
        with self._lock:
            return self.last_lag_seconds


def manifest_has_deltas(manifest: dict) -> bool:
    return bool(manifest.get("deltas"))
