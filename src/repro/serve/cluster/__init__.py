"""`repro.serve.cluster` — multi-process serving with warm failover.

The scale-out layer above :class:`~repro.serve.runtime.ServingRuntime`:

* :mod:`~repro.serve.cluster.protocol` — length-prefixed, batched
  framing (JSON header + binary blobs) with a versioned handshake;
* :mod:`~repro.serve.cluster.worker` — one serial runtime per worker
  process (or in-process thread), serving its disjoint hash slice of
  the tenants;
* :mod:`~repro.serve.cluster.router` — the front end: routes by the
  same CRC-32 partition the runtime shards with, fans batches across
  workers, maps remote errors back to local types, and detects dead
  workers instead of hanging;
* :mod:`~repro.serve.cluster.replicate` — delta-shipped replication of
  committed checkpoint writes into a warm standby registry, plus
  ``promote()`` for failover.

The router is also the cluster's observability endpoint: it merges
per-worker metric snapshots, grades cluster health, and stitches
cross-process trace trees (see :mod:`repro.obs.cluster`) behind
``Router.metrics()`` / ``Router.health_report()`` /
``Router.export_prometheus()``.

Decisions through a cluster are bit-identical to the single-process
runtime: tenants are process-disjoint, each worker serves serially, and
the wire codec round-trips floats exactly (``BENCH_cluster.json`` pins
both the identity and the scaling).
"""

from repro.serve.cluster.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
)
from repro.serve.cluster.replicate import (
    DeltaShipper,
    Follower,
    PromotionReport,
    ReplicationError,
    ShippedWrite,
)
from repro.serve.cluster.router import (
    ClusterError,
    Router,
    SubprocessWorkerHandle,
    WorkerDied,
    WorkerTimeout,
    spawn_subprocess_worker,
)
from repro.serve.cluster.worker import (
    ClusterWorker,
    LocalWorkerHandle,
    WorkerConfig,
    spawn_local_worker,
)

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "ClusterError",
    "WorkerDied",
    "WorkerTimeout",
    "Router",
    "SubprocessWorkerHandle",
    "spawn_subprocess_worker",
    "ClusterWorker",
    "LocalWorkerHandle",
    "WorkerConfig",
    "spawn_local_worker",
    "DeltaShipper",
    "Follower",
    "PromotionReport",
    "ReplicationError",
    "ShippedWrite",
]
