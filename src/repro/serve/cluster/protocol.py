"""Length-prefixed, batched framing for router <-> worker links.

One frame is a JSON header plus zero or more raw binary blobs:

```
4 bytes  big-endian uint32: header length H
H bytes  UTF-8 JSON object (the header)
...      one run of raw bytes per entry of header["blobs"], whose
         values are the blob lengths in order
```

The header carries the message semantics (``type``, request ``id``,
``op``, JSON-safe payloads); blobs carry payloads that would be wasteful
as JSON — shipped checkpoint files (npz bytes) travel as blobs, signal
records and decisions as JSON (python's ``json`` round-trips floats
bit-exactly, including ``Infinity`` for footnote-3 unembeddable scores,
which is what keeps cluster decisions bit-identical to the serial
runtime).

Message types
-------------
``hello``
    First frame in each direction: versioned handshake.  The router
    sends ``{"type": "hello", "version": N, "config": {...}}``; the
    worker validates the version and replies ``{"type": "hello",
    "version": N, "worker": i, "pid": ...}``.  A version mismatch is a
    :class:`ProtocolError` on both sides, never a silent downgrade.
``request`` / ``response``
    ``request`` carries a caller-chosen ``id`` echoed by the matching
    ``response`` (``ok`` True with ``result``, or False with
    ``error: {kind, message}``), so responses can interleave with
    unsolicited frames.  Since version 2 a request header may carry an
    optional ``trace`` object (``{"trace_id", "span_id"}``, minted by
    the router's tracer): the worker opens its root span under that
    context so the two halves stitch back into one cross-process tree.
    Version 2 also adds two observability ops — ``obs_snapshot``
    (the worker's canonical ``runtime.metrics()`` dict: families,
    health, slow traces; ``None`` when the worker runs with
    observability off) and ``health`` (the worker's probe results as
    ``ProbeResult.as_dict()`` mappings) — both read-only and safe to
    fan out while requests are in flight.
``replicate``
    Worker -> router, unsolicited: one committed checkpoint write
    (see :class:`~repro.serve.cluster.replicate.ShippedWrite`), the
    file bytes as blob 0.

Streams are plain binary file objects (``socket.makefile("rwb")``, a
subprocess's stdio pipes) — anything with ``read``/``write``/``flush``.
EOF at a frame boundary reads as ``None`` (clean close); EOF inside a
frame raises :class:`ProtocolError` (truncated peer).
"""

from __future__ import annotations

import json

from repro.core.io import record_from_dict, record_to_dict
from repro.core.protocols import GeofenceDecision
from repro.core.records import SignalRecord

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "read_frame",
    "write_frame",
    "hello_frame",
    "check_hello",
    "encode_record",
    "decode_record",
    "encode_decision",
    "decode_decision",
]

# Version 2: obs_snapshot/health ops + optional request trace context.
# The handshake requires exact equality (no downgrade), so a v1 worker
# binary behind a v2 router fails loudly at hello, not quietly at the
# first obs_snapshot it cannot answer.
PROTOCOL_VERSION = 2

# A header larger than this is garbage (a desynchronised stream, or a
# peer speaking something else entirely): fail fast instead of trying to
# allocate gigabytes from four random bytes.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent a malformed, truncated, or wrong-version frame."""


def _read_exact(stream, n: int, *, at_boundary: bool) -> bytes | None:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = stream.read(remaining)
        if not chunk:
            if at_boundary and not chunks:
                return None
            got = n - remaining
            raise ProtocolError(f"stream truncated mid-frame: wanted {n} bytes, "
                                f"got {got} before EOF")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def write_frame(stream, header: dict, blobs: tuple | list = ()) -> None:
    """Serialise one frame onto ``stream`` and flush it."""
    header = dict(header)
    if blobs:
        header["blobs"] = [len(blob) for blob in blobs]
    payload = json.dumps(header, sort_keys=True).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header of {len(payload)} bytes exceeds the "
                            f"{MAX_FRAME_BYTES}-byte bound")
    stream.write(len(payload).to_bytes(4, "big"))
    stream.write(payload)
    for blob in blobs:
        stream.write(blob)
    stream.flush()


def read_frame(stream) -> tuple[dict, list[bytes]] | None:
    """Read one frame: ``(header, blobs)``, or None on clean EOF."""
    length_bytes = _read_exact(stream, 4, at_boundary=True)
    if length_bytes is None:
        return None
    length = int.from_bytes(length_bytes, "big")
    if not 0 < length <= MAX_FRAME_BYTES:
        raise ProtocolError(f"frame header length {length} outside (0, "
                            f"{MAX_FRAME_BYTES}]: desynchronised stream?")
    payload = _read_exact(stream, length, at_boundary=False)
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame header is not JSON: {error}") from error
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(f"frame header is not a typed object: {header!r}")
    blobs = []
    for size in header.pop("blobs", []):
        if not isinstance(size, int) or not 0 <= size <= MAX_FRAME_BYTES:
            raise ProtocolError(f"bad blob length {size!r} in frame header")
        blobs.append(_read_exact(stream, size, at_boundary=False))
    return header, blobs


# ----------------------------------------------------------------------
# Handshake
# ----------------------------------------------------------------------
def hello_frame(**fields) -> dict:
    """A versioned hello header with extra identity ``fields``."""
    return {"type": "hello", "version": PROTOCOL_VERSION, **fields}


def check_hello(header: dict, *, who: str) -> dict:
    """Validate a peer's hello; returns it, or raises ProtocolError."""
    if header.get("type") != "hello":
        raise ProtocolError(f"{who} spoke before the handshake: expected a "
                            f"hello frame, got {header.get('type')!r}")
    version = header.get("version")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"{who} speaks protocol version {version!r}; this "
                            f"build speaks {PROTOCOL_VERSION} (no downgrade)")
    return header


# ----------------------------------------------------------------------
# Payload codecs
# ----------------------------------------------------------------------
def encode_record(record: SignalRecord) -> dict:
    """JSON-safe record form (bit-exact float round trip via json)."""
    return record_to_dict(record)


def decode_record(data: dict) -> SignalRecord:
    return record_from_dict(data)


def encode_decision(decision: GeofenceDecision) -> dict:
    # score rides as a plain float: python's json emits the Infinity
    # literal for +inf and repr-shortest text otherwise, and both ends
    # of the link are this codec, so the round trip is bit-exact.
    return {"inside": decision.inside, "score": decision.score,
            "confident": decision.confident, "buffered": decision.buffered,
            "updated": decision.updated}


def decode_decision(data: dict) -> GeofenceDecision:
    try:
        return GeofenceDecision(inside=bool(data["inside"]),
                                score=float(data["score"]),
                                confident=bool(data["confident"]),
                                buffered=bool(data["buffered"]),
                                updated=bool(data["updated"]))
    except (KeyError, TypeError, ValueError) as error:
        raise ProtocolError(f"malformed decision payload {data!r}: {error}") \
            from error
