"""Cluster router: hash-partitioned fan-out over worker processes.

The :class:`Router` is the front end of the multi-process serving
cluster: it owns N workers (each a
:class:`~repro.serve.cluster.worker.ClusterWorker` wrapping a serial
:class:`~repro.serve.runtime.ServingRuntime`), routes every tenant to
the worker ``shard_index(tenant_id, num_workers)`` selects — the same
CRC-32 partition the runtime uses for threads, now one level up for
processes — and speaks the length-prefixed protocol of
:mod:`repro.serve.cluster.protocol` over each worker's stdio pipes.

Design notes
------------
* **One reader thread per worker** drains the worker's output stream:
  ``response`` frames resolve the pending request they answer (matched
  by id), ``replicate`` frames are applied to the standby
  :class:`~repro.serve.cluster.replicate.Follower` inline, and EOF —
  the worker died or closed — fails every pending request on that link
  with :class:`WorkerDied` instead of letting callers hang.
* **Per-request timeouts**: a request that gets no response within
  ``timeout`` seconds raises :class:`WorkerTimeout`; a late response is
  dropped (its pending entry is gone), so the link stays usable.
* **Remote errors come back typed**: a worker maps an exception to
  ``{kind, message}`` and the router re-raises the matching local type
  (ValueError, KeyError, CheckpointError, ...) so cluster callers keep
  the single-process error contract.
* **Replication ordering**: workers emit replicate frames *before* the
  response of the request that committed them, and the reader thread
  processes frames in order — so after ``flush()`` returns, the standby
  has been offered every write the flush performed.  That is the whole
  failover story: flush, then :meth:`promote`.

Observability: the router is the cluster's single read surface.
:meth:`metrics` fans the ``obs_snapshot`` op to every live worker and
merges the answers with :mod:`repro.obs.cluster` — worker counters sum,
gauges fold per family semantics, histograms merge exactly, and every
worker family is also exposed per worker under a ``worker`` label —
alongside the router-local families
(``repro_router_requests_total{op,worker,outcome}``,
``repro_router_request_seconds{op}``, ``repro_replication_*``) and the
:class:`~repro.obs.cluster.ClusterHealthMonitor` rollup
(``repro_health_*{probe,worker}``).  Every data-plane request carries
the router tracer's ``{"trace_id", "span_id"}`` context in its frame
header, so worker slow traces graft back under the router span that
caused them (:func:`~repro.obs.cluster.stitch_traces`).  Pass
``observability=False`` for a bare cluster — the overhead benchmark's
control arm: workers run without registries, requests carry no trace
context, and :meth:`metrics` serves router-local families only.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.core.protocols import GeofenceDecision
from repro.core.records import SignalRecord
from repro.obs.cluster import ClusterHealthMonitor, cluster_families, stitch_traces
from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer, maybe_span
from repro.serve.checkpoint import CheckpointError
from repro.serve.cluster.protocol import (
    ProtocolError,
    check_hello,
    decode_decision,
    encode_record,
    hello_frame,
    read_frame,
    write_frame,
)
from repro.serve.cluster.replicate import Follower, ReplicationError, ShippedWrite
from repro.serve.cluster.worker import WorkerConfig, spawn_local_worker
from repro.serve.policy import MaintenancePolicy
from repro.serve.registry import ModelRegistry
from repro.serve.runtime import shard_index
from repro.serve.telemetry import TenantStats

__all__ = ["ClusterError", "Router", "SubprocessWorkerHandle", "WorkerDied",
           "WorkerTimeout", "spawn_local_worker", "spawn_subprocess_worker"]


class ClusterError(RuntimeError):
    """A cluster-level failure (dead worker, timeout, bad response)."""


class WorkerDied(ClusterError):
    """The worker closed its link (crashed or exited) mid-conversation."""


class WorkerTimeout(ClusterError):
    """No response within the per-request timeout; the link stays usable."""


# Remote error kinds the router re-raises as their local types, keeping
# the single-process error contract across the wire.  Anything else
# (including a worker-side bug) surfaces as ClusterError.
_REMOTE_KINDS: dict[str, type] = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "RuntimeError": RuntimeError,
    "CheckpointError": CheckpointError,
    "ReplicationError": ReplicationError,
    "ProtocolError": ProtocolError,
}


class SubprocessWorkerHandle:
    """A worker child process; reader/writer are its stdio pipes."""

    def __init__(self, proc: subprocess.Popen):
        self.proc = proc
        self.reader = proc.stdout
        self.writer = proc.stdin
        self.pid = proc.pid

    def alive(self) -> bool:
        return self.proc.poll() is None

    def close(self) -> None:
        # stdin first: the child sees EOF and exits, which EOFs stdout
        # and releases any thread blocked reading it — only then is
        # closing the reader safe (close shares the blocked read's lock).
        try:
            self.writer.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            self.proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - wedged child
            self.proc.kill()
            self.proc.wait(timeout=10.0)
        try:
            self.reader.close()
        except OSError:  # pragma: no cover - already closed
            pass


def spawn_subprocess_worker(config: WorkerConfig) -> SubprocessWorkerHandle:
    """The default launcher: ``python -m repro.serve.cluster.worker``.

    The child resolves :mod:`repro` from this process's installed copy
    (its source root is prepended to ``PYTHONPATH``), so the cluster
    works from a source tree without installation.
    """
    import repro
    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src_root if not existing \
        else src_root + os.pathsep + existing
    # -c instead of -m: runpy would import the cluster package (whose
    # __init__ imports .worker) before executing worker as __main__, and
    # warn about the resulting double module.
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys; from repro.serve.cluster.worker import main; "
         "sys.exit(main())"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, env=env)
    return SubprocessWorkerHandle(proc)


class _Pending:
    """One in-flight request awaiting its response frame."""

    __slots__ = ("event", "result", "error")

    def __init__(self):
        self.event = threading.Event()
        self.result = None
        self.error: BaseException | None = None


class _WorkerLink:
    """Router-side state for one worker: handle, lock, pending, reader."""

    def __init__(self, index: int, handle):
        self.index = index
        self.handle = handle
        self.write_lock = threading.Lock()
        self.pending: dict[int, _Pending] = {}
        self.pending_lock = threading.Lock()
        self.next_id = 0
        self.dead = False
        self.reader_thread: threading.Thread | None = None
        self.pid: int | None = getattr(handle, "pid", None)

    def take_id(self) -> int:
        self.next_id += 1
        return self.next_id

    def fail_pending(self, error: BaseException) -> None:
        with self.pending_lock:
            entries = list(self.pending.values())
            self.pending.clear()
        for entry in entries:
            entry.error = error
            entry.event.set()


class Router:
    """Multi-process serving front end with optional warm standby.

    Parameters
    ----------
    registry:
        Checkpoint registry root shared by all workers (each serves its
        disjoint hash slice of the tenants in it).
    num_workers:
        Worker processes to partition tenants across.
    capacity / incremental / policy / worker_shards / quarantine_size:
        Forwarded to each worker's :class:`ServingRuntime` (capacity is
        per worker-shard, as it is per runtime-shard; ``quarantine_size``
        arms per-tenant quarantine buffers for starvation recovery, 0 =
        off).
    standby:
        Registry root (or :class:`ModelRegistry` / :class:`Follower`) to
        replicate committed writes into.  Enables delta shipping in
        every worker; read lag via :meth:`replication_lag`, fail over
        via :meth:`promote`.  An empty standby root is first seeded with
        a snapshot copy of the registry (before any worker starts), so
        deltas from pre-existing tenants chain off a known base — a
        pre-built :class:`Follower` is used as-is (the caller seeds it).
    timeout:
        Per-request response timeout in seconds.
    launcher:
        ``WorkerConfig -> handle`` factory.  Default spawns subprocess
        workers; pass :func:`~repro.serve.cluster.worker.spawn_local_worker`
        for in-process worker threads (tests, single-process fallback).
    observability:
        Run each worker with its own registry/tracer/probes and stamp
        router trace context into every request (default on — the obs
        plane is bit-identical on decisions and <5 % on the critical
        path, enforced by ``bench_cluster.py``).  Pass False for the
        bare control arm.
    slow_trace_threshold:
        Root spans at least this many seconds long enter the slow-trace
        rings, router and workers alike.
    """

    def __init__(self, registry: ModelRegistry | str | Path,
                 num_workers: int = 2, capacity: int = 8,
                 incremental: bool = True,
                 policy: MaintenancePolicy | None = None,
                 standby: Follower | ModelRegistry | str | Path | None = None,
                 timeout: float = 30.0,
                 launcher: Callable[[WorkerConfig], object] | None = None,
                 worker_shards: int = 1,
                 quarantine_size: int = 0,
                 observability: bool = True,
                 slow_trace_threshold: float = 0.1):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        root = registry.root if isinstance(registry, ModelRegistry) \
            else Path(registry)
        self.registry_root = Path(root)
        self.num_workers = num_workers
        self.timeout = timeout
        if standby is None or isinstance(standby, Follower):
            self.follower = standby
        else:
            self.follower = Follower(standby)
            self._seed_standby()
        self._launcher = launcher or spawn_subprocess_worker
        self._closed = False
        self.final_worker_stats: list[dict | None] = [None] * num_workers

        self.metrics_registry = MetricsRegistry()
        self._requests_total = self.metrics_registry.counter(
            "repro_router_requests_total",
            help="Requests routed to workers, by op and outcome",
            labels=("op", "worker", "outcome"))
        self._request_seconds = self.metrics_registry.histogram(
            "repro_router_request_seconds",
            help="Round-trip request latency through a worker",
            labels=("op",))
        self._replication_lag_gauge = self.metrics_registry.gauge(
            "repro_replication_lag",
            help="Seconds between a primary commit and its standby apply")
        self._replication_applied = self.metrics_registry.counter(
            "repro_replication_applied_total",
            help="Shipped writes applied to the standby", labels=("source",))
        self._replication_rejected = self.metrics_registry.counter(
            "repro_replication_rejected_total",
            help="Shipped writes the standby refused (torn/divergent)")
        self._observability = observability
        self.tracer = Tracer(slow_threshold=slow_trace_threshold,
                             trace_prefix="router") if observability else None
        self.cluster_health = ClusterHealthMonitor(metrics=self.metrics_registry)
        self.last_replication_error: str | None = None

        policy_dict = policy.to_dict() if policy is not None else None
        self._links: list[_WorkerLink] = []
        try:
            for index in range(num_workers):
                config = WorkerConfig(
                    registry=str(self.registry_root), index=index,
                    num_workers=num_workers, capacity=capacity,
                    incremental=incremental,
                    replicate=self.follower is not None,
                    policy=policy_dict, shards=worker_shards,
                    quarantine_size=quarantine_size,
                    observability=observability,
                    slow_trace_threshold=slow_trace_threshold)
                self._links.append(self._connect(index, config))
        except BaseException:
            self.close()
            raise

    def _seed_standby(self) -> None:
        """Snapshot-copy the registry into an empty standby root.

        Workers write *deltas* for tenants provisioned before this
        router existed, and a delta cannot seed a tenant — without a
        base the standby would reject every pre-existing tenant's writes
        forever.  Runs before any worker spawns, so the copy is a
        consistent cold snapshot the first shipped deltas chain off.
        """
        standby_root = Path(self.follower.registry.root)
        if standby_root.exists() and any(standby_root.iterdir()):
            return                        # non-empty: the operator seeded it
        if not self.registry_root.is_dir():
            return                        # nothing to seed from yet
        shutil.copytree(self.registry_root, standby_root, dirs_exist_ok=True)

    # ------------------------------------------------------------------
    # Link management
    # ------------------------------------------------------------------
    def _connect(self, index: int, config: WorkerConfig) -> _WorkerLink:
        handle = self._launcher(config)
        link = _WorkerLink(index, handle)
        write_frame(handle.writer, hello_frame(config=config.to_dict()))
        frame = read_frame(handle.reader)
        if frame is None:
            raise WorkerDied(f"worker {index} closed its link before the "
                             "handshake")
        hello = check_hello(frame[0], who=f"worker {index}")
        if hello.get("worker") != index:
            raise ProtocolError(f"worker {index} identified itself as "
                                f"{hello.get('worker')!r}")
        link.pid = hello.get("pid", link.pid)
        link.reader_thread = threading.Thread(
            target=self._read_loop, args=(link,),
            name=f"cluster-router-reader-{index}", daemon=True)
        link.reader_thread.start()
        return link

    def _read_loop(self, link: _WorkerLink) -> None:
        while True:
            try:
                frame = read_frame(link.handle.reader)
            except (ProtocolError, OSError, ValueError) as error:
                self._mark_dead(link, f"worker {link.index} desynchronised: "
                                      f"{error}")
                return
            if frame is None:
                self._mark_dead(link, f"worker {link.index} closed its link "
                                      "(process died or shut down)")
                return
            header, blobs = frame
            kind = header.get("type")
            if kind == "response":
                with link.pending_lock:
                    entry = link.pending.pop(header.get("id"), None)
                if entry is None:
                    continue              # late response after a timeout
                if header.get("ok"):
                    entry.result = header.get("result")
                else:
                    error = header.get("error") or {}
                    entry.error = _REMOTE_KINDS.get(
                        error.get("kind"), ClusterError)(
                            f"worker {link.index}: {error.get('message')}")
                entry.event.set()
            elif kind == "replicate":
                self._apply_replicate(link, header, blobs)
            # Unknown unsolicited frame types are skipped: forward
            # compatibility for workers that ship more than we read.

    def _mark_dead(self, link: _WorkerLink, message: str) -> None:
        link.dead = True
        link.fail_pending(WorkerDied(message))

    def _apply_replicate(self, link: _WorkerLink, header: dict,
                         blobs: list) -> None:
        if self.follower is None:
            return                        # replication not configured here
        try:
            write = ShippedWrite.from_frame(header, blobs)
            self.follower.apply(write)
        except ReplicationError as error:
            self.last_replication_error = str(error)
            self._replication_rejected.inc()
            return
        self._replication_applied.labels(source=write.source).inc()
        self._replication_lag_gauge.set(self.follower.last_lag_seconds)

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _link_for(self, tenant_id: str) -> _WorkerLink:
        return self._links[shard_index(tenant_id, self.num_workers)]

    def _send(self, link: _WorkerLink, op: str, payload: dict,
              trace: dict | None = None) -> _Pending:
        if self._closed:
            raise ClusterError("router is closed")
        if link.dead:
            raise WorkerDied(f"worker {link.index} is dead")
        entry = _Pending()
        with link.write_lock:
            request_id = link.take_id()
            with link.pending_lock:
                link.pending[request_id] = entry
            header = {"type": "request", "id": request_id, "op": op, **payload}
            if trace is not None:
                header["trace"] = trace
            try:
                write_frame(link.handle.writer, header)
            except (OSError, ValueError) as error:
                with link.pending_lock:
                    link.pending.pop(request_id, None)
                self._mark_dead(link, f"worker {link.index} pipe broke: {error}")
                raise WorkerDied(f"worker {link.index} pipe broke: "
                                 f"{error}") from error
        return entry

    def _wait(self, link: _WorkerLink, entry: _Pending, op: str,
              timeout: float | None):
        if not entry.event.wait(self.timeout if timeout is None else timeout):
            with link.pending_lock:   # drop it so a late response is ignored
                for request_id, pending in list(link.pending.items()):
                    if pending is entry:
                        link.pending.pop(request_id)
            self._count(op, link, "timeout")
            raise WorkerTimeout(f"worker {link.index} gave no {op!r} response "
                                f"within {self.timeout if timeout is None else timeout}s")
        if entry.error is not None:
            self._count(op, link,
                        "dead" if isinstance(entry.error, WorkerDied) else "error")
            raise entry.error
        self._count(op, link, "ok")
        return entry.result

    def _count(self, op: str, link: _WorkerLink, outcome: str) -> None:
        self._requests_total.labels(op=op, worker=str(link.index),
                                    outcome=outcome).inc()

    def _request(self, link: _WorkerLink, op: str, payload: dict,
                 timeout: float | None = None):
        started = time.perf_counter()
        with maybe_span(self.tracer, f"cluster.{op}",
                        worker=link.index) as span:
            trace = self.tracer.inject(span) if span is not None else None
            entry = self._send(link, op, payload, trace=trace)
            try:
                return self._wait(link, entry, op, timeout)
            finally:
                self._request_seconds.labels(op=op).observe(
                    time.perf_counter() - started)

    def _fan_out(self, op: str, payload_for: Callable[[_WorkerLink], dict],
                 timeout: float | None = None) -> list:
        """Send one request to every live worker, then wait for all."""
        with maybe_span(self.tracer, f"cluster.{op}",
                        fan_out=len(self._links)) as span:
            trace = self.tracer.inject(span) if span is not None else None
            sent: list[tuple[_WorkerLink, _Pending]] = []
            for link in self._links:
                sent.append((link, self._send(link, op, payload_for(link),
                                              trace=trace)))
            return [self._wait(link, entry, op, timeout)
                    for link, entry in sent]

    def _fan_out_tolerant(self, op: str, timeout: float | None = None
                          ) -> tuple[dict[int, object], set[int]]:
        """Best-effort fan-out for observability reads.

        Unlike :meth:`_fan_out`, a dead, broken, or silent worker does
        not abort the collection — monitoring must keep answering
        *because* part of the cluster is failing.  Returns the results
        of the workers that answered plus the set that did not.
        """
        results: dict[int, object] = {}
        failed: set[int] = set()
        sent: list[tuple[_WorkerLink, _Pending]] = []
        for link in self._links:
            if link.dead:
                failed.add(link.index)
                continue
            try:
                sent.append((link, self._send(link, op, {})))
            except ClusterError:
                failed.add(link.index)
        for link, entry in sent:
            try:
                results[link.index] = self._wait(link, entry, op, timeout)
            except ClusterError:
                failed.add(link.index)
        return results, failed

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def observe(self, tenant_id: str, record: SignalRecord) -> GeofenceDecision:
        result = self._request(self._link_for(tenant_id), "observe",
                               {"tenant": tenant_id,
                                "record": encode_record(record)})
        return decode_decision(result)

    def observe_many(self, items: Iterable[tuple[str, SignalRecord]]
                     ) -> list[GeofenceDecision]:
        """Batched dispatch: split by worker, all workers in flight at
        once, answers reassembled in input order."""
        items = list(items)
        by_worker: dict[int, list[int]] = {}
        for position, (tenant_id, _) in enumerate(items):
            by_worker.setdefault(shard_index(tenant_id, self.num_workers),
                                 []).append(position)
        with maybe_span(self.tracer, "cluster.observe_many",
                        items=len(items), workers=len(by_worker)) as span:
            trace = self.tracer.inject(span) if span is not None else None
            sent: list[tuple[_WorkerLink, _Pending, list[int]]] = []
            for index, positions in by_worker.items():
                link = self._links[index]
                payload = {"items": [[items[p][0], encode_record(items[p][1])]
                                     for p in positions]}
                sent.append((link, self._send(link, "observe_many", payload,
                                              trace=trace),
                             positions))
            decisions: list[GeofenceDecision | None] = [None] * len(items)
            for link, entry, positions in sent:
                batch = self._wait(link, entry, "observe_many", None)
                for position, data in zip(positions, batch):
                    decisions[position] = decode_decision(data)
            return decisions

    def score(self, tenant_id: str, record: SignalRecord) -> float:
        return float(self._request(self._link_for(tenant_id), "score",
                                   {"tenant": tenant_id,
                                    "record": encode_record(record)}))

    # ------------------------------------------------------------------
    # Tenant lifecycle / maintenance
    # ------------------------------------------------------------------
    def provision(self, tenant_id: str, records: Sequence[SignalRecord],
                  metadata: dict | None = None, spec=None,
                  timeout: float | None = None) -> dict:
        """Provision on the owning worker; returns ``{tenant, model}``.

        (The fitted model object lives in the worker process — callers
        that need it load it from the registry.)  Training can far
        exceed the serving timeout, so this defaults to 10x it.
        """
        payload = {"tenant": tenant_id,
                   "records": [encode_record(r) for r in records],
                   "metadata": metadata,
                   "spec": spec.to_dict() if spec is not None else None}
        return self._request(self._link_for(tenant_id), "provision", payload,
                             timeout=10 * self.timeout if timeout is None
                             else timeout)

    def maintain(self) -> int:
        """One maintenance pump + sweep on every worker; total drained."""
        return sum(self._fan_out("maintain", lambda link: {}))

    def flush(self, tenant_id: str | None = None) -> int:
        """Write back dirty tenants; returns tenants written.

        When replication is on, the standby has been offered every
        flushed write by the time this returns (workers ship before
        responding; the reader applies in order).
        """
        if tenant_id is not None:
            return int(self._request(self._link_for(tenant_id), "flush",
                                     {"tenant": tenant_id}))
        return sum(self._fan_out("flush", lambda link: {}))

    def ping(self) -> list[dict]:
        return self._fan_out("ping", lambda link: {})

    def worker_stats(self) -> list[dict]:
        """Per-worker ``{worker, pid, requests, busy_seconds, runtime}``."""
        return self._fan_out("stats", lambda link: {})

    def stats(self) -> dict:
        """Live cluster aggregate, mid-run and dead-worker tolerant.

        Sums each responding worker's request counts, busy seconds,
        residency, pending decisions and fleet telemetry totals into
        one view — the numbers :attr:`final_worker_stats` only yields
        at shutdown, available while the cluster serves.
        """
        results, failed = self._fan_out_tolerant("stats")
        totals = TenantStats()
        requests, busy = 0, 0.0
        resident, pending = 0, 0
        workers: list[dict] = []
        for index in sorted(results):
            stat = results[index]
            workers.append(stat)
            requests += stat["requests"]
            busy += stat["busy_seconds"]
            runtime = stat["runtime"]
            resident += sum(runtime["resident"])
            pending += sum(runtime["pending_decisions"])
            totals.merge(TenantStats(**runtime["totals"]))
        return {"live_workers": self.live_workers,
                "unresponsive": sorted(failed),
                "requests": requests, "busy_seconds": busy,
                "resident": resident, "pending_decisions": pending,
                "totals": totals.as_dict(), "workers": workers}

    # ------------------------------------------------------------------
    # Replication / failover
    # ------------------------------------------------------------------
    def replication_lag(self) -> float:
        """Commit-to-apply lag (seconds) of the newest standby write.

        0.0 when replication is off or nothing has shipped yet; also the
        ``replication_lag`` health probe's input.
        """
        return 0.0 if self.follower is None else self.follower.lag_seconds()

    def replication_stats(self) -> dict | None:
        if self.follower is None:
            return None
        stats = self.follower.stats()
        stats["last_error"] = self.last_replication_error
        return stats

    def promote(self):
        """Promote the standby (flush + compact); returns the report.

        The inverse of a failover runbook step: callers normally flush
        (or lose only unflushed in-memory state), stop this router, then
        serve from the promoted registry.  Promoting while workers still
        stream writes is safe for the promoted copy (it is a snapshot of
        applied commits) but later shipped deltas may no longer chain.
        """
        if self.follower is None:
            raise ClusterError("router has no standby to promote "
                               "(constructed without standby=...)")
        return self.follower.promote()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def worker_metrics(self) -> dict[int, dict | None]:
        """Each worker's ``runtime.metrics()`` dict, by worker index.

        ``None`` marks a worker that runs without observability or did
        not answer (dead, broken pipe, timeout) — the caller decides
        whether that is a merge gap or a health incident.
        """
        results, failed = self._fan_out_tolerant("obs_snapshot")
        out: dict[int, dict | None] = {index: None for index in failed}
        out.update(results)
        return dict(sorted(out.items()))

    def metrics(self) -> dict:
        """Cluster-wide observability snapshot.

        Fans ``obs_snapshot`` to every live worker, folds the answers
        into the router-local families (see
        :func:`~repro.obs.cluster.cluster_families`), grades cluster
        health (worker probe worst-of + liveness + replication lag),
        and stitches router→worker slow-trace trees.  Shape matches a
        runtime snapshot (``families`` / ``health`` / ``traces``) plus
        the per-worker ``workers`` liveness list.
        """
        if self.follower is not None:
            self._replication_lag_gauge.set(self.follower.lag_seconds())
        if self._observability:
            snapshots, failed = self._fan_out_tolerant("obs_snapshot")
        else:
            snapshots, failed = {}, set()
        worker_up = {link.index: not link.dead and link.index not in failed
                     for link in self._links}
        # Health first: the rollup mirrors into this registry's gauges,
        # which the snapshot below must already see.
        health = self.cluster_health.check(
            worker_up,
            worker_probes={index: (snap or {}).get("health")
                           for index, snap in snapshots.items()},
            replication_lag=self.replication_lag())
        families = cluster_families(
            self.metrics_registry.snapshot(),
            {index: snap["families"] for index, snap in snapshots.items()
             if snap})
        traces = stitch_traces(
            self.tracer.snapshot() if self.tracer is not None else None,
            {index: snap.get("traces") for index, snap in snapshots.items()
             if snap})
        return {"families": families,
                "health": {name: result.as_dict()
                           for name, result in health.items()},
                "traces": traces,
                "workers": [{"index": link.index, "pid": link.pid,
                             "dead": link.dead} for link in self._links]}

    def health_report(self) -> dict:
        """Graded cluster health: folded probes + per-worker detail.

        The :meth:`~repro.obs.cluster.ClusterHealthMonitor.report` form
        (``status`` / ``probes`` / ``workers``) the CLI renders for
        ``repro cluster --health``; cheaper than :meth:`metrics` when
        only grades are wanted.
        """
        if self._observability:
            snapshots, failed = self._fan_out_tolerant("health")
        else:
            snapshots, failed = {}, set()
        worker_up = {link.index: not link.dead and link.index not in failed
                     for link in self._links}
        return self.cluster_health.report(
            worker_up, worker_probes=snapshots,
            replication_lag=self.replication_lag())

    def export_prometheus(self) -> str:
        return render_prometheus(self.metrics())

    @property
    def live_workers(self) -> int:
        return sum(not link.dead for link in self._links)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Graceful shutdown: each worker flushes, reports, and exits."""
        if self._closed:
            return
        self._closed = True
        for link in self._links:
            if link.dead:
                continue
            try:
                entry = _Pending()
                with link.write_lock:
                    request_id = link.take_id()
                    with link.pending_lock:
                        link.pending[request_id] = entry
                    write_frame(link.handle.writer,
                                {"type": "request", "id": request_id,
                                 "op": "shutdown"})
                if entry.event.wait(self.timeout) and entry.error is None:
                    self.final_worker_stats[link.index] = entry.result
            except (OSError, ValueError):
                pass                      # already gone; reap below
        for link in self._links:
            link.handle.close()
            if link.reader_thread is not None:
                link.reader_thread.join(timeout=10.0)

    def __enter__(self) -> "Router":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
