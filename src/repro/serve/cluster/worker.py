"""Cluster worker: one :class:`ServingRuntime` behind a protocol link.

A worker owns one registry partition — the disjoint slice of tenants the
router hashes to it with the same CRC-32
:func:`~repro.serve.runtime.shard_index` the runtime uses for in-process
shards — and serves requests serially off its link.  Serial dispatch is
what makes cluster decisions bit-identical to the single-process
runtime: within a worker there is no interleaving to order, and across
workers tenants are disjoint, so the only coordination a request needs
is the router's routing function.

The same :class:`ClusterWorker` runs two ways:

* as a child process (``python -m repro.serve.cluster.worker``) over its
  stdio pipes — the deployment shape, launched by
  :class:`~repro.serve.cluster.router.Router`'s default launcher;
* in-process over a socketpair (:func:`spawn_local_worker`) — the test
  and coverage shape, byte-identical protocol, no fork.

Configuration travels in the router's hello frame, so both shapes share
one code path from the first byte.  When the config enables
replication, a :class:`~repro.serve.cluster.replicate.DeltaShipper`
subscribes to the worker's registry and every committed checkpoint write
is flushed to the link as a ``replicate`` frame *before* the response to
the request that caused it — when the router has read a response, the
standby has already been offered every write that response implies.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from dataclasses import dataclass, field

from repro.serve.cluster.protocol import (
    ProtocolError,
    check_hello,
    decode_record,
    encode_decision,
    hello_frame,
    read_frame,
    write_frame,
)
from repro.obs.tracing import maybe_span
from repro.serve.cluster.replicate import DeltaShipper
from repro.serve.policy import MaintenancePolicy
from repro.serve.runtime import ServingRuntime, shard_index

__all__ = ["ClusterWorker", "LocalWorkerHandle", "WorkerConfig", "main",
           "spawn_local_worker"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs to build its runtime, JSON-safe.

    ``index`` / ``num_workers`` define the partition this worker owns:
    it serves exactly the tenants with ``shard_index(t, num_workers) ==
    index`` and rejects the rest (a misroute is a router bug, not a
    quiet data race).
    """

    registry: str
    index: int
    num_workers: int
    capacity: int = 8
    incremental: bool = True
    replicate: bool = False
    policy: dict | None = None    # MaintenancePolicy.to_dict() form
    shards: int = 1               # runtime shards inside this worker
    quarantine_size: int = 0      # per-tenant quarantine capacity (0 = off)
    observability: bool = True    # per-worker registry/tracer/probes
    slow_trace_threshold: float = 0.1

    def to_dict(self) -> dict:
        return {"registry": self.registry, "index": self.index,
                "num_workers": self.num_workers, "capacity": self.capacity,
                "incremental": self.incremental, "replicate": self.replicate,
                "policy": self.policy, "shards": self.shards,
                "quarantine_size": self.quarantine_size,
                "observability": self.observability,
                "slow_trace_threshold": self.slow_trace_threshold}

    @classmethod
    def from_dict(cls, data: dict) -> "WorkerConfig":
        try:
            return cls(registry=str(data["registry"]), index=int(data["index"]),
                       num_workers=int(data["num_workers"]),
                       capacity=int(data.get("capacity", 8)),
                       incremental=bool(data.get("incremental", True)),
                       replicate=bool(data.get("replicate", False)),
                       policy=data.get("policy"),
                       shards=int(data.get("shards", 1)),
                       quarantine_size=int(data.get("quarantine_size", 0)),
                       observability=bool(data.get("observability", True)),
                       slow_trace_threshold=float(
                           data.get("slow_trace_threshold", 0.1)))
        except (KeyError, TypeError, ValueError) as error:
            raise ProtocolError(f"bad worker config: {error}") from error


class ClusterWorker:
    """Serves protocol requests over a (reader, writer) stream pair.

    :meth:`run` performs the handshake (the router's hello carries the
    :class:`WorkerConfig`), builds the runtime, then loops: read one
    request, execute it against the runtime, flush any replication
    frames the request committed, answer.  EOF from the router — or a
    ``shutdown`` request — flushes every dirty tenant and exits, so
    killing a router never strands unwritten state in its workers.
    """

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self.runtime: ServingRuntime | None = None
        self.config: WorkerConfig | None = None
        self.shipper: DeltaShipper | None = None
        self.requests_served = 0
        self.busy_seconds = 0.0       # process_time inside request handling

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def run(self) -> int:
        """Serve until EOF or shutdown; returns requests served."""
        frame = read_frame(self.reader)
        if frame is None:
            return 0                  # router connected and left: clean no-op
        header, _ = frame
        check_hello(header, who="router")
        self.config = config = WorkerConfig.from_dict(header.get("config", {}))
        policy = MaintenancePolicy.from_dict(config.policy) \
            if config.policy else None
        # Serial mode (scheduler_interval=None): the router fans explicit
        # `maintain` requests instead, so maintenance interleaves with
        # requests identically to a serial runtime — a background ticker
        # would reintroduce timing nondeterminism per worker.
        self.runtime = ServingRuntime(
            config.registry, num_shards=config.shards,
            capacity=config.capacity, incremental=config.incremental,
            policy=policy, scheduler_interval=None,
            observability=config.observability,
            slow_trace_threshold=config.slow_trace_threshold,
            quarantine_size=config.quarantine_size)
        if config.replicate:
            self.shipper = DeltaShipper(source=f"worker-{config.index}")
            self.shipper.attach(self.runtime.registry)
        write_frame(self.writer, hello_frame(worker=config.index,
                                             pid=os.getpid()))
        try:
            while True:
                frame = read_frame(self.reader)
                if frame is None:
                    break
                header, _ = frame
                if header.get("type") != "request":
                    raise ProtocolError(
                        f"worker expected a request frame, got "
                        f"{header.get('type')!r}")
                if not self._serve_one(header):
                    break
        finally:
            self._teardown()
        return self.requests_served

    def _teardown(self) -> None:
        if self.runtime is not None:
            self.runtime.flush()
            try:
                self._ship_pending()
            except (OSError, ValueError):  # router already gone / link closed
                pass
            if self.shipper is not None:
                self.shipper.detach()
            self.runtime.close()
            self.runtime = None

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def _serve_one(self, header: dict) -> bool:
        """Execute one request; returns False when the loop should end."""
        request_id = header.get("id")
        started = time.process_time()
        try:
            # The root span joins the router's trace when the request
            # header carries one; everything the dispatch opens (fleet
            # observe/refresh spans) nests under it, so the router can
            # stitch a cross-process tree from the slow-trace rings.
            with maybe_span(self.runtime.tracer,
                            f"worker.{header.get('op')}",
                            context=header.get("trace"),
                            worker=self.config.index):
                result = self._dispatch(header)
        except Exception as error:  # noqa: BLE001 - mapped, not swallowed
            self.busy_seconds += time.process_time() - started
            self.requests_served += 1
            self._ship_pending()
            write_frame(self.writer, {
                "type": "response", "id": request_id, "ok": False,
                "error": {"kind": type(error).__name__, "message": str(error)}})
            return True
        self.busy_seconds += time.process_time() - started
        self.requests_served += 1
        # Replication frames go out before the response: a router that
        # has read this response has already been offered every write
        # the request committed.
        self._ship_pending()
        write_frame(self.writer, {"type": "response", "id": request_id,
                                  "ok": True, "result": result})
        return header.get("op") != "shutdown"

    def _ship_pending(self) -> None:
        if self.shipper is None:
            return
        for write in self.shipper.drain():
            ship_header, blobs = write.to_frame()
            write_frame(self.writer, ship_header, blobs)

    def _check_owner(self, tenant_id: str) -> str:
        config = self.config
        owner = shard_index(tenant_id, config.num_workers)
        if owner != config.index:
            raise ValueError(
                f"tenant {tenant_id!r} belongs to worker {owner}, not "
                f"{config.index}: the router misrouted this request")
        return tenant_id

    def _dispatch(self, header: dict):
        op = header.get("op")
        runtime = self.runtime
        if op == "observe":
            tenant = self._check_owner(str(header["tenant"]))
            decision = runtime.observe(tenant, decode_record(header["record"]))
            return encode_decision(decision)
        if op == "observe_many":
            items = [(self._check_owner(str(tenant)), decode_record(record))
                     for tenant, record in header["items"]]
            return [encode_decision(d) for d in runtime.observe_many(items)]
        if op == "score":
            tenant = self._check_owner(str(header["tenant"]))
            return runtime.score(tenant, decode_record(header["record"]))
        if op == "provision":
            tenant = self._check_owner(str(header["tenant"]))
            records = [decode_record(r) for r in header["records"]]
            spec = None
            if header.get("spec") is not None:
                from repro.pipeline import PipelineSpec
                spec = PipelineSpec.from_dict(header["spec"])
            model = runtime.provision(tenant, records,
                                      metadata=header.get("metadata"),
                                      spec=spec)
            return {"tenant": tenant, "model": type(model).__name__}
        if op == "maintain":
            return runtime.maintain()
        if op == "flush":
            tenant = header.get("tenant")
            if tenant is not None:
                return runtime.flush(self._check_owner(str(tenant)))
            return runtime.flush()
        if op == "stats":
            return self._stats()
        if op == "obs_snapshot":
            # None (not an error) when this worker runs bare: the router
            # merges whoever answered and reports the rest as obs-less.
            if runtime.metrics_registry is None:
                return None
            return runtime.metrics()
        if op == "health":
            if runtime.health is None:
                return None
            return runtime.health_report()
        if op == "ping":
            return {"worker": self.config.index, "pid": os.getpid()}
        if op == "shutdown":
            # _teardown (in run's finally) flushes; report final numbers.
            runtime.flush()
            self._ship_pending()
            return self._stats()
        raise ValueError(f"unknown cluster op {op!r}")

    def _stats(self) -> dict:
        out = {"worker": self.config.index, "pid": os.getpid(),
               "requests": self.requests_served,
               "busy_seconds": self.busy_seconds,
               "runtime": self.runtime.stats()}
        if self.shipper is not None:
            out["shipped"] = self.shipper.shipped_total
        return out


# ----------------------------------------------------------------------
# In-process launcher (tests, coverage, single-process fallback)
# ----------------------------------------------------------------------
@dataclass
class LocalWorkerHandle:
    """A worker thread over a socketpair, quacking like a subprocess.

    Exposes what the router needs from a worker handle: ``reader`` /
    ``writer`` binary streams, ``alive()``, ``close()``, and ``pid``
    (None here — no process to signal).
    """

    reader: object
    writer: object
    thread: threading.Thread
    sockets: tuple = field(default=())
    pid: int | None = None

    def alive(self) -> bool:
        return self.thread.is_alive()

    def close(self) -> None:
        # Shut the socket down first: a blocked read holds the buffered
        # stream's lock, and stream.close() needs that same lock — an
        # OS-level shutdown wakes the reader (EOF) so close can proceed.
        for sock in self.sockets:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:  # pragma: no cover - peer already gone
                pass
        self.thread.join(timeout=10.0)
        for stream in (self.reader, self.writer):
            try:
                stream.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        for sock in self.sockets:
            try:
                sock.close()
            except OSError:  # pragma: no cover
                pass


def spawn_local_worker(_config: WorkerConfig) -> LocalWorkerHandle:
    """Launch a :class:`ClusterWorker` thread over a socketpair.

    The config argument is unused (it travels in the router's hello, as
    it does for subprocess workers); the signature matches the router's
    launcher contract.
    """
    router_sock, worker_sock = socket.socketpair()
    worker_reader = worker_sock.makefile("rb")
    worker_writer = worker_sock.makefile("wb")
    worker = ClusterWorker(worker_reader, worker_writer)

    def _run() -> None:
        try:
            worker.run()
        except (ProtocolError, OSError):  # router vanished mid-frame
            pass
        finally:
            for stream in (worker_reader, worker_writer):
                try:
                    stream.close()
                except OSError:  # pragma: no cover
                    pass
            worker_sock.close()

    thread = threading.Thread(target=_run, name="cluster-local-worker",
                              daemon=True)
    thread.start()
    return LocalWorkerHandle(reader=router_sock.makefile("rb"),
                             writer=router_sock.makefile("wb"),
                             thread=thread,
                             sockets=(router_sock,))


# ----------------------------------------------------------------------
# Subprocess entry point
# ----------------------------------------------------------------------
def main() -> int:
    """``python -m repro.serve.cluster.worker``: serve over stdio.

    stdout is the protocol channel, so anything else that prints must
    not reach it: the worker rebinds ``sys.stdout`` to stderr before
    serving (library code that prints diagnostics then lands somewhere
    harmless).
    """
    reader = sys.stdin.buffer
    writer = sys.stdout.buffer
    sys.stdout = sys.stderr
    worker = ClusterWorker(reader, writer)
    try:
        worker.run()
    except (ProtocolError, OSError) as error:
        print(f"cluster worker exiting: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
