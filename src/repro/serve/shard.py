"""One shard of a :class:`~repro.serve.runtime.ServingRuntime`.

A :class:`FleetShard` owns a complete, self-contained serving stack for
its slice of the tenant space: a :class:`~repro.serve.fleet.GeofenceFleet`
(its own lock, LRU budget and telemetry — observes on different shards
never contend), a :class:`~repro.serve.controller.FleetController`
executing the shard's maintenance policies, and a **decision bus**: the
data plane appends each (tenant, decision) pair to a lock-free queue
instead of stepping the controller inline, and the maintenance worker
drains the queue on its own thread.  That keeps the control plane's
bookkeeping — and any refresh it decides to run — entirely off the
observe path, while the controller itself stays single-threaded (only
the pump thread ever touches it).

The shard adds no semantics of its own: every data-plane call delegates
straight to the fleet, which is what makes a single-shard serial
runtime bit-identical to a bare :class:`GeofenceFleet`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Sequence

from repro.core.protocols import GeofenceDecision, GeofenceModel
from repro.core.records import SignalRecord
from repro.pipeline import PipelineSpec
from repro.serve.controller import FleetController
from repro.serve.fleet import DEFAULT_RESERVOIR_SIZE, GeofenceFleet
from repro.serve.policy import MaintenancePolicy
from repro.serve.registry import ModelRegistry
from repro.serve.telemetry import FleetTelemetry

__all__ = ["FleetShard"]


class FleetShard:
    """A fleet + controller + decision queue, serving one tenant slice.

    Parameters mirror :class:`~repro.serve.fleet.GeofenceFleet`; the
    shard builds its own fleet so nothing is shared with sibling shards
    except the (process-safe) checkpoint registry.

    ``track_decisions`` arms the decision bus.  It defaults to on only
    when some policy could ever act (a non-no-op default policy or
    explicit per-tenant overrides) — otherwise every appended decision
    would wait for a pump that never comes.
    """

    def __init__(self, index: int, registry: ModelRegistry,
                 capacity: int = 8,
                 model_factory: Callable[[], GeofenceModel] | None = None,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 incremental: bool = True,
                 max_delta_chain: int | None = None,
                 delta_max_fraction: float | None = None,
                 policy: MaintenancePolicy | None = None,
                 policies: dict[str, MaintenancePolicy] | None = None,
                 track_decisions: bool | None = None,
                 metrics=None, tracer=None,
                 tenant_class_of: Callable[[str], str] | None = None,
                 quarantine_size: int = 0,
                 quarantine_seed: int = 0):
        knobs = {}
        if max_delta_chain is not None:
            knobs["max_delta_chain"] = max_delta_chain
        if delta_max_fraction is not None:
            knobs["delta_max_fraction"] = delta_max_fraction
        self.index = index
        # One registry is shared across shards; the shard label keeps
        # this shard's series apart, so the fleet's telemetry mirror and
        # the controller's action counters both carry it.
        telemetry = FleetTelemetry(metrics=metrics, shard=str(index),
                                   tenant_class_of=tenant_class_of) \
            if metrics is not None else None
        self.fleet = GeofenceFleet(registry, capacity=capacity,
                                   model_factory=model_factory,
                                   telemetry=telemetry,
                                   reservoir_size=reservoir_size,
                                   incremental=incremental,
                                   quarantine_size=quarantine_size,
                                   quarantine_seed=quarantine_seed,
                                   tracer=tracer, **knobs)
        self.controller = FleetController(self.fleet, policy, policies,
                                          metrics=metrics, tracer=tracer,
                                          shard=str(index))
        if track_decisions is None:
            track_decisions = (policy is not None and not policy.is_noop()) \
                or bool(policies)
        self.track_decisions = track_decisions
        # The decision bus.  collections.deque appends/poplefts are
        # atomic under the GIL, so the observe path pays one append and
        # no lock; only the pump thread removes.
        self._pending: "deque[tuple[str, GeofenceDecision]]" = deque()

    # ------------------------------------------------------------------
    # Data plane (delegation + decision bus)
    # ------------------------------------------------------------------
    def observe(self, tenant_id: str, record: SignalRecord) -> GeofenceDecision:
        decision = self.fleet.observe(tenant_id, record)
        if self.track_decisions:
            self._pending.append((tenant_id, decision))
        return decision

    def observe_many(self, items: Iterable[tuple[str, SignalRecord]]) -> list[GeofenceDecision]:
        items = list(items)
        decisions = self.fleet.observe_many(items)
        if self.track_decisions:
            for (tenant_id, _), decision in zip(items, decisions):
                self._pending.append((tenant_id, decision))
        return decisions

    def score(self, tenant_id: str, record: SignalRecord) -> float:
        return self.fleet.score(tenant_id, record)

    # ------------------------------------------------------------------
    # Lifecycle / maintenance mechanics (delegation)
    # ------------------------------------------------------------------
    def provision(self, tenant_id: str, records: Sequence[SignalRecord],
                  metadata: dict | None = None,
                  spec: PipelineSpec | None = None) -> GeofenceModel:
        return self.fleet.provision(tenant_id, records, metadata=metadata, spec=spec)

    def refresh(self, tenant_id: str, admit_new_macs_after: int | None = None) -> int:
        return self.fleet.refresh(tenant_id, admit_new_macs_after=admit_new_macs_after)

    def reprovision(self, tenant_id: str) -> GeofenceModel:
        return self.fleet.reprovision(tenant_id)

    def reprovision_from_quarantine(self, tenant_id: str,
                                    max_fpr: float | None = 0.5) -> GeofenceModel:
        return self.fleet.reprovision_from_quarantine(tenant_id, max_fpr=max_fpr)

    def evict(self, tenant_id: str) -> bool:
        return self.fleet.evict(tenant_id)

    def flush(self, tenant_id: str | None = None) -> int:
        return self.fleet.flush(tenant_id)

    def close(self) -> None:
        self.fleet.close()

    # ------------------------------------------------------------------
    # Control plane (called from the maintenance worker only)
    # ------------------------------------------------------------------
    def pump(self, max_steps: int | None = None) -> int:
        """Drain queued decisions into the controller; returns the count.

        Single-consumer: only the maintenance worker (or a serial
        caller) may pump.  The controller evaluates its policies as the
        decisions fold in, so scheduled/triggered refreshes execute
        here — on the pump thread, never on the observe path.  A
        refresh's heavy rebuild additionally drops the shard's fleet
        lock (see :meth:`GeofenceFleet.refresh`), so observes keep
        flowing even *during* maintenance.
        """
        drained = 0
        while max_steps is None or drained < max_steps:
            try:
                tenant_id, decision = self._pending.popleft()
            except IndexError:
                break
            self.controller.step(tenant_id, decision)
            drained += 1
        return drained

    def sweep(self) -> dict[str, list[str]]:
        """One controller maintain() pass (flush / idle-evict clauses)."""
        return self.controller.maintain()

    @property
    def pending_decisions(self) -> int:
        return len(self._pending)

    @property
    def resident_tenants(self) -> list[str]:
        return self.fleet.resident_tenants

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FleetShard(index={self.index}, resident="
                f"{len(self.fleet.resident_tenants)}, pending={len(self._pending)})")
