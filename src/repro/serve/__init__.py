"""Model persistence and multi-tenant fleet serving.

The paper's deployment model is one pipeline per user premises
(Table II); this package turns the in-memory pipeline into a servable
asset:

* :mod:`repro.serve.checkpoint` — versioned on-disk format (npz arrays
  + JSON manifest, with the declarative pipeline spec embedded) for any
  fitted pipeline exposing ``state_dict``;
* :mod:`repro.serve.registry` — per-tenant checkpoint store with
  atomic writes;
* :mod:`repro.serve.fleet` — LRU-cached multi-tenant server with dirty
  write-back, batched dispatch, heterogeneous per-tenant arms and a
  bounded recent-inlier reservoir per tenant (the **data plane**, plus
  the maintenance mechanics);
* :mod:`repro.serve.telemetry` — per-tenant / fleet-wide counters;
* :mod:`repro.serve.policy` — declarative
  :class:`~repro.serve.policy.MaintenancePolicy` (JSON round trip,
  embeddable in a :class:`~repro.pipeline.spec.PipelineSpec`);
* :mod:`repro.serve.controller` — the **control plane**:
  :class:`~repro.serve.controller.FleetController` executes policies
  (coordinated refresh, re-provision, flush, idle eviction, quarantine
  recovery) against a fleet from the decision stream;
* :mod:`repro.serve.quarantine` — the starvation-recovery evidence
  store: a seed-deterministic, admission-gated
  :class:`~repro.serve.quarantine.QuarantineBuffer` of rejected but
  home-anchored observations, from which
  :meth:`~repro.serve.fleet.GeofenceFleet.reprovision_from_quarantine`
  can re-anchor a tenant whose inlier reservoir has starved;
* :mod:`repro.serve.runtime` / :mod:`repro.serve.shard` /
  :mod:`repro.serve.scheduler` — the **serving daemon**:
  :class:`~repro.serve.runtime.ServingRuntime` hash-partitions tenants
  across :class:`~repro.serve.shard.FleetShard`\\ s (independent locks,
  LRU slices and telemetry) and runs policy maintenance on a
  :class:`~repro.serve.scheduler.MaintenanceScheduler` background
  worker, off the observe path, with incremental (delta) checkpoint
  write-backs;
* :mod:`repro.serve.cluster` — the **scale-out layer**: a
  :class:`~repro.serve.cluster.router.Router` hash-partitions tenants
  across worker *processes* (each a serial runtime over its registry
  slice, spoken to over a length-prefixed framing protocol) and
  optionally delta-ships every committed checkpoint write to a warm
  standby registry a :class:`~repro.serve.cluster.replicate.Follower`
  can ``promote()`` for failover.

Observability lives in the sibling :mod:`repro.obs` package; a
:class:`~repro.serve.runtime.ServingRuntime` wires it through every
layer by default (``observability=True``) and exposes
``runtime.metrics()`` / ``runtime.export_prometheus()``.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    INCREMENTAL_VERSION,
    SUPPORTED_VERSIONS,
    CheckpointError,
    CommitInfo,
    StateBaseline,
    WriteStats,
    last_commit,
    last_write,
    load_checkpoint,
    load_checkpoint_with_baseline,
    load_checkpoint_with_manifest,
    read_manifest,
    save_checkpoint,
    save_incremental,
    spec_from_manifest,
)
from repro.serve.controller import FleetController
from repro.serve.fleet import (
    DEFAULT_RESERVOIR_SIZE,
    QUARANTINE_METADATA_KEY,
    RESERVOIR_METADATA_KEY,
    GeofenceFleet,
)
from repro.serve.policy import MaintenancePolicy, RecoveryPolicy
from repro.serve.quarantine import (
    DEFAULT_QUARANTINE_SIZE,
    ConsistencyGate,
    QuarantineBuffer,
    home_anchor_macs,
)
from repro.serve.registry import ModelRegistry, validate_tenant_id
from repro.serve.runtime import ServingRuntime, shard_index
from repro.serve.scheduler import MaintenanceScheduler
from repro.serve.shard import FleetShard
from repro.serve.telemetry import FleetTelemetry, TenantStats

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CommitInfo",
    "ConsistencyGate",
    "DEFAULT_QUARANTINE_SIZE",
    "DEFAULT_RESERVOIR_SIZE",
    "FleetController",
    "FleetShard",
    "FleetTelemetry",
    "GeofenceFleet",
    "INCREMENTAL_VERSION",
    "MaintenancePolicy",
    "MaintenanceScheduler",
    "ModelRegistry",
    "QUARANTINE_METADATA_KEY",
    "QuarantineBuffer",
    "RESERVOIR_METADATA_KEY",
    "RecoveryPolicy",
    "SUPPORTED_VERSIONS",
    "ServingRuntime",
    "StateBaseline",
    "TenantStats",
    "WriteStats",
    "home_anchor_macs",
    "last_commit",
    "last_write",
    "load_checkpoint",
    "load_checkpoint_with_baseline",
    "load_checkpoint_with_manifest",
    "read_manifest",
    "save_checkpoint",
    "save_incremental",
    "shard_index",
    "spec_from_manifest",
    "validate_tenant_id",
]
