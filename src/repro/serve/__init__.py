"""Model persistence and multi-tenant fleet serving.

The paper's deployment model is one pipeline per user premises
(Table II); this package turns the in-memory pipeline into a servable
asset:

* :mod:`repro.serve.checkpoint` — versioned on-disk format (npz arrays
  + JSON manifest, with the declarative pipeline spec embedded) for any
  fitted pipeline exposing ``state_dict``;
* :mod:`repro.serve.registry` — per-tenant checkpoint store with
  atomic writes;
* :mod:`repro.serve.fleet` — LRU-cached multi-tenant server with dirty
  write-back, batched dispatch and heterogeneous per-tenant arms;
* :mod:`repro.serve.telemetry` — per-tenant / fleet-wide counters.
"""

from repro.serve.checkpoint import (
    CHECKPOINT_VERSION,
    SUPPORTED_VERSIONS,
    CheckpointError,
    load_checkpoint,
    load_checkpoint_with_manifest,
    read_manifest,
    save_checkpoint,
    spec_from_manifest,
)
from repro.serve.fleet import GeofenceFleet
from repro.serve.registry import ModelRegistry, validate_tenant_id
from repro.serve.telemetry import FleetTelemetry, TenantStats

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "FleetTelemetry",
    "GeofenceFleet",
    "ModelRegistry",
    "SUPPORTED_VERSIONS",
    "TenantStats",
    "load_checkpoint",
    "load_checkpoint_with_manifest",
    "read_manifest",
    "save_checkpoint",
    "spec_from_manifest",
    "validate_tenant_id",
]
