"""The fleet control plane: policy-driven maintenance over a GeofenceFleet.

The split: the **data plane** is ``GeofenceFleet.observe``/``score`` —
the hot path, untouched by this module.  The **control plane** is a
:class:`FleetController` that taps the decision stream, folds it into
per-tenant telemetry windows (observation counts, unembeddable rate,
self-update-buffer rate), and executes the clauses of a declarative
:class:`~repro.serve.policy.MaintenancePolicy`: scheduled or
telemetry-triggered **coordinated refresh** (embedding-cache rebuild +
detector refit on the tenant's recent-inlier reservoir, one atomic
operation), escalation to a full **re-provision**, periodic
**write-back**, **idle eviction** during :meth:`maintain` sweeps, and —
when the policy carries a :class:`~repro.serve.policy.RecoveryPolicy` —
quarantine-fed **recovery** from reservoir starvation, executed
autonomously or surfaced as a pending proposal for operator approval.

The controller deliberately keeps its own telemetry rather than reading
``fleet.telemetry``: the fleet folds an evicted tenant's counters into a
retired aggregate (memory bounding), which would reset the controller's
cadence arithmetic every eviction.  Control decisions are therefore a
pure function of the decision stream — deterministic replay produces
deterministic maintenance, which is what makes refresh policies
*measurable* in the drift harness.

Per-tenant policy resolution, most specific wins: an explicit
``policies[tenant_id]`` entry, else the ``maintenance`` block of the
resident model's :class:`~repro.pipeline.spec.PipelineSpec`, else the
controller's default policy (a no-op unless configured otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.protocols import GeofenceDecision
from repro.obs.health import grade
from repro.obs.tracing import maybe_span
from repro.serve.fleet import GeofenceFleet
from repro.serve.policy import MaintenancePolicy, RecoveryPolicy
from repro.serve.telemetry import FleetTelemetry, TenantStats

__all__ = ["FleetController", "TenantControlState"]


@dataclass
class TenantControlState:
    """Controller-side bookkeeping for one tenant (all observation counts)."""

    checked_at: int = 0          # observations at the last policy evaluation
    refreshed_at: int = 0        # observations at the last refresh/reprovision
    flushed_at: int = 0          # observations at the last policy-driven flush
    window: TenantStats = field(default_factory=TenantStats)  # counters at last eval
    trigger_streak: int = 0      # consecutive telemetry-triggered refreshes
    idle_sweeps: int = 0         # consecutive maintain() sweeps with no traffic
    swept_at: int = 0            # observations at the last maintain() sweep
    failed_refresh_streak: int = 0  # consecutive failed refresh/reprovision attempts
    last_inside_at: int = 0      # observations at the last inside decision


class FleetController:
    """Executes maintenance policies against a fleet.

    Parameters
    ----------
    fleet:
        The :class:`~repro.serve.fleet.GeofenceFleet` to maintain.
    policy:
        Default policy for tenants without a more specific one; the
        default default is the no-op :class:`MaintenancePolicy()`.
    policies:
        Per-tenant overrides (tenant_id -> policy).
    metrics / tracer / shard:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to count
        maintenance actions into
        (``repro_maintenance_actions_total{shard, action}``), an
        optional :class:`~repro.obs.tracing.Tracer` wrapping each
        executed refresh/reprovision in a ``maintenance`` span, and the
        ``shard`` label value for the counters.
    """

    def __init__(self, fleet: GeofenceFleet, policy: MaintenancePolicy | None = None,
                 policies: dict[str, MaintenancePolicy] | None = None,
                 metrics=None, tracer=None, shard: str = "0"):
        self.fleet = fleet
        self.policy = policy if policy is not None else MaintenancePolicy()
        self.policies = dict(policies or {})
        self.telemetry = FleetTelemetry()
        self.tracer = tracer
        self._shard = str(shard)
        self._actions_family = metrics.counter(
            "repro_maintenance_actions_total",
            help="Maintenance actions executed by the control plane",
            labels=("shard", "action")) if metrics is not None else None
        self._action_children: dict[str, object] = {}
        self._states: dict[str, TenantControlState] = {}
        # Pending recovery proposals (tenant_id -> arming evidence) for
        # policies with recovery.auto=False: surfaced to the operator
        # (runtime.pending_recoveries / `repro maintain`), consumed by
        # approve_recovery/deny_recovery.
        self._proposals: dict[str, dict] = {}
        # Action log: (tenant_id, action) in execution order, for tests,
        # benchmarks and the CLI report.  Bounded by callers that care.
        self.actions: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Policy resolution
    # ------------------------------------------------------------------
    def policy_for(self, tenant_id: str) -> MaintenancePolicy:
        """Most specific policy: explicit > tenant spec block > default."""
        explicit = self.policies.get(tenant_id)
        if explicit is not None:
            return explicit
        model = self.fleet.resident(tenant_id)
        spec = getattr(model, "spec", None)
        block = getattr(spec, "maintenance", None)
        if block is not None:
            return block
        return self.policy

    def state(self, tenant_id: str) -> TenantControlState:
        return self._states.setdefault(tenant_id, TenantControlState())

    # ------------------------------------------------------------------
    # The control-plane tap
    # ------------------------------------------------------------------
    def step(self, tenant_id: str, decision: GeofenceDecision) -> list[str]:
        """Fold one data-plane decision in; maybe act.  Returns actions.

        Call after every ``fleet.observe`` whose maintenance this
        controller owns (or use :meth:`observe`).  With the no-op
        policy this only increments counters — it never touches the
        model, so a controlled replay is bit-identical to an
        uncontrolled one.
        """
        self.telemetry.record_observation(tenant_id, decision)
        policy = self.policy_for(tenant_id)
        if policy.check_every <= 0:
            return []
        stats = self.telemetry.tenant(tenant_id)
        state = self.state(tenant_id)
        if decision.inside:
            # Per-tenant mirror of the fleet-wide reservoir_starvation
            # probe: observations since the last inside decision is what
            # recovery arming grades against the policy's window.
            state.last_inside_at = stats.observations
        if stats.observations - state.checked_at < policy.check_every:
            return []
        actions = self._evaluate(tenant_id, policy, stats, state)
        state.checked_at = stats.observations
        return actions

    def observe(self, tenant_id: str, record) -> GeofenceDecision:
        """Data-plane observe + control-plane step, one call."""
        decision = self.fleet.observe(tenant_id, record)
        self.step(tenant_id, decision)
        return decision

    # ------------------------------------------------------------------
    # Sweeps (periodic / CLI)
    # ------------------------------------------------------------------
    def maintain(self) -> dict[str, list[str]]:
        """One background sweep over the resident set.

        Applies the flush and idle-eviction clauses of each resident
        tenant's policy (refresh clauses stay on the decision-stream
        path, where the rates they consume are defined).  Returns the
        actions taken per tenant.
        """
        out: dict[str, list[str]] = {}
        for tenant_id in list(self.fleet.resident_tenants):
            policy = self.policy_for(tenant_id)
            state = self.state(tenant_id)
            stats = self.telemetry.tenant(tenant_id)
            actions: list[str] = []
            idle = stats.observations == state.swept_at
            state.idle_sweeps = state.idle_sweeps + 1 if idle else 0
            state.swept_at = stats.observations
            if policy.evict_idle_sweeps and state.idle_sweeps >= policy.evict_idle_sweeps:
                if self.fleet.evict(tenant_id):
                    actions.append("evict-idle")
                state.idle_sweeps = 0
            elif policy.flush_every and self.fleet.is_dirty(tenant_id):
                self.fleet.flush(tenant_id)
                actions.append("flush")
            if actions:
                self._log(tenant_id, actions)
                out[tenant_id] = actions
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate(self, tenant_id: str, policy: MaintenancePolicy,
                  stats: TenantStats, state: TenantControlState) -> list[str]:
        actions: list[str] = []
        has_rate_triggers = (policy.max_unembeddable_rate is not None
                             or policy.min_update_rate is not None)
        window_obs = stats.observations - state.window.observations
        unembeddable_rate = ((stats.unembeddable - state.window.unembeddable) / window_obs
                             if window_obs else 0.0)
        update_rate = ((stats.buffered - state.window.buffered) / window_obs
                       if window_obs else 0.0)
        # The window accumulates across evaluations until it is large
        # enough to trust its rates, then resets — otherwise a
        # check_every below min_window would make the rate triggers
        # silently unreachable (the window could never grow past one
        # check interval).
        if not has_rate_triggers or window_obs >= policy.min_window:
            state.window = stats
        scheduled = bool(policy.refresh_every) and \
            stats.observations - state.refreshed_at >= policy.refresh_every
        triggered = window_obs >= policy.min_window and (
            (policy.max_unembeddable_rate is not None
             and unembeddable_rate > policy.max_unembeddable_rate)
            or (policy.min_update_rate is not None
                and update_rate < policy.min_update_rate))
        recovered = self._maybe_recover(tenant_id, policy, stats, state, actions)
        if recovered:
            # A recovery (or its failed attempt) *is* this round's
            # maintenance; stacking a reservoir-fed refresh on top would
            # refit the world the recovery just replaced (or, on
            # failure, spin on the same starved reservoir).
            state.refreshed_at = stats.observations
        elif scheduled or triggered:
            escalate = (triggered and policy.reprovision_after
                        and state.trigger_streak >= policy.reprovision_after)
            verb = "reprovision" if escalate else "refresh"
            try:
                with maybe_span(self.tracer, "maintenance", tenant=tenant_id,
                                action=verb):
                    if escalate:
                        self.fleet.reprovision(tenant_id)
                        actions.append("reprovision")
                        state.trigger_streak = 0
                    else:
                        if policy.admit_new_macs_after:
                            self.fleet.refresh(
                                tenant_id,
                                admit_new_macs_after=policy.admit_new_macs_after)
                        else:
                            # No kwarg: stays compatible with fleet stand-ins
                            # that only implement refresh(tenant_id).
                            self.fleet.refresh(tenant_id)
                        actions.append("refresh")
                        state.trigger_streak = state.trigger_streak + 1 if triggered else 0
                state.failed_refresh_streak = 0
            except (TypeError, ValueError) as error:
                # Operational conditions, not crashes: an empty or
                # unembeddable reservoir (ValueError), or a controller-
                # level refresh policy meeting a tenant whose arm has no
                # refresh capability (TypeError — e.g. an INOA tenant in
                # a mixed fleet under a blanket policy).  Record it and
                # back off one refresh interval so the loop doesn't spin.
                # A *failed* triggered refresh still advances the
                # escalation streak — reprovision (a full refit, which
                # needs no refresh capability) is exactly the escape
                # hatch for a tenant whose refreshes cannot succeed.
                actions.append(f"{verb}-failed: {error}")
                state.failed_refresh_streak += 1
                if triggered and not escalate:
                    state.trigger_streak += 1
            state.refreshed_at = stats.observations
        elif window_obs >= policy.min_window:
            # A clean window clears the escalation streak.
            state.trigger_streak = 0
        if policy.flush_every and \
                stats.observations - state.flushed_at >= policy.flush_every:
            if self.fleet.is_dirty(tenant_id):
                self.fleet.flush(tenant_id)
                actions.append("flush")
            state.flushed_at = stats.observations
        if actions:
            self._log(tenant_id, actions)
        return actions

    def _maybe_recover(self, tenant_id: str, policy: MaintenancePolicy,
                       stats: TenantStats, state: TenantControlState,
                       actions: list[str]) -> bool:
        """Arm (and maybe execute) quarantine recovery for one tenant.

        Arms when the two health-probe signals fire together — the
        stuck-maintenance streak (``stuck_refresh``) has reached
        ``after_stuck`` and the starvation counter grades warn or worse
        against ``starvation_window`` (the very
        :func:`~repro.obs.health.grade` the ``reservoir_starvation``
        probe uses) — and the quarantine holds enough evidence.  With
        ``auto`` the recovery executes here and returns True (consuming
        this round's maintenance slot); otherwise a pending proposal is
        registered for the operator and False lets the normal refresh
        arithmetic continue unchanged.
        """
        recovery = policy.recovery
        if recovery is None:
            return False
        stuck = max(state.failed_refresh_streak, state.trigger_streak)
        starvation = stats.observations - state.last_inside_at
        starving = grade(starvation, recovery.starvation_window,
                         2 * recovery.starvation_window) != "ok"
        if stuck < recovery.after_stuck or not starving:
            return False
        depth = getattr(self.fleet, "quarantine_depth", lambda _t: 0)(tenant_id)
        if depth < recovery.min_quarantine:
            return False
        if not recovery.auto:
            if tenant_id not in self._proposals:
                self._proposals[tenant_id] = {
                    "armed_at": stats.observations, "stuck_streak": stuck,
                    "starvation": starvation, "quarantine_depth": depth,
                }
                actions.append("recover-proposed")
            return False
        try:
            with maybe_span(self.tracer, "maintenance", tenant=tenant_id,
                            action="recover"):
                self.fleet.reprovision_from_quarantine(
                    tenant_id, max_fpr=recovery.max_fpr)
            actions.append("recover")
            state.trigger_streak = 0
            state.failed_refresh_streak = 0
            state.last_inside_at = stats.observations
        except (TypeError, ValueError) as error:
            # Operational, like a failed refresh: a rolled-back refit
            # (post-recovery FPR above the guard) or a fleet stand-in
            # without the capability.  The streak keeps climbing so the
            # next armed evaluation tries again with fresher evidence.
            actions.append(f"recover-failed: {error}")
            state.failed_refresh_streak += 1
        self._proposals.pop(tenant_id, None)
        return True

    # ------------------------------------------------------------------
    # Recovery proposals (operator approval path)
    # ------------------------------------------------------------------
    def pending_recoveries(self) -> dict[str, dict]:
        """Copy of the pending recovery proposals, by tenant."""
        return {tenant_id: dict(proposal)
                for tenant_id, proposal in self._proposals.items()}

    def approve_recovery(self, tenant_id: str) -> None:
        """Execute a pending recovery proposal (operator approval).

        Raises ValueError when no proposal is pending, and re-raises the
        fleet's error when the refit rolls back — either way the
        proposal is consumed; a still-starving tenant re-proposes at its
        next armed evaluation.
        """
        if tenant_id not in self._proposals:
            raise ValueError(f"tenant {tenant_id!r} has no pending recovery "
                             "proposal")
        self._proposals.pop(tenant_id)
        policy = self.policy_for(tenant_id)
        recovery = policy.recovery if policy.recovery is not None \
            else RecoveryPolicy()
        with maybe_span(self.tracer, "maintenance", tenant=tenant_id,
                        action="recover"):
            self.fleet.reprovision_from_quarantine(tenant_id,
                                                   max_fpr=recovery.max_fpr)
        state = self.state(tenant_id)
        stats = self.telemetry.tenant(tenant_id)
        state.trigger_streak = 0
        state.failed_refresh_streak = 0
        state.last_inside_at = stats.observations
        state.refreshed_at = stats.observations
        self._log(tenant_id, ["recover"])

    def deny_recovery(self, tenant_id: str) -> bool:
        """Drop a pending proposal; True if one existed.  The tenant may
        re-propose at its next armed evaluation — denial is a deferral,
        not a permanent veto (policies are the place for vetoes)."""
        return self._proposals.pop(tenant_id, None) is not None

    def stuck_streaks(self) -> dict[str, int]:
        """``{tenant_id: consecutive stuck maintenance rounds}``.

        The per-tenant maximum of the failed-refresh streak and the
        trigger streak (telemetry-triggered refreshes that ran without
        clearing their trigger).  The second half matters for the
        starvation wall: refreshes *succeed mechanically* there — the
        pinned anchor still embeds under the old world — while fixing
        nothing, so the failure shows up as an uncleared trigger, not an
        exception.  This is the signal behind the ``stuck_refresh``
        health probe and recovery arming; only live streaks appear.
        """
        out: dict[str, int] = {}
        for tenant_id, state in self._states.items():
            streak = max(state.failed_refresh_streak, state.trigger_streak)
            if streak:
                out[tenant_id] = streak
        return out

    def failed_refresh_streaks(self) -> dict[str, int]:
        """``{tenant_id: consecutive failed refresh/reprovision attempts}``.

        Only tenants with a live streak appear; a success resets the
        tenant's streak to zero.  This is the raw signal behind the
        ``stuck_refresh`` health probe.
        """
        return {tenant_id: state.failed_refresh_streak
                for tenant_id, state in self._states.items()
                if state.failed_refresh_streak}

    def _log(self, tenant_id: str, actions: list[str]) -> None:
        self.actions.extend((tenant_id, action) for action in actions)
        if self._actions_family is not None:
            for action in actions:
                # "refresh-failed: <reason>" counts as "refresh-failed";
                # the free-text reason stays in the action log, off the
                # label (cardinality control).
                name = action.split(":", 1)[0]
                child = self._action_children.get(name)
                if child is None:
                    child = self._actions_family.labels(shard=self._shard,
                                                        action=name)
                    self._action_children[name] = child
                child.inc()
