"""The fleet control plane: policy-driven maintenance over a GeofenceFleet.

The split: the **data plane** is ``GeofenceFleet.observe``/``score`` —
the hot path, untouched by this module.  The **control plane** is a
:class:`FleetController` that taps the decision stream, folds it into
per-tenant telemetry windows (observation counts, unembeddable rate,
self-update-buffer rate), and executes the clauses of a declarative
:class:`~repro.serve.policy.MaintenancePolicy`: scheduled or
telemetry-triggered **coordinated refresh** (embedding-cache rebuild +
detector refit on the tenant's recent-inlier reservoir, one atomic
operation), escalation to a full **re-provision**, periodic
**write-back**, and **idle eviction** during :meth:`maintain` sweeps.

The controller deliberately keeps its own telemetry rather than reading
``fleet.telemetry``: the fleet folds an evicted tenant's counters into a
retired aggregate (memory bounding), which would reset the controller's
cadence arithmetic every eviction.  Control decisions are therefore a
pure function of the decision stream — deterministic replay produces
deterministic maintenance, which is what makes refresh policies
*measurable* in the drift harness.

Per-tenant policy resolution, most specific wins: an explicit
``policies[tenant_id]`` entry, else the ``maintenance`` block of the
resident model's :class:`~repro.pipeline.spec.PipelineSpec`, else the
controller's default policy (a no-op unless configured otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.protocols import GeofenceDecision
from repro.obs.tracing import maybe_span
from repro.serve.fleet import GeofenceFleet
from repro.serve.policy import MaintenancePolicy
from repro.serve.telemetry import FleetTelemetry, TenantStats

__all__ = ["FleetController", "TenantControlState"]


@dataclass
class TenantControlState:
    """Controller-side bookkeeping for one tenant (all observation counts)."""

    checked_at: int = 0          # observations at the last policy evaluation
    refreshed_at: int = 0        # observations at the last refresh/reprovision
    flushed_at: int = 0          # observations at the last policy-driven flush
    window: TenantStats = field(default_factory=TenantStats)  # counters at last eval
    trigger_streak: int = 0      # consecutive telemetry-triggered refreshes
    idle_sweeps: int = 0         # consecutive maintain() sweeps with no traffic
    swept_at: int = 0            # observations at the last maintain() sweep
    failed_refresh_streak: int = 0  # consecutive failed refresh/reprovision attempts


class FleetController:
    """Executes maintenance policies against a fleet.

    Parameters
    ----------
    fleet:
        The :class:`~repro.serve.fleet.GeofenceFleet` to maintain.
    policy:
        Default policy for tenants without a more specific one; the
        default default is the no-op :class:`MaintenancePolicy()`.
    policies:
        Per-tenant overrides (tenant_id -> policy).
    metrics / tracer / shard:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to count
        maintenance actions into
        (``repro_maintenance_actions_total{shard, action}``), an
        optional :class:`~repro.obs.tracing.Tracer` wrapping each
        executed refresh/reprovision in a ``maintenance`` span, and the
        ``shard`` label value for the counters.
    """

    def __init__(self, fleet: GeofenceFleet, policy: MaintenancePolicy | None = None,
                 policies: dict[str, MaintenancePolicy] | None = None,
                 metrics=None, tracer=None, shard: str = "0"):
        self.fleet = fleet
        self.policy = policy if policy is not None else MaintenancePolicy()
        self.policies = dict(policies or {})
        self.telemetry = FleetTelemetry()
        self.tracer = tracer
        self._shard = str(shard)
        self._actions_family = metrics.counter(
            "repro_maintenance_actions_total",
            help="Maintenance actions executed by the control plane",
            labels=("shard", "action")) if metrics is not None else None
        self._action_children: dict[str, object] = {}
        self._states: dict[str, TenantControlState] = {}
        # Action log: (tenant_id, action) in execution order, for tests,
        # benchmarks and the CLI report.  Bounded by callers that care.
        self.actions: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    # Policy resolution
    # ------------------------------------------------------------------
    def policy_for(self, tenant_id: str) -> MaintenancePolicy:
        """Most specific policy: explicit > tenant spec block > default."""
        explicit = self.policies.get(tenant_id)
        if explicit is not None:
            return explicit
        model = self.fleet.resident(tenant_id)
        spec = getattr(model, "spec", None)
        block = getattr(spec, "maintenance", None)
        if block is not None:
            return block
        return self.policy

    def state(self, tenant_id: str) -> TenantControlState:
        return self._states.setdefault(tenant_id, TenantControlState())

    # ------------------------------------------------------------------
    # The control-plane tap
    # ------------------------------------------------------------------
    def step(self, tenant_id: str, decision: GeofenceDecision) -> list[str]:
        """Fold one data-plane decision in; maybe act.  Returns actions.

        Call after every ``fleet.observe`` whose maintenance this
        controller owns (or use :meth:`observe`).  With the no-op
        policy this only increments counters — it never touches the
        model, so a controlled replay is bit-identical to an
        uncontrolled one.
        """
        self.telemetry.record_observation(tenant_id, decision)
        policy = self.policy_for(tenant_id)
        if policy.check_every <= 0:
            return []
        stats = self.telemetry.tenant(tenant_id)
        state = self.state(tenant_id)
        if stats.observations - state.checked_at < policy.check_every:
            return []
        actions = self._evaluate(tenant_id, policy, stats, state)
        state.checked_at = stats.observations
        return actions

    def observe(self, tenant_id: str, record) -> GeofenceDecision:
        """Data-plane observe + control-plane step, one call."""
        decision = self.fleet.observe(tenant_id, record)
        self.step(tenant_id, decision)
        return decision

    # ------------------------------------------------------------------
    # Sweeps (periodic / CLI)
    # ------------------------------------------------------------------
    def maintain(self) -> dict[str, list[str]]:
        """One background sweep over the resident set.

        Applies the flush and idle-eviction clauses of each resident
        tenant's policy (refresh clauses stay on the decision-stream
        path, where the rates they consume are defined).  Returns the
        actions taken per tenant.
        """
        out: dict[str, list[str]] = {}
        for tenant_id in list(self.fleet.resident_tenants):
            policy = self.policy_for(tenant_id)
            state = self.state(tenant_id)
            stats = self.telemetry.tenant(tenant_id)
            actions: list[str] = []
            idle = stats.observations == state.swept_at
            state.idle_sweeps = state.idle_sweeps + 1 if idle else 0
            state.swept_at = stats.observations
            if policy.evict_idle_sweeps and state.idle_sweeps >= policy.evict_idle_sweeps:
                if self.fleet.evict(tenant_id):
                    actions.append("evict-idle")
                state.idle_sweeps = 0
            elif policy.flush_every and self.fleet.is_dirty(tenant_id):
                self.fleet.flush(tenant_id)
                actions.append("flush")
            if actions:
                self._log(tenant_id, actions)
                out[tenant_id] = actions
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _evaluate(self, tenant_id: str, policy: MaintenancePolicy,
                  stats: TenantStats, state: TenantControlState) -> list[str]:
        actions: list[str] = []
        has_rate_triggers = (policy.max_unembeddable_rate is not None
                             or policy.min_update_rate is not None)
        window_obs = stats.observations - state.window.observations
        unembeddable_rate = ((stats.unembeddable - state.window.unembeddable) / window_obs
                             if window_obs else 0.0)
        update_rate = ((stats.buffered - state.window.buffered) / window_obs
                       if window_obs else 0.0)
        # The window accumulates across evaluations until it is large
        # enough to trust its rates, then resets — otherwise a
        # check_every below min_window would make the rate triggers
        # silently unreachable (the window could never grow past one
        # check interval).
        if not has_rate_triggers or window_obs >= policy.min_window:
            state.window = stats
        scheduled = bool(policy.refresh_every) and \
            stats.observations - state.refreshed_at >= policy.refresh_every
        triggered = window_obs >= policy.min_window and (
            (policy.max_unembeddable_rate is not None
             and unembeddable_rate > policy.max_unembeddable_rate)
            or (policy.min_update_rate is not None
                and update_rate < policy.min_update_rate))
        if scheduled or triggered:
            escalate = (triggered and policy.reprovision_after
                        and state.trigger_streak >= policy.reprovision_after)
            verb = "reprovision" if escalate else "refresh"
            try:
                with maybe_span(self.tracer, "maintenance", tenant=tenant_id,
                                action=verb):
                    if escalate:
                        self.fleet.reprovision(tenant_id)
                        actions.append("reprovision")
                        state.trigger_streak = 0
                    else:
                        if policy.admit_new_macs_after:
                            self.fleet.refresh(
                                tenant_id,
                                admit_new_macs_after=policy.admit_new_macs_after)
                        else:
                            # No kwarg: stays compatible with fleet stand-ins
                            # that only implement refresh(tenant_id).
                            self.fleet.refresh(tenant_id)
                        actions.append("refresh")
                        state.trigger_streak = state.trigger_streak + 1 if triggered else 0
                state.failed_refresh_streak = 0
            except (TypeError, ValueError) as error:
                # Operational conditions, not crashes: an empty or
                # unembeddable reservoir (ValueError), or a controller-
                # level refresh policy meeting a tenant whose arm has no
                # refresh capability (TypeError — e.g. an INOA tenant in
                # a mixed fleet under a blanket policy).  Record it and
                # back off one refresh interval so the loop doesn't spin.
                # A *failed* triggered refresh still advances the
                # escalation streak — reprovision (a full refit, which
                # needs no refresh capability) is exactly the escape
                # hatch for a tenant whose refreshes cannot succeed.
                actions.append(f"{verb}-failed: {error}")
                state.failed_refresh_streak += 1
                if triggered and not escalate:
                    state.trigger_streak += 1
            state.refreshed_at = stats.observations
        elif window_obs >= policy.min_window:
            # A clean window clears the escalation streak.
            state.trigger_streak = 0
        if policy.flush_every and \
                stats.observations - state.flushed_at >= policy.flush_every:
            if self.fleet.is_dirty(tenant_id):
                self.fleet.flush(tenant_id)
                actions.append("flush")
            state.flushed_at = stats.observations
        if actions:
            self._log(tenant_id, actions)
        return actions

    def failed_refresh_streaks(self) -> dict[str, int]:
        """``{tenant_id: consecutive failed refresh/reprovision attempts}``.

        Only tenants with a live streak appear; a success resets the
        tenant's streak to zero.  This is the raw signal behind the
        ``stuck_refresh`` health probe.
        """
        return {tenant_id: state.failed_refresh_streak
                for tenant_id, state in self._states.items()
                if state.failed_refresh_streak}

    def _log(self, tenant_id: str, actions: list[str]) -> None:
        self.actions.extend((tenant_id, action) for action in actions)
        if self._actions_family is not None:
            for action in actions:
                # "refresh-failed: <reason>" counts as "refresh-failed";
                # the free-text reason stays in the action log, off the
                # label (cardinality control).
                name = action.split(":", 1)[0]
                child = self._action_children.get(name)
                if child is None:
                    child = self._actions_family.labels(shard=self._shard,
                                                        action=name)
                    self._action_children[name] = child
                child.inc()
