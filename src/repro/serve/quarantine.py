"""Quarantine evidence buffers: recovery fuel for starved reservoirs.

``BENCH_fleet_drift.json``'s worst-case arm pins the failure mode this
module exists for: above ~45 % ambient-AP replacement every decision
goes *outside*, the anchor+recent inlier reservoir stops filling, and
nothing reservoir-fed (refresh or reprovision) can ever recover — the
model rejects the new world, so the new world never reaches the model.

The escape hatch is a second, strictly separated buffer.  A
:class:`QuarantineBuffer` holds **rejected-but-home-AP-anchored**
records: scans the model called outside (or could not embed at all) but
that still hear one of the premises' own access points near the top of
the scan.  Those are exactly the records a post-shock *inside* device
produces — the home APs survive (they belong to the premises; churn and
shock replace ambient infrastructure), while the ambient universe the
model was trained on is gone.  Crucially the buffer is **never used for
refresh**: a coordinated refresh refits only on the inlier reservoir,
so an attacker parked outside the fence cannot teach the detector
through the quarantine.  Quarantined evidence is consumed only by the
explicit, policy- or operator-approved full refit
(:meth:`~repro.serve.fleet.GeofenceFleet.reprovision_from_quarantine`).

Admission is defended in depth, in the spirit of consistency-regularized
semi-supervised RF fingerprinting (arxiv 2304.14795):

1. **Home-AP anchor** — some home MAC's RSS must be within
   ``anchor_margin_db`` of the scan's strongest reading.  Home MACs are
   derived from the tenant's pinned anchor records (the training set):
   MACs present in at least ``min_anchor_fraction`` of them.
2. **Consistency gate** — the rejection must be *stable under RSS
   augmentation*: a :class:`ConsistencyGate` re-scores ``passes``
   augmented copies (AP dropout + one clamped global gain offset per
   copy, mirroring :class:`~repro.rf.dynamics.DeviceGainDrift`) through
   the model's side-effect-free ``predict``; a record whose decision
   flips on any copy sits on the decision boundary and is discarded —
   only confident, augmentation-stable model-world mismatches qualify
   as recovery evidence.
3. **Seed-deterministic reservoir sampling** — a bounded buffer over an
   unbounded rejection stream.  Instead of serialising RNG state, slot
   choices hash ``(seed, tenant, admission index)``, so the retained
   set is a pure function of the admitted sequence: bit-identical
   across evict/reload, delta-checkpoint round trips and process
   restarts.

The buffer travels inside checkpoint metadata (next to the fleet's
``fleet_reservoir`` key, stripped from user metadata the same way — see
:mod:`repro.serve.registry`), so an evicted or offline tenant keeps its
evidence.  The *when to recover* policy lives in
:class:`~repro.serve.policy.RecoveryPolicy`; the arming logic (stuck
refreshes + reservoir starvation, the two health probes) lives in
:class:`~repro.serve.controller.FleetController`.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.io import record_from_dict, record_to_dict
from repro.core.records import SignalRecord

__all__ = [
    "ConsistencyGate",
    "DEFAULT_QUARANTINE_SIZE",
    "QuarantineBuffer",
    "home_anchor_macs",
]

# Default buffer capacity when quarantine is switched on (fleets default
# to 0 = disabled; `repro maintain --action recover` and the drift bench
# use this bound).  One buffer of SignalRecords is small — the cost that
# matters is the refit, which is explicit.
DEFAULT_QUARANTINE_SIZE = 256


def home_anchor_macs(records: Sequence[SignalRecord],
                     min_fraction: float = 0.6) -> frozenset[str]:
    """MACs present in at least ``min_fraction`` of the anchor records.

    The anchor is the provision-time training set: scans taken inside
    the premises.  A MAC heard in most of them is (with overwhelming
    likelihood) the premises' own AP — ambient neighbours fade in and
    out across the walk, the home APs do not.  Churn/shock schedules
    model exactly this: they replace ambient infrastructure and protect
    ``home_ap_ids``, which is what makes the derived set a stable
    post-shock anchor.
    """
    if not records:
        return frozenset()
    if not 0.0 < min_fraction <= 1.0:
        raise ValueError(f"min_fraction must be in (0, 1], got {min_fraction}")
    counts: dict[str, int] = {}
    for record in records:
        for mac in record.readings:
            counts[mac] = counts.get(mac, 0) + 1
    floor = min_fraction * len(records)
    return frozenset(mac for mac, n in counts.items() if n >= floor)


@dataclass(frozen=True)
class ConsistencyGate:
    """Decision-stability filter under RSS augmentation.

    A candidate (a record the model rejected) passes only when the
    model still rejects every one of ``passes`` augmented copies.  Each
    copy drops each reading independently with probability ``dropout``
    (at least the strongest survives — an empty scan tests nothing) and
    shifts every surviving RSS by one global gain offset drawn
    ``N(0, gain_sigma_db)`` and clamped to ``±max_gain_db`` — the same
    clamped-global-offset shape as
    :class:`~repro.rf.dynamics.DeviceGainDrift`, because that is the
    measured device-side variation a real decision must be invariant
    to.  Records that flip on any copy are boundary cases, not
    confident model-world mismatches, and make poor recovery evidence.

    Scoring uses the model's ``predict`` (``_embed(attach=False)``
    underneath), which never mutates the graph or the detector — the
    gate is invisible to the decision stream, which is what keeps
    quarantine-off and quarantine-on fleets bit-identical.
    """

    passes: int = 3
    dropout: float = 0.2
    gain_sigma_db: float = 1.0
    max_gain_db: float = 3.0

    def __post_init__(self):
        if isinstance(self.passes, bool) or not isinstance(self.passes, int) \
                or self.passes < 1:
            raise ValueError(f"passes must be an integer >= 1, got {self.passes!r}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got {self.dropout}")
        if self.gain_sigma_db < 0 or self.max_gain_db < 0:
            raise ValueError("gain_sigma_db and max_gain_db must be >= 0")

    def augment(self, record: SignalRecord, rng: np.random.Generator) -> SignalRecord:
        """One augmented copy: AP dropout + clamped global gain offset."""
        gain = float(np.clip(rng.normal(0.0, self.gain_sigma_db),
                             -self.max_gain_db, self.max_gain_db))
        # Sorted iteration: the number and order of rng draws must not
        # depend on dict insertion order, or determinism dies quietly.
        kept = [mac for mac in sorted(record.readings)
                if rng.random() >= self.dropout]
        if not kept:
            kept = [record.strongest_mac()]
        readings = {mac: record.readings[mac] + gain for mac in kept}
        return SignalRecord(readings, timestamp=record.timestamp,
                            position=record.position)

    def stable_rejection(self, model, record: SignalRecord,
                         rng: np.random.Generator) -> bool:
        """True when the model rejects all ``passes`` augmented copies."""
        return all(not model.predict(self.augment(record, rng))
                   for _ in range(self.passes))


class QuarantineBuffer:
    """Bounded, seed-deterministic evidence buffer for one tenant.

    Not thread-safe on its own: the owning
    :class:`~repro.serve.fleet.GeofenceFleet` mutates it under the
    fleet lock, exactly like the inlier reservoir.

    ``seen`` counts admitted candidates ever (the reservoir-sampling
    index); ``offered`` counts home-anchored candidates ever (the
    per-candidate RNG index for the gate).  Both persist with the
    records, so a reloaded buffer continues the *same* deterministic
    sample the resident one would have taken.
    """

    def __init__(self, capacity: int, seed: int = 0, tenant_key: str = "",
                 gate: ConsistencyGate | None = None,
                 anchor_margin_db: float = 12.0,
                 min_anchor_fraction: float = 0.6):
        if capacity < 1:
            raise ValueError(f"quarantine capacity must be >= 1, got {capacity}")
        if anchor_margin_db < 0:
            raise ValueError(f"anchor_margin_db must be >= 0, got {anchor_margin_db}")
        self.capacity = capacity
        self.seed = int(seed)
        self.tenant_key = str(tenant_key)
        self.gate = gate
        self.anchor_margin_db = float(anchor_margin_db)
        self.min_anchor_fraction = float(min_anchor_fraction)
        self.home_macs: frozenset[str] = frozenset()
        self.records: list[SignalRecord] = []
        self.seen = 0
        self.offered = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def set_home(self, macs: Iterable[str]) -> None:
        """Pin the home-AP anchor set (derived from the anchor reservoir)."""
        self.home_macs = frozenset(macs)

    def anchored(self, record: SignalRecord) -> bool:
        """Does some home MAC sit within ``anchor_margin_db`` of the top?"""
        if not self.home_macs or not record.readings:
            return False
        strongest = max(record.readings.values())
        floor = strongest - self.anchor_margin_db
        return any(record.readings.get(mac, -float("inf")) >= floor
                   for mac in self.home_macs)

    def consider(self, model, record: SignalRecord) -> str:
        """Offer one rejected record; returns the admission outcome.

        Outcomes (the ``outcome`` label on
        ``repro_quarantine_admissions_total``): ``"admitted"`` (in the
        buffer now), ``"no-anchor"`` (no home AP near the top of the
        scan), ``"inconsistent"`` (decision flipped under augmentation),
        ``"sampled-out"`` (passed both gates, lost the reservoir draw).
        """
        if not self.anchored(record):
            return "no-anchor"
        rng = self._candidate_rng(self.offered)
        self.offered += 1
        if self.gate is not None and hasattr(model, "predict") \
                and not self.gate.stable_rejection(model, record, rng):
            return "inconsistent"
        index = self.seen
        self.seen += 1
        if len(self.records) < self.capacity:
            self.records.append(record)
            return "admitted"
        # Algorithm R with a hash in place of an RNG: candidate `index`
        # lands in slot hash % (index + 1); it survives iff that slot is
        # a real one.  Admission probability capacity/(index+1), same as
        # classic reservoir sampling, but stateless — determinism needs
        # only the persisted counter, not serialised generator state.
        slot = self._slot_hash(index) % (index + 1)
        if slot < self.capacity:
            self.records[slot] = record
            return "admitted"
        return "sampled-out"

    def _slot_hash(self, index: int) -> int:
        return zlib.crc32(f"{self.seed}:{self.tenant_key}:{index}".encode())

    def _candidate_rng(self, index: int) -> np.random.Generator:
        key = zlib.crc32(self.tenant_key.encode())
        return np.random.default_rng(
            np.random.SeedSequence(entropy=self.seed, spawn_key=(key, index)))

    # ------------------------------------------------------------------
    # Introspection / consumption
    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self.records)

    @property
    def saturation(self) -> float:
        """Fill fraction in [0, 1] — the ``quarantine_saturation`` probe."""
        return len(self.records) / self.capacity

    def clear(self) -> None:
        """Consume the evidence (after a recovery refit): reset everything.

        The counters reset too — post-recovery the world is new, and the
        next sample should not be biased toward surviving the tail of
        the previous epoch's stream.
        """
        self.records = []
        self.seen = 0
        self.offered = 0

    # ------------------------------------------------------------------
    # Persistence (checkpoint metadata)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe state for checkpoint metadata."""
        return {
            "records": [record_to_dict(record) for record in self.records],
            "seen": self.seen,
            "offered": self.offered,
            "home": sorted(self.home_macs),
        }

    @classmethod
    def from_state(cls, state: Mapping, capacity: int, seed: int = 0,
                   tenant_key: str = "", gate: ConsistencyGate | None = None,
                   anchor_margin_db: float = 12.0,
                   min_anchor_fraction: float = 0.6) -> "QuarantineBuffer":
        """Rebuild from :meth:`state_dict` output.

        The *fleet's* capacity/seed/gate win over whatever wrote the
        state (config is not data); a shrunk capacity keeps the first
        ``capacity`` persisted records deterministically.
        """
        buffer = cls(capacity, seed=seed, tenant_key=tenant_key, gate=gate,
                     anchor_margin_db=anchor_margin_db,
                     min_anchor_fraction=min_anchor_fraction)
        buffer.records = [record_from_dict(item)
                          for item in state.get("records", ())][:capacity]
        buffer.seen = int(state.get("seen", len(buffer.records)))
        buffer.offered = int(state.get("offered", buffer.seen))
        buffer.set_home(state.get("home", ()))
        return buffer

    @property
    def dormant(self) -> bool:
        """True when there is nothing worth persisting."""
        return not self.records and not self.seen and not self.offered
