"""Per-tenant checkpoint store rooted at one directory.

Layout: ``root/<tenant_id>/`` is one checkpoint directory (see
:mod:`repro.serve.checkpoint`).  Tenant ids are restricted to a safe
character set so an id can never escape the root or collide with the
registry's own temp files.  All writes inherit the checkpoint module's
crash-safe semantics: ``save`` over an existing tenant commits by an
atomic manifest swap, so a concurrent ``load`` (or a crash mid-save)
sees either the old or the new complete checkpoint, never a chimera.
"""

from __future__ import annotations

import re
import shutil
from pathlib import Path

from repro.serve.checkpoint import (
    DEFAULT_DELTA_MAX_FRACTION,
    DEFAULT_MAX_DELTA_CHAIN,
    MANIFEST_NAME,
    CheckpointError,
    CommitInfo,
    StateBaseline,
    last_commit,
    load_checkpoint_with_baseline,
    load_checkpoint_with_manifest,
    read_manifest,
    save_checkpoint,
    save_incremental,
)

__all__ = ["ModelRegistry", "QUARANTINE_METADATA_KEY", "RESERVOIR_METADATA_KEY",
           "validate_tenant_id"]

_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")

# Checkpoint-metadata key the fleet stores its per-tenant recent-inlier
# reservoir under.  Serve-internal: :meth:`ModelRegistry.metadata`
# strips it so user metadata round-trips clean; read the raw manifest to
# see it.
RESERVOIR_METADATA_KEY = "fleet_reservoir"

# Same contract for the quarantine buffer (rejected-but-home-anchored
# recovery evidence, see repro.serve.quarantine): persisted next to the
# reservoir, stripped from user metadata the same way.
QUARANTINE_METADATA_KEY = "fleet_quarantine"


def validate_tenant_id(tenant_id: str) -> str:
    """Return ``tenant_id`` if it is registry-safe, else raise ValueError."""
    if not isinstance(tenant_id, str) or not _TENANT_RE.match(tenant_id):
        raise ValueError(
            f"invalid tenant id {tenant_id!r}: must be 1-128 chars of "
            "[A-Za-z0-9._-] starting with an alphanumeric")
    return tenant_id


class ModelRegistry:
    """Stores one checkpoint per tenant under a root directory."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Commit listeners: callables invoked synchronously, on the
        # saving thread, right after each committed write.  The caller
        # that serialises saves per tenant (the fleet lock) therefore
        # also serialises what the listener observes, so a listener may
        # safely read the just-committed files before the next save.
        self._listeners: list = []

    def path_for(self, tenant_id: str) -> Path:
        """The checkpoint directory a tenant's model lives in."""
        return self.root / validate_tenant_id(tenant_id)

    # ------------------------------------------------------------------
    # Commit events (the replication hook)
    # ------------------------------------------------------------------
    def subscribe(self, listener) -> "callable":
        """Call ``listener(tenant_id, CommitInfo)`` after every commit.

        Fires for full and delta saves alike (a provision, flush,
        eviction write-back or compaction all commit through here);
        returns an unsubscribe callable.  Listeners run on the saving
        thread — keep them cheap, or hand off to a queue.
        """
        self._listeners.append(listener)

        def unsubscribe() -> None:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass
        return unsubscribe

    def _notify(self, tenant_id: str) -> None:
        if not self._listeners:
            return
        info = last_commit()
        if info is None:  # pragma: no cover - save paths always note commits
            return
        for listener in list(self._listeners):
            listener(tenant_id, info)

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def save(self, tenant_id: str, model, metadata: dict | None = None) -> Path:
        """Checkpoint ``model`` as ``tenant_id``'s current model."""
        path = save_checkpoint(model, self.path_for(tenant_id), metadata=metadata)
        self._notify(tenant_id)
        return path

    def save_incremental(self, tenant_id: str, model,
                         baseline: StateBaseline | None,
                         metadata: dict | None = None,
                         max_chain: int = DEFAULT_MAX_DELTA_CHAIN,
                         max_fraction: float = DEFAULT_DELTA_MAX_FRACTION,
                         ) -> tuple[str, StateBaseline]:
        """Write-back via the incremental format when a delta suffices.

        Returns ``("delta" | "full", new_baseline)``; see
        :func:`repro.serve.checkpoint.save_incremental`.
        """
        result = save_incremental(model, self.path_for(tenant_id), baseline,
                                  metadata=metadata, max_chain=max_chain,
                                  max_fraction=max_fraction)
        self._notify(tenant_id)
        return result

    def delete(self, tenant_id: str) -> bool:
        """Remove a tenant's checkpoint; True if one existed."""
        path = self.path_for(tenant_id)
        if not path.is_dir():
            return False
        shutil.rmtree(path)
        return True

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def exists(self, tenant_id: str) -> bool:
        return (self.path_for(tenant_id) / MANIFEST_NAME).is_file()

    def load(self, tenant_id: str):
        """Reconstruct the tenant's fitted model (raises if absent/torn)."""
        model, _ = self.load_with_manifest(tenant_id)
        return model

    def load_with_manifest(self, tenant_id: str) -> tuple:
        """``(model, manifest)`` from one read, so the pair is coherent."""
        path = self.path_for(tenant_id)
        if not self.exists(tenant_id):
            raise CheckpointError(f"tenant {tenant_id!r} has no checkpoint under {self.root}")
        return load_checkpoint_with_manifest(path)

    def load_with_baseline(self, tenant_id: str) -> tuple:
        """``(model, manifest, baseline)`` for incremental write-back."""
        path = self.path_for(tenant_id)
        if not self.exists(tenant_id):
            raise CheckpointError(f"tenant {tenant_id!r} has no checkpoint under {self.root}")
        return load_checkpoint_with_baseline(path)

    def manifest(self, tenant_id: str) -> dict:
        """The tenant checkpoint's full manifest (version, metadata, ...)."""
        return read_manifest(self.path_for(tenant_id))

    def metadata(self, tenant_id: str) -> dict:
        """Just the *user* metadata stored with the tenant's checkpoint.

        Serve-internal keys (the fleet's inlier reservoir and quarantine
        buffer) are stripped; :meth:`manifest` exposes the raw stored
        mapping.
        """
        metadata = dict(self.manifest(tenant_id).get("metadata", {}))
        metadata.pop(RESERVOIR_METADATA_KEY, None)
        metadata.pop(QUARANTINE_METADATA_KEY, None)
        return metadata

    def tenants(self) -> list[str]:
        """Sorted ids of every tenant with a complete checkpoint."""
        out = []
        for entry in self.root.iterdir():
            if entry.is_dir() and (entry / MANIFEST_NAME).is_file() and _TENANT_RE.match(entry.name):
                out.append(entry.name)
        return sorted(out)

    def __contains__(self, tenant_id: str) -> bool:
        try:
            return self.exists(tenant_id)
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self.tenants())
