"""Versioned on-disk checkpoints for fitted geofencing pipelines.

A checkpoint is a directory holding two files:

``arrays-<save_id>.npz``
    Every numpy array of the model's (nested) ``state_dict``, stored
    under its flattened key path (``"embedder/graph/edge_weights"``).
``manifest.json``
    Format version, model class, the declarative pipeline spec the
    model was built from, library version, user metadata, the name of
    the arrays file it commits, and every non-array leaf of the state
    under the same flattened keys.

The split keeps the format language-neutral and diffable: the manifest
is plain JSON you can read with any tool, and the arrays are standard
npz.  Saves are crash-safe: the arrays are written under a fresh
per-save name, then the manifest — the single commit point — is
swapped in with ``os.replace``, and only then are superseded arrays
files deleted.  A crash at any step leaves the previous complete
checkpoint loadable; both files also carry the save nonce so a
manually mixed pair is rejected as torn.

Version history: format 1 (PR 1) only ever held :class:`GEM` models and
carried no spec; format 2 embeds the ``pipeline_spec`` so *any*
registered arm round-trips.  Format-1 checkpoints still load through a
migration path that synthesises the GEM spec from the saved config.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from pathlib import Path
from typing import Any

import numpy as np

from repro import __version__
from repro.pipeline import ComponentSpec, PipelineSpec, build_pipeline, infer_spec

__all__ = [
    "CHECKPOINT_VERSION",
    "SUPPORTED_VERSIONS",
    "MANIFEST_NAME",
    "ARRAYS_PREFIX",
    "ARRAYS_SUFFIX",
    "CheckpointError",
    "flatten_state",
    "unflatten_state",
    "save_checkpoint",
    "load_checkpoint",
    "load_checkpoint_with_manifest",
    "load_state",
    "read_manifest",
    "spec_from_manifest",
]

CHECKPOINT_VERSION = 2
SUPPORTED_VERSIONS = (1, CHECKPOINT_VERSION)
MANIFEST_NAME = "manifest.json"
ARRAYS_PREFIX = "arrays-"
ARRAYS_SUFFIX = ".npz"

_SEP = "/"
# Reserved npz entry holding the save nonce (also recorded in the
# manifest).  Array *names* are structural and identical across saves of
# the same model, so matching key sets cannot prove the two files come
# from the same save; matching nonces can.
_SAVE_ID_KEY = "__save_id__"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, torn, or structurally invalid."""


# ----------------------------------------------------------------------
# State-tree flattening
# ----------------------------------------------------------------------
def flatten_state(state: dict, prefix: str = "") -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Split a nested state dict into (arrays, JSON-safe leaves).

    Dicts are structure and are recursed into; numpy arrays become npz
    entries; everything else (scalars, strings, bools, lists of
    scalars) becomes a manifest leaf.  Keys must not contain ``"/"``.
    """
    arrays: dict[str, np.ndarray] = {}
    leaves: dict[str, Any] = {}
    for key, value in state.items():
        key = str(key)
        if _SEP in key:
            raise ValueError(f"state keys must not contain {_SEP!r}: {key!r}")
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            sub_arrays, sub_leaves = flatten_state(value, prefix=path + _SEP)
            arrays.update(sub_arrays)
            leaves.update(sub_leaves)
        elif isinstance(value, np.ndarray):
            arrays[path] = value
        else:
            leaves[path] = _json_safe(value)
    return arrays, leaves


def unflatten_state(arrays: dict[str, np.ndarray], leaves: dict[str, Any]) -> dict:
    """Rebuild the nested state dict from flattened arrays + leaves."""
    state: dict = {}
    for path, value in list(leaves.items()) + list(arrays.items()):
        parts = path.split(_SEP)
        node = state
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise CheckpointError(f"key {path!r} descends through a non-dict entry")
        node[parts[-1]] = value
    return state


def _json_safe(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"state leaf of type {type(value).__name__} is not JSON-serialisable")


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def _fsync_dir(directory: Path) -> None:
    """Flush directory entries (renames/unlinks) to stable storage.

    Best effort: directories cannot be opened on some platforms
    (Windows); there the rename is as durable as the OS makes it.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _replace_into(directory: Path, name: str, writer) -> None:
    """Write a file via a same-directory temp file + atomic os.replace.

    The directory is fsynced after the rename so a power loss cannot
    reorder a later unlink ahead of this commit.
    """
    fd, tmp_name = tempfile.mkstemp(prefix=f".{name}.", dir=directory)
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, directory / name)
        _fsync_dir(directory)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def save_checkpoint(model, directory: str | Path, metadata: dict | None = None,
                    spec: PipelineSpec | None = None) -> Path:
    """Persist a fitted model's ``state_dict`` under ``directory``.

    ``model`` must expose ``state_dict()``; the manifest embeds the
    model's :class:`~repro.pipeline.spec.PipelineSpec` (the one stamped
    by ``build_pipeline``, the explicit ``spec=`` argument, or one
    inferred for the hand-constructed built-ins) so loading can rebuild
    the exact arm without knowing its class.  Returns the checkpoint
    directory.  Overwriting an existing checkpoint never destroys it:
    the new arrays land under a fresh name, the manifest swap is the
    atomic commit, and the superseded arrays file is only deleted after
    the commit — a crash anywhere leaves the previous (or the new)
    complete checkpoint loadable.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spec = spec if spec is not None else infer_spec(model)
    spec.require_state_dict()
    state = model.state_dict()
    arrays, leaves = flatten_state(state)
    if _SAVE_ID_KEY in arrays:
        raise ValueError(f"state must not use the reserved key {_SAVE_ID_KEY!r}")
    save_id = uuid.uuid4().hex
    arrays[_SAVE_ID_KEY] = np.frombuffer(save_id.encode("ascii"), dtype=np.uint8).copy()
    arrays_name = f"{ARRAYS_PREFIX}{save_id}{ARRAYS_SUFFIX}"
    manifest = {
        "format_version": CHECKPOINT_VERSION,
        "model_class": type(model).__name__,
        "pipeline_spec": spec.to_dict(),
        "repro_version": __version__,
        "saved_at": time.time(),
        "save_id": save_id,
        "arrays_file": arrays_name,
        "array_keys": sorted(arrays),
        "metadata": _json_safe(metadata or {}),
        "state": leaves,
    }
    _replace_into(directory, arrays_name, lambda h: np.savez(h, **arrays))
    _replace_into(directory, MANIFEST_NAME,
                  lambda h: h.write(json.dumps(manifest, indent=1, sort_keys=True).encode()))
    # Post-commit cleanup: drop arrays files no manifest references and
    # dot-prefixed temp files orphaned by earlier crashed saves (safe
    # under the single-writer-per-directory assumption).
    for stale in directory.glob(f"{ARRAYS_PREFIX}*{ARRAYS_SUFFIX}"):
        if stale.name != arrays_name:
            stale.unlink(missing_ok=True)
    for orphan in list(directory.glob(f".{ARRAYS_PREFIX}*")) + list(directory.glob(f".{MANIFEST_NAME}.*")):
        orphan.unlink(missing_ok=True)
    return directory


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def read_manifest(directory: str | Path) -> dict:
    """Read and validate the manifest of a checkpoint directory."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise CheckpointError(f"no checkpoint at {directory} (missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{manifest_path}: corrupt manifest: {error}") from error
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise CheckpointError(f"{manifest_path}: format version {version!r} is not "
                              f"supported (this build reads versions {supported})")
    return manifest


def load_state(directory: str | Path, _retries: int = 2) -> tuple[dict, dict]:
    """Load ``(state, manifest)`` from a checkpoint directory.

    Safe against one concurrent writer: if a save commits a new manifest
    and garbage-collects the arrays file this reader was about to open,
    the read is retried against the fresh manifest.  Concurrent *saves*
    to the same directory are not supported (the fleet serialises them).
    """
    directory = Path(directory)
    manifest = read_manifest(directory)
    arrays_name = manifest.get("arrays_file")
    if not isinstance(arrays_name, str) or _SEP in arrays_name or os.sep in arrays_name:
        raise CheckpointError(f"checkpoint at {directory} has a bad arrays_file entry: "
                              f"{arrays_name!r}")
    arrays_path = directory / arrays_name
    if not arrays_path.is_file():
        if _retries > 0 and read_manifest(directory).get("arrays_file") != arrays_name:
            return load_state(directory, _retries=_retries - 1)
        raise CheckpointError(f"checkpoint at {directory} is missing its arrays file "
                              f"{arrays_name}")
    try:
        with np.load(arrays_path) as archive:
            arrays = {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        # Unlinked between the is_file check and the open: same race.
        if _retries > 0:
            return load_state(directory, _retries=_retries - 1)
        raise CheckpointError(f"checkpoint at {directory} is missing its arrays file "
                              f"{arrays_name}")
    except Exception as error:  # truncated/corrupt zip, bad pickle header, ...
        raise CheckpointError(f"{arrays_path}: corrupt array archive: {error}") from error
    expected = set(manifest.get("array_keys", []))
    if set(arrays) != expected:
        raise CheckpointError(f"checkpoint at {directory} is torn: manifest expects "
                              f"{len(expected)} arrays, {arrays_name} holds {len(arrays)}")
    arrays_save_id = bytes(arrays.pop(_SAVE_ID_KEY, np.empty(0, dtype=np.uint8))).decode("ascii")
    if arrays_save_id != manifest.get("save_id"):
        raise CheckpointError(f"checkpoint at {directory} is torn: {MANIFEST_NAME} and "
                              f"{arrays_name} come from different saves")
    return unflatten_state(arrays, manifest.get("state", {})), manifest


def spec_from_manifest(manifest: dict, state: dict) -> PipelineSpec:
    """The pipeline spec a checkpoint was saved with (migrating format 1).

    Format-2 manifests carry the spec verbatim.  Format-1 checkpoints
    (PR 1) only ever held :class:`~repro.core.gem.GEM` models, whose
    config lives in the state tree — the migration synthesises the
    equivalent ``gem`` model spec from it, so old checkpoints keep
    loading through the same registry path as new ones.
    """
    raw = manifest.get("pipeline_spec")
    if raw is not None:
        try:
            return PipelineSpec.from_dict(raw)
        except (TypeError, ValueError) as error:
            raise CheckpointError(f"checkpoint has an invalid pipeline_spec: {error}") from error
    model_class = manifest.get("model_class")
    if model_class != "GEM":
        raise CheckpointError(
            f"format-{manifest.get('format_version')} checkpoint holds a "
            f"{model_class!r} model but carries no pipeline_spec; only GEM "
            "checkpoints predate the spec format")
    config = state.get("config")
    if not isinstance(config, dict):
        raise CheckpointError("legacy GEM checkpoint is missing its config state; "
                              "cannot migrate it to a pipeline spec")
    try:
        return PipelineSpec(model=ComponentSpec("gem", config))
    except (TypeError, ValueError) as error:
        raise CheckpointError(f"legacy GEM checkpoint has an unmigratable config: "
                              f"{error}") from error


def load_checkpoint_with_manifest(directory: str | Path) -> tuple:
    """Reconstruct a fitted pipeline plus the manifest it came from.

    The pipeline is rebuilt from the manifest's embedded spec (or the
    format-1 GEM migration) and restored all-or-nothing from the saved
    state; any registered arm loads through this one path.  One disk
    read serves model and metadata, so the pair is guaranteed to belong
    to the same save even with a concurrent writer.
    """
    state, manifest = load_state(directory)
    spec = spec_from_manifest(manifest, state)
    try:
        model = build_pipeline(spec)
        model.load_state_dict(state)
    except (KeyError, TypeError, ValueError) as error:
        # Missing state leaves, wrong config types, shape mismatches:
        # all mean the checkpoint is structurally invalid.
        raise CheckpointError(f"checkpoint at {directory} is structurally invalid: "
                              f"{error}") from error
    return model, manifest


def load_checkpoint(directory: str | Path):
    """Reconstruct the fitted pipeline a checkpoint directory describes."""
    model, _ = load_checkpoint_with_manifest(directory)
    return model
