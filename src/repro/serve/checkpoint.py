"""Versioned on-disk checkpoints for fitted geofencing pipelines.

A checkpoint is a directory holding two files:

``arrays-<save_id>.npz``
    Every numpy array of the model's (nested) ``state_dict``, stored
    under its flattened key path (``"embedder/graph/edge_weights"``).
``manifest.json``
    Format version, model class, the declarative pipeline spec the
    model was built from, library version, user metadata, the name of
    the arrays file it commits, and every non-array leaf of the state
    under the same flattened keys.

The split keeps the format language-neutral and diffable: the manifest
is plain JSON you can read with any tool, and the arrays are standard
npz.  Saves are crash-safe: the arrays are written under a fresh
per-save name, then the manifest — the single commit point — is
swapped in with ``os.replace``, and only then are superseded arrays
files deleted.  A crash at any step leaves the previous complete
checkpoint loadable; both files also carry the save nonce so a
manually mixed pair is rejected as torn.

Version history: format 1 (PR 1) only ever held :class:`GEM` models and
carried no spec; format 2 embeds the ``pipeline_spec`` so *any*
registered arm round-trips.  Format-1 checkpoints still load through a
migration path that synthesises the GEM spec from the saved config.
Format 3 (the **incremental** extension) is format 2 plus a ``deltas``
chain in the manifest: each entry names a ``delta-<id>.npz`` file of
append-tails / replacements / removals against the state the previous
entry produced, so a write-back whose heavy arrays only *grew*
(streamed records appended to the graph, lazily extended MAC caches)
costs the tail, not the model.  A full save compacts the chain back to
a plain format-2 checkpoint; format-2 checkpoints load unchanged.

Incremental crash safety extends the full-save story: the delta file is
written first (same temp-file + ``os.replace`` + directory fsync), the
manifest rewrite is the single commit point, and every delta carries a
nonce that must match its manifest entry while each entry names its
parent write — so a crash before the manifest commit leaves an orphan
delta file the loader never reads (the torn tail), and a manually
spliced or truncated chain is rejected as torn rather than replayed.

User metadata rides the manifest rewrite of *every* save — full and
delta alike — so sidecar state the fleet keeps there (the
``fleet_reservoir`` inlier reservoir and the ``fleet_quarantine``
recovery buffer, see :mod:`repro.serve.fleet` /
:mod:`repro.serve.quarantine`) is always exactly as fresh as the commit
point, with no separate persistence path to tear against the model.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro import __version__
from repro.pipeline import ComponentSpec, PipelineSpec, build_pipeline, infer_spec

__all__ = [
    "CHECKPOINT_VERSION",
    "INCREMENTAL_VERSION",
    "SUPPORTED_VERSIONS",
    "MANIFEST_NAME",
    "ARRAYS_PREFIX",
    "ARRAYS_SUFFIX",
    "DELTA_PREFIX",
    "DELTA_SUFFIX",
    "DEFAULT_MAX_DELTA_CHAIN",
    "DEFAULT_DELTA_MAX_FRACTION",
    "CheckpointError",
    "CommitInfo",
    "StateBaseline",
    "WriteStats",
    "last_commit",
    "last_write",
    "flatten_state",
    "unflatten_state",
    "save_checkpoint",
    "save_incremental",
    "load_checkpoint",
    "load_checkpoint_with_manifest",
    "load_checkpoint_with_baseline",
    "load_state",
    "read_manifest",
    "spec_from_manifest",
]

CHECKPOINT_VERSION = 2
# Format version stamped while a manifest carries an uncompacted delta
# chain; a full save compacts back down to CHECKPOINT_VERSION.  Readers
# that predate the incremental format refuse version 3 outright instead
# of silently serving the base state without its deltas.
INCREMENTAL_VERSION = 3
SUPPORTED_VERSIONS = (1, CHECKPOINT_VERSION, INCREMENTAL_VERSION)
MANIFEST_NAME = "manifest.json"
ARRAYS_PREFIX = "arrays-"
ARRAYS_SUFFIX = ".npz"
DELTA_PREFIX = "delta-"
DELTA_SUFFIX = ".npz"

# Compaction cadence: after this many chained deltas the next write is a
# full save, bounding both replay work on load and chain-validation cost.
DEFAULT_MAX_DELTA_CHAIN = 4
# A delta whose stored arrays exceed this fraction of the full state's
# bytes is not worth the chain bookkeeping (e.g. a re-provisioned model
# where everything changed): write a compacting full save instead.
DEFAULT_DELTA_MAX_FRACTION = 0.9

_SEP = "/"
# Reserved npz entry holding the save nonce (also recorded in the
# manifest).  Array *names* are structural and identical across saves of
# the same model, so matching key sets cannot prove the two files come
# from the same save; matching nonces can.
_SAVE_ID_KEY = "__save_id__"
# Same role for delta files: the npz nonce must match the manifest
# entry's delta_id or the pair is rejected as spliced.
_DELTA_ID_KEY = "__delta_id__"


class CheckpointError(RuntimeError):
    """A checkpoint is missing, torn, or structurally invalid."""


@dataclass(frozen=True)
class WriteStats:
    """Accounting for the most recent committed save on this thread.

    ``kind`` is ``"full"`` or ``"delta"``; ``bytes_written`` counts the
    arrays/delta file plus the manifest rewrite; ``chain_length`` is the
    delta-chain length *after* the save (0 for a compacting full save).
    Recorded thread-locally — saves happen on the calling thread, so a
    caller reading :func:`last_write` immediately after a save sees its
    own write even with concurrent fleets in other threads.
    """

    kind: str
    bytes_written: int
    chain_length: int


@dataclass(frozen=True)
class CommitInfo:
    """Identity of the most recent committed save on this thread.

    Where :class:`WriteStats` answers "how expensive was the write",
    ``CommitInfo`` answers "*which* write committed": the save/delta ids,
    the file the commit added, and the directory it landed in — exactly
    what a replication shipper needs to package the committed entry for
    a follower.  ``tip_id`` is the chain tip after the commit (equal to
    ``save_id`` for a full save, to ``delta_id`` for a delta).
    """

    kind: str                # "full" | "delta"
    directory: str           # checkpoint directory the commit landed in
    save_id: str             # id of the base full save the chain hangs off
    delta_id: str | None     # id of the committed delta (None for a full save)
    tip_id: str              # chain tip after this commit
    chain_length: int        # committed deltas after this write
    file_name: str           # the arrays-*/delta-* file this commit added


_LAST_WRITE = threading.local()


def _note_write(kind: str, bytes_written: int, chain_length: int) -> None:
    _LAST_WRITE.stats = WriteStats(kind, bytes_written, chain_length)


def _note_commit(info: CommitInfo) -> None:
    _LAST_WRITE.commit = info


def last_write() -> WriteStats | None:
    """The calling thread's most recent save accounting, if any."""
    return getattr(_LAST_WRITE, "stats", None)


def last_commit() -> CommitInfo | None:
    """The calling thread's most recent commit identity, if any.

    This is the committed-write event hook the replication layer hangs
    off: a caller that just ran :func:`save_checkpoint` /
    :func:`save_incremental` (directly or through a registry) reads back
    which file the commit added and where the chain tip moved to.
    """
    return getattr(_LAST_WRITE, "commit", None)


# ----------------------------------------------------------------------
# State-tree flattening
# ----------------------------------------------------------------------
def flatten_state(state: dict, prefix: str = "") -> tuple[dict[str, np.ndarray], dict[str, Any]]:
    """Split a nested state dict into (arrays, JSON-safe leaves).

    Dicts are structure and are recursed into; numpy arrays become npz
    entries; everything else (scalars, strings, bools, lists of
    scalars) becomes a manifest leaf.  Keys must not contain ``"/"``.
    """
    arrays: dict[str, np.ndarray] = {}
    leaves: dict[str, Any] = {}
    for key, value in state.items():
        key = str(key)
        if _SEP in key:
            raise ValueError(f"state keys must not contain {_SEP!r}: {key!r}")
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            sub_arrays, sub_leaves = flatten_state(value, prefix=path + _SEP)
            arrays.update(sub_arrays)
            leaves.update(sub_leaves)
        elif isinstance(value, np.ndarray):
            arrays[path] = value
        else:
            leaves[path] = _json_safe(value)
    return arrays, leaves


def unflatten_state(arrays: dict[str, np.ndarray], leaves: dict[str, Any]) -> dict:
    """Rebuild the nested state dict from flattened arrays + leaves."""
    state: dict = {}
    for path, value in list(leaves.items()) + list(arrays.items()):
        parts = path.split(_SEP)
        node = state
        for part in parts[:-1]:
            node = node.setdefault(part, {})
            if not isinstance(node, dict):
                raise CheckpointError(f"key {path!r} descends through a non-dict entry")
        node[parts[-1]] = value
    return state


def _json_safe(value):
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    raise TypeError(f"state leaf of type {type(value).__name__} is not JSON-serialisable")


# ----------------------------------------------------------------------
# Incremental baselines and diffs
# ----------------------------------------------------------------------
@dataclass
class StateBaseline:
    """In-memory image of a tenant's last *committed* write.

    ``save_incremental`` diffs the model's current flattened state
    against this image to decide what a delta must carry.  The arrays
    are isolated copies: live models mutate their arrays in place (the
    histogram detector's update does), and a baseline aliasing live
    memory would diff as "unchanged" and silently lose that state.
    """

    save_id: str        # id of the base full save the chain hangs off
    tip_id: str         # id of the most recent committed write
    chain_length: int   # committed deltas since the base full save
    arrays: dict[str, np.ndarray]
    leaves: dict[str, Any]

    @classmethod
    def capture(cls, save_id: str, tip_id: str, chain_length: int,
                arrays: dict[str, np.ndarray], leaves: dict[str, Any]) -> "StateBaseline":
        return cls(save_id=save_id, tip_id=tip_id, chain_length=chain_length,
                   arrays={k: np.array(v, copy=True) for k, v in arrays.items()
                           if k != _SAVE_ID_KEY},
                   leaves=json.loads(json.dumps(leaves)))


def _arrays_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise-intent equality: NaN == NaN for float arrays.

    Plain ``np.array_equal`` treats a NaN-bearing array as unequal to
    itself, which would make every delta re-store it as "changed";
    ``equal_nan`` is only legal for inexact dtypes, hence the guard.
    """
    if a.dtype != b.dtype or a.shape != b.shape:
        return False
    equal_nan = np.issubdtype(a.dtype, np.inexact)
    return bool(np.array_equal(a, b, equal_nan=equal_nan))


def _is_append(old: np.ndarray, new: np.ndarray) -> bool:
    """True when ``new`` is ``old`` plus rows appended along axis 0."""
    return (old.ndim == new.ndim and old.ndim >= 1
            and old.shape[1:] == new.shape[1:]
            and new.shape[0] > old.shape[0]
            and old.dtype == new.dtype
            and _arrays_equal(new[: old.shape[0]], old))


def _diff_state(baseline: StateBaseline, arrays: dict[str, np.ndarray],
                leaves: dict[str, Any]) -> tuple[dict[str, np.ndarray], dict]:
    """Ops needed to turn the baseline state into the current one.

    Returns ``(stored_arrays, entry)`` where ``entry`` is the manifest
    delta entry (sans id/file bookkeeping): ``append``/``replace``/
    ``remove`` key lists for arrays, plus changed/removed leaves.
    """
    stored: dict[str, np.ndarray] = {}
    append: list[str] = []
    replace: list[str] = []
    for key, value in arrays.items():
        old = baseline.arrays.get(key)
        if old is None:
            replace.append(key)
            stored[key] = value
        elif _is_append(old, value):
            append.append(key)
            stored[key] = value[old.shape[0]:]
        elif not _arrays_equal(old, value):
            replace.append(key)
            stored[key] = value
    removed = sorted(set(baseline.arrays) - set(arrays))
    new_leaves = {key: value for key, value in leaves.items()
                  if key not in baseline.leaves or baseline.leaves[key] != value}
    removed_leaves = sorted(set(baseline.leaves) - set(leaves))
    entry = {"append": sorted(append), "replace": sorted(replace),
             "remove": removed, "leaves": new_leaves,
             "removed_leaves": removed_leaves}
    return stored, entry


# ----------------------------------------------------------------------
# Saving
# ----------------------------------------------------------------------
def _fsync_dir(directory: Path) -> None:
    """Flush directory entries (renames/unlinks) to stable storage.

    Best effort: directories cannot be opened on some platforms
    (Windows); there the rename is as durable as the OS makes it.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _replace_into(directory: Path, name: str, writer) -> None:
    """Write a file via a same-directory temp file + atomic os.replace.

    The directory is fsynced after the rename so a power loss cannot
    reorder a later unlink ahead of this commit.
    """
    fd, tmp_name = tempfile.mkstemp(prefix=f".{name}.", dir=directory)
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, directory / name)
        _fsync_dir(directory)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def _flatten_model(model, spec: PipelineSpec | None):
    """Shared save-path preamble: spec + flattened, validated state."""
    spec = spec if spec is not None else infer_spec(model)
    spec.require_state_dict()
    arrays, leaves = flatten_state(model.state_dict())
    if _SAVE_ID_KEY in arrays or _DELTA_ID_KEY in arrays:
        raise ValueError(f"state must not use the reserved keys "
                         f"{_SAVE_ID_KEY!r} / {_DELTA_ID_KEY!r}")
    return spec, arrays, leaves


def _write_full(model, directory: Path, arrays: dict[str, np.ndarray],
                leaves: dict[str, Any], spec: PipelineSpec,
                metadata: dict | None) -> str:
    """Commit a full (compacting) save; returns its save_id."""
    save_id = uuid.uuid4().hex
    arrays = dict(arrays)
    arrays[_SAVE_ID_KEY] = np.frombuffer(save_id.encode("ascii"), dtype=np.uint8).copy()
    arrays_name = f"{ARRAYS_PREFIX}{save_id}{ARRAYS_SUFFIX}"
    manifest = {
        "format_version": CHECKPOINT_VERSION,
        "model_class": type(model).__name__,
        "pipeline_spec": spec.to_dict(),
        "repro_version": __version__,
        "saved_at": time.time(),
        "save_id": save_id,
        "arrays_file": arrays_name,
        "array_keys": sorted(arrays),
        "metadata": _json_safe(metadata or {}),
        "state": leaves,
    }
    _replace_into(directory, arrays_name, lambda h: np.savez(h, **arrays))
    _replace_into(directory, MANIFEST_NAME,
                  lambda h: h.write(json.dumps(manifest, indent=1, sort_keys=True).encode()))
    _note_write("full", (directory / arrays_name).stat().st_size
                + (directory / MANIFEST_NAME).stat().st_size, 0)
    _note_commit(CommitInfo(kind="full", directory=str(directory),
                            save_id=save_id, delta_id=None, tip_id=save_id,
                            chain_length=0, file_name=arrays_name))
    # Post-commit cleanup: drop arrays/delta files no manifest references
    # (a full save compacts any delta chain) and dot-prefixed temp files
    # orphaned by earlier crashed saves (safe under the
    # single-writer-per-directory assumption).
    for stale in directory.glob(f"{ARRAYS_PREFIX}*{ARRAYS_SUFFIX}"):
        if stale.name != arrays_name:
            stale.unlink(missing_ok=True)
    for stale in directory.glob(f"{DELTA_PREFIX}*{DELTA_SUFFIX}"):
        stale.unlink(missing_ok=True)
    for orphan in (list(directory.glob(f".{ARRAYS_PREFIX}*"))
                   + list(directory.glob(f".{DELTA_PREFIX}*"))
                   + list(directory.glob(f".{MANIFEST_NAME}.*"))):
        orphan.unlink(missing_ok=True)
    return save_id


def save_checkpoint(model, directory: str | Path, metadata: dict | None = None,
                    spec: PipelineSpec | None = None) -> Path:
    """Persist a fitted model's ``state_dict`` under ``directory``.

    ``model`` must expose ``state_dict()``; the manifest embeds the
    model's :class:`~repro.pipeline.spec.PipelineSpec` (the one stamped
    by ``build_pipeline``, the explicit ``spec=`` argument, or one
    inferred for the hand-constructed built-ins) so loading can rebuild
    the exact arm without knowing its class.  Returns the checkpoint
    directory.  Overwriting an existing checkpoint never destroys it:
    the new arrays land under a fresh name, the manifest swap is the
    atomic commit, and the superseded arrays (and any delta chain this
    save compacts) are only deleted after the commit — a crash anywhere
    leaves the previous (or the new) complete checkpoint loadable.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spec, arrays, leaves = _flatten_model(model, spec)
    _write_full(model, directory, arrays, leaves, spec, metadata)
    return directory


def save_incremental(model, directory: str | Path, baseline: StateBaseline | None,
                     metadata: dict | None = None, spec: PipelineSpec | None = None,
                     max_chain: int = DEFAULT_MAX_DELTA_CHAIN,
                     max_fraction: float = DEFAULT_DELTA_MAX_FRACTION,
                     ) -> tuple[str, StateBaseline]:
    """Write the cheapest sufficient save: a delta when possible.

    Diffs the model's current state against ``baseline`` (the image of
    the last committed write, from :func:`load_checkpoint_with_baseline`
    or a previous ``save_incremental``) and appends a
    ``delta-<id>.npz`` + manifest entry when the change is small —
    append-tails for arrays that only grew, replacements for the few
    that didn't.  Falls back to a full compacting save when there is no
    usable baseline, the chain has reached ``max_chain``, the on-disk
    tip no longer matches the baseline (an out-of-band writer), or the
    delta would store more than ``max_fraction`` of the full state's
    array bytes (e.g. after a re-provision).

    Returns ``("delta" | "full", new_baseline)``.  Either way the
    caller's next diff is against exactly what this call committed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    spec, arrays, leaves = _flatten_model(model, spec)

    def full() -> tuple[str, StateBaseline]:
        save_id = _write_full(model, directory, arrays, leaves, spec, metadata)
        return "full", StateBaseline.capture(save_id, save_id, 0, arrays, leaves)

    if baseline is None or baseline.chain_length >= max_chain:
        return full()
    try:
        manifest = read_manifest(directory)
    except CheckpointError:
        return full()
    deltas = manifest.get("deltas", [])
    tip = deltas[-1]["delta_id"] if deltas else manifest.get("save_id")
    if manifest.get("save_id") != baseline.save_id or tip != baseline.tip_id:
        # The directory moved under us (external writer / manual edit):
        # the baseline no longer describes the on-disk state, so a delta
        # against it would corrupt the chain.  Compact instead.
        return full()
    if manifest.get("pipeline_spec") != spec.to_dict():
        # The arm itself changed (it shouldn't without a re-provision,
        # which replaces every array anyway): deltas only patch state,
        # never the spec, so compact.
        return full()
    stored, entry = _diff_state(baseline, arrays, leaves)
    full_bytes = sum(value.nbytes for value in arrays.values())
    delta_bytes = sum(value.nbytes for value in stored.values())
    if full_bytes and delta_bytes > max_fraction * full_bytes:
        return full()
    delta_id = uuid.uuid4().hex
    delta_name = f"{DELTA_PREFIX}{delta_id}{DELTA_SUFFIX}"
    stored = dict(stored)
    stored[_DELTA_ID_KEY] = np.frombuffer(delta_id.encode("ascii"), dtype=np.uint8).copy()
    entry.update({"delta_id": delta_id, "parent": tip, "file": delta_name,
                  "saved_at": time.time()})
    manifest["deltas"] = deltas + [entry]
    manifest["format_version"] = INCREMENTAL_VERSION
    manifest["metadata"] = _json_safe(metadata or {})
    manifest["saved_at"] = entry["saved_at"]
    # Delta file first, manifest second: the manifest rewrite is the
    # commit point, so a crash in between leaves an orphan delta file
    # the loader never reads (cleaned up at the next full save).
    _replace_into(directory, delta_name, lambda h: np.savez(h, **stored))
    _replace_into(directory, MANIFEST_NAME,
                  lambda h: h.write(json.dumps(manifest, indent=1, sort_keys=True).encode()))
    _note_write("delta", (directory / delta_name).stat().st_size
                + (directory / MANIFEST_NAME).stat().st_size,
                len(manifest["deltas"]))
    _note_commit(CommitInfo(kind="delta", directory=str(directory),
                            save_id=baseline.save_id, delta_id=delta_id,
                            tip_id=delta_id, chain_length=len(manifest["deltas"]),
                            file_name=delta_name))
    return "delta", StateBaseline.capture(baseline.save_id, delta_id,
                                          baseline.chain_length + 1, arrays, leaves)


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def read_manifest(directory: str | Path) -> dict:
    """Read and validate the manifest of a checkpoint directory."""
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if not manifest_path.is_file():
        raise CheckpointError(f"no checkpoint at {directory} (missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as error:
        raise CheckpointError(f"{manifest_path}: corrupt manifest: {error}") from error
    version = manifest.get("format_version")
    if version not in SUPPORTED_VERSIONS:
        supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
        raise CheckpointError(f"{manifest_path}: format version {version!r} is not "
                              f"supported (this build reads versions {supported})")
    return manifest


def _read_npz(directory: Path, name: str, what: str) -> dict[str, np.ndarray]:
    """Read every array of one committed npz file, mapping IO failures
    to :class:`CheckpointError` (FileNotFoundError passes through for
    the caller's concurrent-writer retry)."""
    path = directory / name
    try:
        with np.load(path) as archive:
            return {key: archive[key] for key in archive.files}
    except FileNotFoundError:
        raise
    except Exception as error:  # truncated/corrupt zip, bad pickle header, ...
        raise CheckpointError(f"{path}: corrupt {what} archive: {error}") from error


def _check_member_name(directory: Path, name, what: str) -> str:
    if not isinstance(name, str) or not name or _SEP in name or os.sep in name:
        raise CheckpointError(f"checkpoint at {directory} has a bad {what} entry: {name!r}")
    return name


def _apply_delta(directory: Path, arrays: dict[str, np.ndarray],
                 leaves: dict[str, Any], entry: dict, parent: str) -> str:
    """Apply one committed delta entry in place; returns its delta_id."""
    if not isinstance(entry, dict):
        raise CheckpointError(f"checkpoint at {directory} has a malformed delta entry")
    delta_id = entry.get("delta_id")
    name = _check_member_name(directory, entry.get("file"), "delta file")
    if entry.get("parent") != parent:
        raise CheckpointError(
            f"checkpoint at {directory} is torn: delta {name} chains off "
            f"{entry.get('parent')!r} but the previous write is {parent!r}")
    stored = _read_npz(directory, name, "delta")
    stored_id = bytes(stored.pop(_DELTA_ID_KEY, np.empty(0, dtype=np.uint8))).decode("ascii")
    if not delta_id or stored_id != delta_id:
        raise CheckpointError(f"checkpoint at {directory} is torn: {MANIFEST_NAME} and "
                              f"{name} come from different writes")
    expected = set(entry.get("append", [])) | set(entry.get("replace", []))
    if set(stored) != expected:
        raise CheckpointError(f"checkpoint at {directory} is torn: delta {name} holds "
                              f"{len(stored)} arrays, its manifest entry lists {len(expected)}")
    for key in entry.get("append", []):
        base = arrays.get(key)
        tail = stored[key]
        if base is None or base.ndim != tail.ndim or base.shape[1:] != tail.shape[1:] \
                or base.dtype != tail.dtype:
            # The writer never appends across dtypes (_is_append checks),
            # so a mismatched tail proves corruption — reject it rather
            # than letting np.concatenate silently promote the array.
            raise CheckpointError(f"checkpoint at {directory} is torn: delta {name} "
                                  f"appends to {key!r} but the base state has no "
                                  "compatible array")
        arrays[key] = np.concatenate([base, tail], axis=0)
    for key in entry.get("replace", []):
        arrays[key] = stored[key]
    for key in entry.get("remove", []):
        if key not in arrays:
            raise CheckpointError(f"checkpoint at {directory} is torn: delta {name} "
                                  f"removes unknown array {key!r}")
        del arrays[key]
    new_leaves = entry.get("leaves", {})
    if not isinstance(new_leaves, dict):
        raise CheckpointError(f"checkpoint at {directory} has a malformed delta entry")
    leaves.update(new_leaves)
    for key in entry.get("removed_leaves", []):
        leaves.pop(key, None)
    return delta_id


def _load_flat(directory: Path, _retries: int = 2
               ) -> tuple[dict[str, np.ndarray], dict[str, Any], dict, str]:
    """``(arrays, leaves, manifest, tip_id)`` with any delta chain applied.

    Safe against one concurrent writer: if a save commits a new manifest
    and garbage-collects a file this reader was about to open, the read
    is retried against the fresh manifest.  Concurrent *saves* to the
    same directory are not supported (the fleet serialises them).
    """
    manifest = read_manifest(directory)
    arrays_name = _check_member_name(directory, manifest.get("arrays_file"), "arrays_file")
    try:
        arrays = _read_npz(directory, arrays_name, "array")
    except FileNotFoundError:
        if _retries > 0:
            return _load_flat(directory, _retries=_retries - 1)
        raise CheckpointError(f"checkpoint at {directory} is missing its arrays file "
                              f"{arrays_name}")
    expected = set(manifest.get("array_keys", []))
    if set(arrays) != expected:
        raise CheckpointError(f"checkpoint at {directory} is torn: manifest expects "
                              f"{len(expected)} arrays, {arrays_name} holds {len(arrays)}")
    arrays_save_id = bytes(arrays.pop(_SAVE_ID_KEY, np.empty(0, dtype=np.uint8))).decode("ascii")
    if arrays_save_id != manifest.get("save_id"):
        raise CheckpointError(f"checkpoint at {directory} is torn: {MANIFEST_NAME} and "
                              f"{arrays_name} come from different saves")
    leaves = dict(manifest.get("state", {}))
    tip = manifest.get("save_id")
    deltas = manifest.get("deltas", [])
    if deltas and manifest.get("format_version") != INCREMENTAL_VERSION:
        raise CheckpointError(f"checkpoint at {directory} carries a delta chain but "
                              f"declares format {manifest.get('format_version')!r}")
    for entry in deltas:
        try:
            tip = _apply_delta(directory, arrays, leaves, entry, tip)
        except FileNotFoundError:
            # A concurrent full save compacted the chain away between our
            # manifest read and this delta read: start over.
            if _retries > 0:
                return _load_flat(directory, _retries=_retries - 1)
            raise CheckpointError(f"checkpoint at {directory} is missing committed "
                                  f"delta file {entry.get('file')}")
    return arrays, leaves, manifest, tip


def load_state(directory: str | Path, _retries: int = 2) -> tuple[dict, dict]:
    """Load ``(state, manifest)`` from a checkpoint directory.

    Any committed delta chain is replayed onto the base save, so the
    state returned is exactly what the last ``save_incremental`` (or
    full save) captured.
    """
    arrays, leaves, manifest, _ = _load_flat(Path(directory), _retries=_retries)
    return unflatten_state(arrays, leaves), manifest


def spec_from_manifest(manifest: dict, state: dict) -> PipelineSpec:
    """The pipeline spec a checkpoint was saved with (migrating format 1).

    Format-2 manifests carry the spec verbatim.  Format-1 checkpoints
    (PR 1) only ever held :class:`~repro.core.gem.GEM` models, whose
    config lives in the state tree — the migration synthesises the
    equivalent ``gem`` model spec from it, so old checkpoints keep
    loading through the same registry path as new ones.
    """
    raw = manifest.get("pipeline_spec")
    if raw is not None:
        try:
            return PipelineSpec.from_dict(raw)
        except (TypeError, ValueError) as error:
            raise CheckpointError(f"checkpoint has an invalid pipeline_spec: {error}") from error
    model_class = manifest.get("model_class")
    if model_class != "GEM":
        raise CheckpointError(
            f"format-{manifest.get('format_version')} checkpoint holds a "
            f"{model_class!r} model but carries no pipeline_spec; only GEM "
            "checkpoints predate the spec format")
    config = state.get("config")
    if not isinstance(config, dict):
        raise CheckpointError("legacy GEM checkpoint is missing its config state; "
                              "cannot migrate it to a pipeline spec")
    try:
        return PipelineSpec(model=ComponentSpec("gem", config))
    except (TypeError, ValueError) as error:
        raise CheckpointError(f"legacy GEM checkpoint has an unmigratable config: "
                              f"{error}") from error


def load_checkpoint_with_manifest(directory: str | Path) -> tuple:
    """Reconstruct a fitted pipeline plus the manifest it came from.

    The pipeline is rebuilt from the manifest's embedded spec (or the
    format-1 GEM migration) and restored all-or-nothing from the saved
    state; any registered arm loads through this one path.  One disk
    read serves model and metadata, so the pair is guaranteed to belong
    to the same save even with a concurrent writer.
    """
    state, manifest = load_state(directory)
    spec = spec_from_manifest(manifest, state)
    try:
        model = build_pipeline(spec)
        model.load_state_dict(state)
    except (KeyError, TypeError, ValueError) as error:
        # Missing state leaves, wrong config types, shape mismatches:
        # all mean the checkpoint is structurally invalid.
        raise CheckpointError(f"checkpoint at {directory} is structurally invalid: "
                              f"{error}") from error
    return model, manifest


def load_checkpoint_with_baseline(directory: str | Path) -> tuple:
    """``(model, manifest, baseline)``: a pipeline plus the diff image.

    The :class:`StateBaseline` captures the flattened state exactly as
    committed on disk (base save + replayed deltas), ready to hand to
    :func:`save_incremental` so the tenant's next write-back only pays
    for what changed since this load.
    """
    directory = Path(directory)
    arrays, leaves, manifest, tip = _load_flat(directory)
    state = unflatten_state(arrays, leaves)
    spec = spec_from_manifest(manifest, state)
    try:
        model = build_pipeline(spec)
        model.load_state_dict(state)
    except (KeyError, TypeError, ValueError) as error:
        raise CheckpointError(f"checkpoint at {directory} is structurally invalid: "
                              f"{error}") from error
    chain = len(manifest.get("deltas", []))
    baseline = StateBaseline.capture(manifest.get("save_id"), tip, chain, arrays, leaves)
    return model, manifest, baseline


def load_checkpoint(directory: str | Path):
    """Reconstruct the fitted pipeline a checkpoint directory describes."""
    model, _ = load_checkpoint_with_manifest(directory)
    return model
