"""Multi-tenant geofence serving: one pipeline per premises, many premises.

The paper deploys one model per user home (Table II); a service serves
millions of them.  :class:`GeofenceFleet` is the single-node building
block: it keeps at most ``capacity`` models resident, lazily loading a
tenant's checkpoint from a :class:`~repro.serve.registry.ModelRegistry`
on first touch, evicting the least-recently-used tenant when the budget
is exceeded, and writing dirty (observed-since-load) models back to the
registry before they leave memory — so an evicted tenant's next
observation resumes from *exactly* the state it would have had in
memory, self-updates included.

Fleets are heterogeneous: each tenant may be provisioned from its own
:class:`~repro.pipeline.spec.PipelineSpec` (any registered
embedder x detector arm, or a standalone baseline), and reloads rebuild
whatever arm the tenant's checkpoint embeds — one fleet serves a GEM
home next to a BiSAGE+LOF lab next to an INOA mall.

Data plane vs control plane: ``observe``/``observe_many``/``score`` are
the hot path and never initiate maintenance.  The fleet additionally
keeps a bounded per-tenant reservoir of inlier *records* in two parts —
a pinned **anchor** (the provision-time training records, replaced only
at re-provision) plus a rolling window of **recent** in-premises scans —
and exposes the maintenance *mechanics*: :meth:`refresh` (coordinated
cache rebuild + detector refit on the re-embedded reservoir) and
:meth:`reprovision` (full refit from the reservoir), for a
:class:`~repro.serve.controller.FleetController` to drive according to
a :class:`~repro.serve.policy.MaintenancePolicy`.  The anchor matters:
refitting on recent inliers alone narrows the detector's score
normalisation every refresh (recent inliers are a self-selected tight
cluster) until ordinary records clip to the ceiling and the reservoir
starves — the anchor keeps the full breadth of the training
distribution in every refit.  Reservoirs travel inside the checkpoint
metadata, so an evicted (or offline-maintained) tenant refreshes from
exactly the records a resident one would have used.

When the reservoir itself starves (every decision outside — the
measured >45 % AP-replacement wall), a fleet with ``quarantine_size >
0`` additionally keeps a strictly separated per-tenant
:class:`~repro.serve.quarantine.QuarantineBuffer` of
rejected-but-home-anchored records; :meth:`reprovision_from_quarantine`
is the explicit, rollback-guarded recovery refit from that evidence.
The quarantine is never an input to :meth:`refresh` — a breach cannot
teach the detector — and quarantine-off fleets are bit-identical to
earlier releases.

Thread safety: one re-entrant lock serialises model access.  The models
themselves are single-threaded numpy pipelines, so the lock is the
correctness boundary, not a performance afterthought; scale-out happens
by running many fleets behind a tenant-hash router (see ROADMAP).
"""

from __future__ import annotations

import math
import time
from collections import OrderedDict, deque
from threading import RLock
from typing import Callable, Iterable, Sequence

from repro.core.gem import GEM
from repro.core.io import record_from_dict, record_to_dict
from repro.core.protocols import GeofenceDecision, GeofenceModel
from repro.core.records import SignalRecord
from repro.obs.tracing import maybe_span
from repro.pipeline import PipelineSpec, build_pipeline
from repro.pipeline.build import infer_spec
from repro.serve.checkpoint import (
    DEFAULT_DELTA_MAX_FRACTION,
    DEFAULT_MAX_DELTA_CHAIN,
    CheckpointError,
    last_write,
)
from repro.serve.batchplane import BatchPlane
from repro.serve.quarantine import (
    ConsistencyGate,
    QuarantineBuffer,
    home_anchor_macs,
)
from repro.serve.registry import (
    QUARANTINE_METADATA_KEY,
    RESERVOIR_METADATA_KEY,
    ModelRegistry,
    validate_tenant_id,
)
from repro.serve.telemetry import FleetTelemetry

__all__ = ["DEFAULT_RESERVOIR_SIZE", "GeofenceFleet", "QUARANTINE_METADATA_KEY",
           "RESERVOIR_METADATA_KEY"]

# Default bound for each half (anchor / recent) of a tenant's inlier
# reservoir; shared with `python -m repro train` so CLI-trained tenants
# carry the same anchor a fleet.provision would seed.
DEFAULT_RESERVOIR_SIZE = 256


class GeofenceFleet:
    """LRU-cached, write-back, multi-tenant geofence server.

    Parameters
    ----------
    registry:
        Backing checkpoint store (or a path to root one at).
    capacity:
        Maximum number of tenant models resident at once.
    model_factory:
        Zero-argument callable producing an unfitted pipeline for
        :meth:`provision` calls that pass no spec; defaults to ``GEM()``
        with paper defaults.
    telemetry:
        Counter sink; a fresh :class:`FleetTelemetry` by default.
    reservoir_size:
        Bound on *each half* of the per-tenant inlier reservoir: at most
        this many pinned anchor (training) records plus this many recent
        in-premises records.  The reservoir is what coordinated refresh
        refits the detector on; 0 disables it (and with it,
        refresh/reprovision).
    incremental:
        Write evictions/flushes through the incremental checkpoint
        format: a write-back whose state only grew since the last
        committed write appends a delta instead of rewriting the full
        checkpoint (see :func:`repro.serve.checkpoint.save_incremental`).
        Off by default — the on-disk layout then matches earlier
        releases byte-for-byte in structure; the *reconstructed state*
        is identical either way.
    max_delta_chain / delta_max_fraction:
        Incremental-mode knobs: compact with a full save after this many
        chained deltas, and whenever a delta would store more than this
        fraction of the full state's array bytes.
    quarantine_size:
        Bound on the per-tenant quarantine buffer of
        rejected-but-home-anchored records (recovery evidence — see
        :mod:`repro.serve.quarantine`).  0 (the default) disables
        quarantine entirely: no buffer is fed, persisted or consumable,
        and decisions are bit-identical to earlier releases.  Even
        enabled, the quarantine never touches the decision path — the
        admission gate scores side-effect-free augmented copies.
    quarantine_seed / quarantine_gate:
        Determinism seed for the buffer's reservoir sampling and
        augmentation draws, and the admission
        :class:`~repro.serve.quarantine.ConsistencyGate` (a default
        gate when None and quarantine is enabled).
    """

    def __init__(self, registry: ModelRegistry | str, capacity: int = 8,
                 model_factory: Callable[[], GeofenceModel] | None = None,
                 telemetry: FleetTelemetry | None = None,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 incremental: bool = False,
                 max_delta_chain: int = DEFAULT_MAX_DELTA_CHAIN,
                 delta_max_fraction: float = DEFAULT_DELTA_MAX_FRACTION,
                 tracer=None,
                 quarantine_size: int = 0,
                 quarantine_seed: int = 0,
                 quarantine_gate: ConsistencyGate | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if reservoir_size < 0:
            raise ValueError(f"reservoir_size must be >= 0, got {reservoir_size}")
        if max_delta_chain < 1:
            raise ValueError(f"max_delta_chain must be >= 1, got {max_delta_chain}")
        if not 0.0 <= delta_max_fraction <= 1.0:
            raise ValueError(f"delta_max_fraction must be in [0, 1], got {delta_max_fraction}")
        if quarantine_size < 0:
            raise ValueError(f"quarantine_size must be >= 0, got {quarantine_size}")
        self.registry = registry if isinstance(registry, ModelRegistry) else ModelRegistry(registry)
        self.capacity = capacity
        self.model_factory = model_factory if model_factory is not None else GEM
        self.telemetry = telemetry if telemetry is not None else FleetTelemetry()
        # Optional repro.obs.tracing.Tracer: spans on observe, refresh,
        # reprovision and write-back paths; None costs one shared
        # nullcontext per call.
        self.tracer = tracer
        self.reservoir_size = reservoir_size
        self.incremental = incremental
        self.max_delta_chain = max_delta_chain
        self.delta_max_fraction = delta_max_fraction
        self.quarantine_size = quarantine_size
        self.quarantine_seed = quarantine_seed
        self.quarantine_gate = quarantine_gate if quarantine_gate is not None \
            else (ConsistencyGate() if quarantine_size else None)
        # tenant_id -> QuarantineBuffer, resident tenants only (like the
        # reservoir: persisted in checkpoint metadata on write-back).
        self._quarantine: dict[str, QuarantineBuffer] = {}
        # tenant_id -> StateBaseline (incremental mode only): the image
        # of the tenant's last committed write, diffed against at the
        # next write-back.
        self._baselines: dict[str, object] = {}
        # tenant_id -> model, most-recently-used last.
        self._cache: "OrderedDict[str, GeofenceModel]" = OrderedDict()
        self._dirty: set[str] = set()
        # Checkpoint metadata, cached so write-backs don't re-read the
        # manifest from disk on the serving path.
        self._metadata: dict[str, dict] = {}
        # tenant_id -> pinned anchor records (training set; replaced only
        # at re-provision) and rolling recent inliers, oldest first.
        # Kept only for resident tenants; persisted inside checkpoint
        # metadata on write-back and restored on load, so eviction loses
        # nothing.
        self._anchors: dict[str, list[SignalRecord]] = {}
        self._recent: dict[str, "deque[SignalRecord]"] = {}
        # Tenants with a staged refresh mid-rebuild: the cache-identity
        # check at commit cannot see a *second* refresh of the same
        # model object, so overlapping refreshes are refused up front.
        self._refreshing: set[str] = set()
        # The vectorized batch data plane: routes observe_many groups
        # through the fused fast path where the arm allows, counts
        # engaged/fallback outcomes, and caches inference kernels
        # between batches (invalidated by identity token on refresh
        # commit / reprovision / evict-reload).  Shares the fleet lock.
        self.batchplane = BatchPlane(metrics=self.telemetry.metrics,
                                     shard=self.telemetry.shard)
        self._lock = RLock()

    # ------------------------------------------------------------------
    # Tenant lifecycle
    # ------------------------------------------------------------------
    def provision(self, tenant_id: str, records: Sequence[SignalRecord],
                  metadata: dict | None = None,
                  spec: PipelineSpec | None = None) -> GeofenceModel:
        """Fit a fresh model for a tenant and persist it immediately.

        With a ``spec``, the tenant gets that declarative arm (any
        registered embedder x detector composition or standalone model);
        otherwise the fleet's ``model_factory`` decides.  Mixed-arm
        fleets are fully supported — the arm travels inside the tenant's
        checkpoint, so later reloads rebuild the right pipeline.
        """
        validate_tenant_id(tenant_id)
        if spec is not None:
            # Fail before the (expensive) fit, not at checkpoint time.
            spec.require_state_dict()
        model = build_pipeline(spec) if spec is not None else self.model_factory()
        model.fit(records)
        with self._lock:
            self._metadata[tenant_id] = dict(metadata or {})
            # Training records are inliers by definition (semi-supervised
            # setup): they become the pinned anchor, so the very first
            # refresh already refits on the full training breadth.
            usable = [r for r in records if r.readings]
            self._anchors[tenant_id] = usable[-self.reservoir_size:] if self.reservoir_size else []
            self._recent[tenant_id] = deque(maxlen=self.reservoir_size)
            # A fresh provision starts with a clean slate of evidence:
            # whatever a previous incarnation quarantined described a
            # model that no longer exists.
            self._quarantine.pop(tenant_id, None)
            self._save(tenant_id, model)
            self._cache[tenant_id] = model
            self._cache.move_to_end(tenant_id)
            self._dirty.discard(tenant_id)
            self._shrink()
        return model

    def evict(self, tenant_id: str) -> bool:
        """Drop a tenant from memory (write-back first if dirty)."""
        with self._lock:
            if tenant_id not in self._cache:
                return False
            self._drop(tenant_id)
            return True

    def flush(self, tenant_id: str | None = None) -> int:
        """Write dirty resident models back; returns checkpoints written.

        With a ``tenant_id``, flushes just that tenant; otherwise every
        dirty resident tenant.  Models stay resident.
        """
        with self._lock:
            targets = [tenant_id] if tenant_id is not None else list(self._cache)
            written = 0
            for tid in targets:
                model = self._cache.get(tid)
                if model is not None and tid in self._dirty:
                    self._write_back(tid, model)
                    written += 1
            return written

    def close(self) -> None:
        """Write back everything dirty and drop all resident models."""
        with self._lock:
            self.flush()
            self._cache.clear()
            self._dirty.clear()
            self._metadata.clear()
            self._anchors.clear()
            self._recent.clear()
            self._quarantine.clear()
            self._baselines.clear()

    def __enter__(self) -> "GeofenceFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def observe(self, tenant_id: str, record: SignalRecord) -> GeofenceDecision:
        """Algorithm-2 observation against one tenant's model."""
        with maybe_span(self.tracer, "observe", tenant=tenant_id):
            with self._lock:
                model = self._acquire(tenant_id)
                start = time.perf_counter()
                decision = model.observe(record)
                elapsed = time.perf_counter() - start
                # observe() with attach=True mutates the graph even when no
                # detector update fires — except for empty records, which
                # return before touching anything.
                if record.readings:
                    self._dirty.add(tenant_id)
                    self._remember_inlier(tenant_id, record, decision)
                    self._consider_quarantine(tenant_id, model, record, decision)
            self.telemetry.record_observation(tenant_id, decision, seconds=elapsed)
        return decision

    def observe_many(self, items: Iterable[tuple[str, SignalRecord]]) -> list[GeofenceDecision]:
        """Batched dispatch: group by tenant, answer in input order.

        Grouping means each tenant's model is looked up (and possibly
        loaded) once per batch instead of once per record, which is what
        keeps throughput flat when a batch interleaves tenants beyond
        the LRU budget.

        Every tenant in the batch is validated (well-formed id, has a
        checkpoint) *before* any observation mutates any model, so a bad
        batch fails without leaving earlier tenants half-served.  A
        checkpoint that turns unreadable mid-batch can still abort the
        remainder after some groups have been applied.
        """
        items = list(items)
        by_tenant: "OrderedDict[str, list[int]]" = OrderedDict()
        for position, (tenant_id, _) in enumerate(items):
            by_tenant.setdefault(tenant_id, []).append(position)
        with self._lock:
            for tenant_id in by_tenant:
                if tenant_id not in self._cache and not self.registry.exists(tenant_id):
                    raise CheckpointError(f"tenant {tenant_id!r} has no checkpoint under "
                                          f"{self.registry.root}; batch rejected untouched")
        decisions: list[GeofenceDecision | None] = [None] * len(items)
        for tenant_id, positions in by_tenant.items():
            with self._lock:
                model = self._acquire(tenant_id)
                start = time.perf_counter()
                batch, _ = self.batchplane.observe_batch(
                    model, [items[p][1] for p in positions])
                elapsed = time.perf_counter() - start
                if any(items[p][1].readings for p in positions):
                    self._dirty.add(tenant_id)
                for position, decision in zip(positions, batch):
                    if items[position][1].readings:
                        self._remember_inlier(tenant_id, items[position][1], decision)
                        self._consider_quarantine(tenant_id, model,
                                                  items[position][1], decision)
            for position, decision in zip(positions, batch):
                decisions[position] = decision
            self.telemetry.record_observations(tenant_id, batch, seconds=elapsed)
        return decisions

    def score(self, tenant_id: str, record: SignalRecord) -> float:
        """Stateless outlier score against one tenant's model."""
        with self._lock:
            return self._acquire(tenant_id).score(record)

    # ------------------------------------------------------------------
    # Maintenance mechanics (driven by the control plane)
    # ------------------------------------------------------------------
    def refresh(self, tenant_id: str,
                admit_new_macs_after: int | None = None) -> int:
        """Coordinated refresh of one tenant from its inlier reservoir.

        Rebuilds the tenant model's embedding caches (trained MAC
        universe preserved, unless ``admit_new_macs_after=N`` admits
        post-training MACs with at least N attached observations) and
        refits its detector on the re-embedded anchor + recent
        reservoir, atomically (see
        :meth:`repro.core.gem.EmbeddingGeofencer.refresh`): a failure
        leaves the tenant serving its pre-refresh state, un-dirtied by
        the attempt.  Returns the number of records the detector was
        refit on.

        The fleet lock is **not** held during the heavy rebuild: the
        copy phase snapshots the model under the lock, the rebuild runs
        on the copies with the lock released (observes on other — and
        this — tenant keep flowing), and the commit re-takes the lock
        only for the pointer swap.  If the tenant was evicted, reloaded
        or re-provisioned while the rebuild ran — or a second refresh of
        the same tenant overlapped this one — the commit is refused
        (ValueError) rather than clobbering the newer model.  Models
        exposing ``refresh`` but not the staged ``begin_refresh`` /
        ``commit_refresh`` protocol are refreshed inline under the lock,
        as before.
        """
        with maybe_span(self.tracer, "refresh", tenant=tenant_id):
            with self._lock:
                model = self._acquire(tenant_id)
                if not hasattr(model, "refresh"):
                    raise TypeError(f"tenant {tenant_id!r} runs {type(model).__name__}, "
                                    "which has no coordinated refresh capability")
                records = self._reservoir_records(tenant_id)
                if not records:
                    raise ValueError(f"tenant {tenant_id!r} has an empty inlier reservoir "
                                     "(reservoir_size=0, or no inliers observed yet); "
                                     "nothing to refit the detector on")
                start = time.perf_counter()
                staged = hasattr(model, "begin_refresh") and hasattr(model, "commit_refresh")
                if staged:
                    if tenant_id in self._refreshing:
                        raise ValueError(
                            f"tenant {tenant_id!r} already has a refresh rebuilding; "
                            "overlapping refreshes would silently revert each other")
                    job = model.begin_refresh(records,
                                              admit_new_macs_after=admit_new_macs_after)
                    self._refreshing.add(tenant_id)
                else:
                    absorbed = (model.refresh(records, admit_new_macs_after=admit_new_macs_after)
                                if admit_new_macs_after is not None else model.refresh(records))
                    self._dirty.add(tenant_id)
            if staged:
                try:
                    # Heavy rebuild on the job's copies, fleet lock released.
                    with maybe_span(self.tracer, "refresh.build", tenant=tenant_id):
                        absorbed = job.build()
                    with maybe_span(self.tracer, "refresh.commit", tenant=tenant_id):
                        with self._lock:
                            if self._cache.get(tenant_id) is not model:
                                raise ValueError(
                                    f"tenant {tenant_id!r} was evicted or replaced while its "
                                    "refresh was rebuilding; the result was discarded")
                            model.commit_refresh(job)
                            self._dirty.add(tenant_id)
                finally:
                    with self._lock:
                        self._refreshing.discard(tenant_id)
            self.telemetry.record_refresh(tenant_id, seconds=time.perf_counter() - start)
        return absorbed

    def reprovision(self, tenant_id: str) -> GeofenceModel:
        """Background re-provision: refit the tenant's arm from scratch
        on its inlier reservoir and swap it in.

        The escalation path for worlds that drifted further than a
        refresh can absorb (the training graph itself is stale; new MACs
        only enter the aggregation universe here, where the weights
        retrain against them).  The new pipeline is built from the
        tenant's spec and fitted *before* the swap, so a failed fit
        leaves the old model serving.  The reservoir re-anchors on the
        records just refitted on.
        """
        with self._lock, maybe_span(self.tracer, "reprovision", tenant=tenant_id):
            model = self._acquire(tenant_id)
            records = self._reservoir_records(tenant_id)
            if not records:
                raise ValueError(f"tenant {tenant_id!r} has an empty inlier reservoir "
                                 "(reservoir_size=0, or no inliers observed yet); "
                                 "cannot refit from scratch")
            start = time.perf_counter()
            fresh = build_pipeline(infer_spec(model))
            fresh.fit(records)
            elapsed = time.perf_counter() - start
            # Commit point: the fitted replacement takes the LRU slot and
            # its training set becomes the new anchor.  The old baseline
            # no longer describes anything worth diffing against (every
            # array changed), so the next write-back compacts to a full
            # save rather than computing a delta that cannot win.
            self._cache[tenant_id] = fresh
            self._cache.move_to_end(tenant_id)
            self._anchors[tenant_id] = records[-self.reservoir_size:]
            self._recent[tenant_id] = deque(maxlen=self.reservoir_size)
            # The anchor just moved; quarantined evidence keeps its place
            # (same world, newer refit) but the home-AP anchor set must
            # follow the new anchor records.
            buffer = self._quarantine.get(tenant_id)
            if buffer is not None:
                buffer.set_home(home_anchor_macs(self._anchors[tenant_id],
                                                 buffer.min_anchor_fraction))
            self._dirty.add(tenant_id)
            self._baselines.pop(tenant_id, None)
        self.telemetry.record_reprovision(tenant_id, seconds=elapsed)
        return fresh

    def reprovision_from_quarantine(self, tenant_id: str,
                                    max_fpr: float | None = 0.5) -> GeofenceModel:
        """Recovery refit: rebuild the tenant's arm from its quarantine.

        The escape hatch for the measured hard wall no reservoir-fed
        action can climb (``BENCH_fleet_drift.json`` worst case): when
        ambient-AP replacement passes ~45 %, every decision goes
        outside, the inlier reservoir starves, and refresh/reprovision
        refit the *old* world forever.  The quarantine holds the
        admission-gated, rejected-but-home-anchored scans of the *new*
        world; fitting a fresh pipeline on them re-anchors the trained
        MAC universe where the devices actually are now.

        Rollback guard (``max_fpr``): the fresh model is validated
        *before* the swap — if it rejects more than ``max_fpr`` of the
        very evidence set it was fitted on (the records that become the
        retained anchor), the refit did not converge on a usable
        in-premises model and a ValueError rolls the recovery back: the
        pre-recovery model simply keeps serving, buffer intact, and the
        snapshot that "rollback" restores is the state this method
        never touched.

        On success the evidence set becomes the new pinned anchor
        (bounded by ``reservoir_size``), the recent reservoir restarts,
        and the quarantine is cleared — evidence is consumed by exactly
        one recovery, never recycled into the next refit.
        """
        with self._lock, maybe_span(self.tracer, "recover", tenant=tenant_id):
            if not self.quarantine_size:
                raise ValueError(
                    f"cannot recover tenant {tenant_id!r}: this fleet runs with "
                    "quarantine_size=0 (quarantine disabled)")
            model = self._acquire(tenant_id)
            buffer = self._quarantine.get(tenant_id)
            records = list(buffer.records) if buffer is not None else []
            if not records:
                raise ValueError(
                    f"tenant {tenant_id!r} has an empty quarantine buffer; "
                    "no recovery evidence to refit from")
            start = time.perf_counter()
            fresh = build_pipeline(infer_spec(model))
            fresh.fit(records)
            if max_fpr is not None and hasattr(fresh, "predict"):
                rejected = sum(1 for record in records
                               if not fresh.predict(record))
                fpr = rejected / len(records)
                if fpr > max_fpr:
                    raise ValueError(
                        f"recovery for tenant {tenant_id!r} rolled back: the "
                        f"recovered model rejects {fpr:.0%} of its own "
                        f"{len(records)}-record anchor set (max_fpr "
                        f"{max_fpr:g}); the pre-recovery model keeps serving")
            elapsed = time.perf_counter() - start
            self._cache[tenant_id] = fresh
            self._cache.move_to_end(tenant_id)
            self._anchors[tenant_id] = records[-self.reservoir_size:] \
                if self.reservoir_size else []
            self._recent[tenant_id] = deque(maxlen=self.reservoir_size)
            buffer.clear()
            buffer.set_home(home_anchor_macs(records,
                                             buffer.min_anchor_fraction))
            self._sync_quarantine_gauge()
            self._dirty.add(tenant_id)
            self._baselines.pop(tenant_id, None)
        self.telemetry.record_reprovision(tenant_id, seconds=elapsed)
        return fresh

    def reservoir(self, tenant_id: str) -> list[SignalRecord]:
        """Copy of one tenant's inlier reservoir (anchor then recent)."""
        with self._lock:
            self._acquire(tenant_id)
            return self._reservoir_records(tenant_id)

    def quarantine(self, tenant_id: str) -> list[SignalRecord]:
        """Copy of one tenant's quarantined recovery evidence."""
        with self._lock:
            self._acquire(tenant_id)
            buffer = self._quarantine.get(tenant_id)
            return list(buffer.records) if buffer is not None else []

    def quarantine_depth(self, tenant_id: str) -> int:
        """Resident quarantine depth for one tenant (0 if not resident).

        Deliberately load-free: the control plane polls this on the
        decision path, where a checkpoint read would be a regression.
        """
        with self._lock:
            buffer = self._quarantine.get(tenant_id)
            return buffer.depth if buffer is not None else 0

    def quarantine_depths(self) -> dict[str, int]:
        """``{tenant_id: depth}`` across resident, non-empty buffers."""
        with self._lock:
            return {tenant_id: buffer.depth
                    for tenant_id, buffer in self._quarantine.items()
                    if buffer.depth}

    def resident(self, tenant_id: str) -> GeofenceModel | None:
        """The tenant's model if resident, else None — no load, no LRU touch."""
        with self._lock:
            return self._cache.get(tenant_id)

    def _reservoir_records(self, tenant_id: str) -> list[SignalRecord]:
        """Anchor + recent, the refit set.  Call with the lock held."""
        return (list(self._anchors.get(tenant_id, ()))
                + list(self._recent.get(tenant_id, ())))

    def _remember_inlier(self, tenant_id: str, record: SignalRecord,
                         decision: GeofenceDecision) -> None:
        """Reservoir policy: keep records behind finite in-premises decisions.

        Confidence is deliberately not required — detectors without a
        confidence notion (LOF, iForest) would otherwise never fill a
        reservoir — but unembeddable (+inf) and outside records never
        enter: refreshing a detector on suspected outliers would teach
        it the breach.  Call with the lock held.
        """
        if self.reservoir_size and decision.inside and math.isfinite(decision.score):
            recent = self._recent.get(tenant_id)
            if recent is None:
                recent = deque(maxlen=self.reservoir_size)
                self._recent[tenant_id] = recent
            recent.append(record)

    def _consider_quarantine(self, tenant_id: str, model,
                             record: SignalRecord,
                             decision: GeofenceDecision) -> None:
        """Quarantine feed: offer *rejected* records as recovery evidence.

        The mirror image of :meth:`_remember_inlier` — outside and
        unembeddable (+inf) decisions, i.e. exactly what the reservoir
        refuses.  The buffer's own gates (home-AP anchor, consistency
        under augmentation, reservoir draw) decide admission; scoring
        augmented copies uses the model's side-effect-free ``predict``,
        so the decision stream is untouched whether or not quarantine
        runs.  Call with the lock held.
        """
        if not self.quarantine_size or decision.inside:
            return
        buffer = self._quarantine.get(tenant_id)
        if buffer is None:
            buffer = QuarantineBuffer(self.quarantine_size,
                                      seed=self.quarantine_seed,
                                      tenant_key=tenant_id,
                                      gate=self.quarantine_gate)
            buffer.set_home(home_anchor_macs(self._anchors.get(tenant_id, ()),
                                             buffer.min_anchor_fraction))
            self._quarantine[tenant_id] = buffer
        outcome = buffer.consider(model, record)
        self.telemetry.record_quarantine(outcome)
        if outcome == "admitted":
            self._sync_quarantine_gauge()

    def _sync_quarantine_gauge(self) -> None:
        """Mirror total resident quarantine depth.  Lock held."""
        self.telemetry.record_quarantine_depth(
            sum(buffer.depth for buffer in self._quarantine.values()))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_tenants(self) -> list[str]:
        """Tenants currently in memory, least-recently-used first."""
        with self._lock:
            return list(self._cache)

    def is_dirty(self, tenant_id: str) -> bool:
        with self._lock:
            return tenant_id in self._dirty

    # ------------------------------------------------------------------
    # Internals (call with the lock held)
    # ------------------------------------------------------------------
    def _acquire(self, tenant_id: str) -> GeofenceModel:
        model = self._cache.get(tenant_id)
        if model is None:
            start = time.perf_counter()
            # One read yields both, so model and metadata always belong
            # to the same save even with a concurrent writer process.
            if self.incremental:
                model, manifest, baseline = self.registry.load_with_baseline(tenant_id)
                self._baselines[tenant_id] = baseline
            else:
                model, manifest = self.registry.load_with_manifest(tenant_id)
            metadata = dict(manifest.get("metadata", {}))
            # With reservoirs disabled, the persisted reservoir stays
            # inside the cached metadata so write-backs carry it forward
            # untouched — a reservoir_size=0 fleet must not destroy the
            # anchor a future maintaining fleet will refresh from.
            serialized = metadata.pop(RESERVOIR_METADATA_KEY, None) \
                if self.reservoir_size else None
            # Same carry-forward contract for the quarantine: a
            # quarantine-off fleet leaves the persisted buffer inside the
            # cached metadata, untouched, for a future recovering fleet.
            serialized_quarantine = metadata.pop(QUARANTINE_METADATA_KEY, None) \
                if self.quarantine_size else None
            self._metadata.setdefault(tenant_id, metadata)
            if serialized_quarantine is not None and tenant_id not in self._quarantine:
                self._quarantine[tenant_id] = QuarantineBuffer.from_state(
                    serialized_quarantine, capacity=self.quarantine_size,
                    seed=self.quarantine_seed, tenant_key=tenant_id,
                    gate=self.quarantine_gate)
                self._sync_quarantine_gauge()
            if serialized is not None and tenant_id not in self._anchors:
                self._anchors[tenant_id] = [
                    record_from_dict(item)
                    for item in serialized.get("anchor", ())][-self.reservoir_size:]
                recent: "deque[SignalRecord]" = deque(maxlen=self.reservoir_size)
                recent.extend(record_from_dict(item)
                              for item in serialized.get("recent", ()))
                self._recent[tenant_id] = recent
            self.telemetry.record_load(tenant_id, seconds=time.perf_counter() - start)
            self._cache[tenant_id] = model
            self._shrink(keep=tenant_id)
        self._cache.move_to_end(tenant_id)
        return model

    def _shrink(self, keep: str | None = None) -> None:
        while len(self._cache) > self.capacity:
            victim = next(iter(self._cache))
            if victim == keep:
                self._cache.move_to_end(victim)
                victim = next(iter(self._cache))
            self._drop(victim)

    def _drop(self, tenant_id: str) -> None:
        """Evict one resident tenant: write back, then forget.

        Write-back happens *before* the pops: if the save fails, the
        tenant stays resident and dirty instead of losing its absorbed
        self-updates.  Metadata leaves memory with the model; otherwise
        a long-lived fleet grows one entry per tenant ever touched.
        """
        self._write_back(tenant_id, self._cache[tenant_id])
        self._cache.pop(tenant_id)
        self._metadata.pop(tenant_id, None)
        # The reservoir was persisted with the write-back (or was never
        # dirtied); the next load restores it from the manifest.  The
        # baseline leaves with the model: a reload rebuilds it from the
        # committed chain, which is exactly what it would describe.
        self._anchors.pop(tenant_id, None)
        self._recent.pop(tenant_id, None)
        if self._quarantine.pop(tenant_id, None) is not None:
            self._sync_quarantine_gauge()
        self._baselines.pop(tenant_id, None)
        self.telemetry.record_eviction(tenant_id)
        # Bound telemetry memory the same way: fold the evicted tenant's
        # counters into the retired aggregate.
        self.telemetry.retire(tenant_id)

    def _write_back(self, tenant_id: str, model) -> None:
        if tenant_id not in self._dirty:
            return
        # The partial self-update buffer is checkpointed as-is (not
        # flushed), so a reloaded model resumes with zero decision drift.
        self._save(tenant_id, model)
        self._dirty.discard(tenant_id)

    def _save(self, tenant_id: str, model) -> None:
        with maybe_span(self.tracer, "write_back", tenant=tenant_id) as span:
            start = time.perf_counter()
            metadata = dict(self._metadata.get(tenant_id, {}))
            anchor = self._anchors.get(tenant_id, ())
            recent = self._recent.get(tenant_id, ())
            if anchor or recent:
                metadata[RESERVOIR_METADATA_KEY] = {
                    "anchor": [record_to_dict(r) for r in anchor],
                    "recent": [record_to_dict(r) for r in recent],
                }
            buffer = self._quarantine.get(tenant_id)
            if buffer is not None and not buffer.dormant:
                metadata[QUARANTINE_METADATA_KEY] = buffer.state_dict()
            if self.incremental:
                kind, baseline = self.registry.save_incremental(
                    tenant_id, model, self._baselines.get(tenant_id),
                    metadata=metadata, max_chain=self.max_delta_chain,
                    max_fraction=self.delta_max_fraction)
                self._baselines[tenant_id] = baseline
                elapsed = time.perf_counter() - start
                if kind == "delta":
                    self.telemetry.record_delta_save(tenant_id, seconds=elapsed)
                else:
                    self.telemetry.record_save(tenant_id, seconds=elapsed)
            else:
                self.registry.save(tenant_id, model, metadata=metadata)
                self.telemetry.record_save(tenant_id, seconds=time.perf_counter() - start)
            # Byte-level accounting comes from the checkpoint layer (the
            # save just ran on this thread); kind lands on the span so a
            # slow write-back trace says whether compaction paid for it.
            stats = last_write()
            if stats is not None:
                self.telemetry.record_write_stats(stats.kind, stats.bytes_written,
                                                  stats.chain_length)
                if span is not None:
                    span.attrs["kind"] = stats.kind
