"""Serving telemetry: per-tenant and fleet-wide counters.

The fleet records every observation outcome and every model lifecycle
event (load, save, eviction) against the tenant it belongs to.
Counters are plain integers plus a few seconds-accumulators, guarded by
one lock so concurrent observers aggregate safely; :meth:`snapshot`
returns deep copies that are safe to serialise or diff.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field, fields

__all__ = ["TenantStats", "FleetTelemetry"]


@dataclass
class TenantStats:
    """Cumulative counters for one tenant."""

    observations: int = 0
    inside: int = 0
    outside: int = 0
    unembeddable: int = 0      # footnote-3 records (score = +inf)
    buffered: int = 0          # confident inliers entering the update buffer
    updates_applied: int = 0   # batch updates actually flushed into the detector
    loads: int = 0             # checkpoint loads (cache misses)
    saves: int = 0             # full checkpoint write-backs
    delta_saves: int = 0       # incremental (delta) write-backs
    evictions: int = 0         # LRU evictions
    refreshes: int = 0         # coordinated refreshes (cache rebuild + refit)
    reprovisions: int = 0      # full refits from the recent-inlier reservoir
    observe_seconds: float = 0.0
    load_seconds: float = 0.0
    save_seconds: float = 0.0
    refresh_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "TenantStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


@dataclass
class FleetTelemetry:
    """Thread-safe registry of :class:`TenantStats`, one per tenant.

    Per-tenant entries are bounded: when the fleet evicts a tenant it
    calls :meth:`retire`, folding the counters into one ``retired``
    aggregate so fleet-wide totals stay exact while memory stays
    proportional to the *resident* set, not every tenant ever served.
    """

    _stats: dict[str, TenantStats] = field(default_factory=dict)
    _retired: TenantStats = field(default_factory=TenantStats)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def _tenant(self, tenant_id: str) -> TenantStats:
        stats = self._stats.get(tenant_id)
        if stats is None:
            stats = self._stats.setdefault(tenant_id, TenantStats())
        return stats

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_observation(self, tenant_id: str, decision, seconds: float = 0.0) -> None:
        """Fold one GeofenceDecision into the tenant's counters."""
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.observations += 1
            if decision.inside:
                stats.inside += 1
            else:
                stats.outside += 1
            if math.isinf(decision.score):
                stats.unembeddable += 1
            if decision.buffered:
                stats.buffered += 1
            if decision.updated:
                stats.updates_applied += 1
            stats.observe_seconds += seconds

    def record_load(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.loads += 1
            stats.load_seconds += seconds

    def record_save(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.saves += 1
            stats.save_seconds += seconds

    def record_delta_save(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.delta_saves += 1
            stats.save_seconds += seconds

    def record_eviction(self, tenant_id: str) -> None:
        with self._lock:
            self._tenant(tenant_id).evictions += 1

    def record_refresh(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.refreshes += 1
            stats.refresh_seconds += seconds

    def record_reprovision(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.reprovisions += 1
            stats.refresh_seconds += seconds

    def retire(self, tenant_id: str) -> None:
        """Fold a no-longer-resident tenant's counters into the aggregate."""
        with self._lock:
            stats = self._stats.pop(tenant_id, None)
            if stats is not None:
                self._retired.merge(stats)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def tenant(self, tenant_id: str) -> TenantStats:
        """Copy of one tenant's counters (zeros if never seen)."""
        with self._lock:
            stats = self._stats.get(tenant_id, TenantStats())
            return TenantStats(**stats.as_dict())

    def totals(self) -> TenantStats:
        """Fleet-wide counters: every tracked tenant plus the retired sum."""
        with self._lock:
            total = TenantStats(**self._retired.as_dict())
            for stats in self._stats.values():
                total.merge(stats)
            return total

    def snapshot(self) -> dict:
        """``{"tenants", "retired", "totals"}`` counters, deep-copied.

        ``tenants`` holds per-tenant counters for tenants not yet
        retired; ``retired`` is the folded aggregate of evicted ones;
        ``totals`` is their exact fleet-wide sum.
        """
        with self._lock:
            tenants = {tid: stats.as_dict() for tid, stats in sorted(self._stats.items())}
            retired = self._retired.as_dict()
        total = TenantStats(**retired)
        for counters in tenants.values():
            total.merge(TenantStats(**counters))
        return {"tenants": tenants, "retired": retired, "totals": total.as_dict()}
