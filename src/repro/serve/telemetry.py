"""Serving telemetry: per-tenant and fleet-wide counters.

The fleet records every observation outcome and every model lifecycle
event (load, save, eviction) against the tenant it belongs to.
Counters are plain integers plus a few seconds-accumulators, guarded by
one lock so concurrent observers aggregate safely; :meth:`snapshot`
returns deep copies that are safe to serialise or diff, with tenants,
retired aggregate and totals all read under a single lock acquisition
so the three sections describe the same instant (conservation: totals
== sum(tenants) + retired, always).

Optionally a telemetry instance is **backed by a**
:class:`~repro.obs.metrics.MetricsRegistry`: every ``record_*`` call
additionally feeds labeled counter/histogram families (``shard``,
``tenant_class``, ``op``), which is how the sharded runtime gets
latency percentiles and a Prometheus export without touching the
fleet's hot path twice.  The mirror is write-through with pre-resolved
children — a handful of cheap per-child lock acquisitions per record —
and the classic :meth:`snapshot` shape is unchanged either way.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, fields
from typing import Callable

__all__ = ["TenantStats", "FleetTelemetry"]


@dataclass
class TenantStats:
    """Cumulative counters for one tenant."""

    observations: int = 0
    inside: int = 0
    outside: int = 0
    unembeddable: int = 0      # footnote-3 records (score = +inf)
    buffered: int = 0          # confident inliers entering the update buffer
    updates_applied: int = 0   # batch updates actually flushed into the detector
    loads: int = 0             # checkpoint loads (cache misses)
    saves: int = 0             # full checkpoint write-backs
    delta_saves: int = 0       # incremental (delta) write-backs
    evictions: int = 0         # LRU evictions
    refreshes: int = 0         # coordinated refreshes (cache rebuild + refit)
    reprovisions: int = 0      # full refits from the recent-inlier reservoir
    observe_seconds: float = 0.0
    load_seconds: float = 0.0
    save_seconds: float = 0.0
    refresh_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "TenantStats") -> None:
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))


class FleetTelemetry:
    """Thread-safe registry of :class:`TenantStats`, one per tenant.

    Per-tenant entries are bounded: when the fleet evicts a tenant it
    calls :meth:`retire`, folding the counters into one ``retired``
    aggregate so fleet-wide totals stay exact while memory stays
    proportional to the *resident* set, not every tenant ever served.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` to mirror
        every recording into (shared across shards; the ``shard`` label
        keeps series apart).
    shard:
        Value of the ``shard`` label on mirrored series.
    tenant_class_of:
        Optional ``tenant_id -> class label`` mapping for the
        ``tenant_class`` label on decision counters (cardinality
        control: label *classes* of tenants, never tenant ids).
        Defaults to the single class ``"all"``.
    """

    def __init__(self, metrics=None, shard: str = "0",
                 tenant_class_of: Callable[[str], str] | None = None):
        self._stats: dict[str, TenantStats] = {}
        self._retired = TenantStats()
        self._lock = threading.Lock()
        self._metrics = metrics
        self._shard = str(shard)
        self._tenant_class_of = tenant_class_of
        if metrics is not None:
            self._decisions = metrics.counter(
                "repro_decisions_total",
                help="Geofence decisions by outcome",
                labels=("shard", "tenant_class", "result"))
            self._unembeddable = metrics.counter(
                "repro_unembeddable_total",
                help="Records with no embeddable MAC overlap (score=+inf)",
                labels=("shard", "tenant_class"))
            self._buffered = metrics.counter(
                "repro_update_buffered_total",
                help="Confident inliers entering the self-update buffer",
                labels=("shard",)).labels(shard=self._shard)
            self._applied = metrics.counter(
                "repro_updates_applied_total",
                help="Batch self-updates flushed into detectors",
                labels=("shard",)).labels(shard=self._shard)
            self._op_seconds = metrics.histogram(
                "repro_op_seconds",
                help="Latency of serving and maintenance operations",
                labels=("shard", "op"))
            self._lifecycle = metrics.counter(
                "repro_lifecycle_total",
                help="Model lifecycle events by operation",
                labels=("shard", "op"))
            self._bytes = metrics.counter(
                "repro_checkpoint_bytes_total",
                help="Checkpoint bytes written, by save kind",
                labels=("shard", "kind"))
            self._chain = metrics.gauge(
                "repro_delta_chain_length",
                help="Delta-chain length after the most recent write-back",
                labels=("shard",)).labels(shard=self._shard)
            self._quarantine_admissions = metrics.counter(
                "repro_quarantine_admissions_total",
                help="Quarantine admission decisions by outcome "
                     "(admitted / no-anchor / inconsistent / sampled-out)",
                labels=("shard", "outcome"))
            self._quarantine_depth = metrics.gauge(
                "repro_quarantine_depth",
                help="Rejected-but-home-anchored records held across this "
                     "shard's resident quarantine buffers",
                labels=("shard",)).labels(shard=self._shard)
            # Outcome children resolved lazily (the set is closed but a
            # quarantine-off fleet should create no series at all).
            self._quarantine_children: dict[str, object] = {}
            # Pre-resolved histogram/lifecycle children (op label is a
            # closed set, so resolve once and index by op string).
            ops = ("observe", "load", "save", "delta_save", "evict",
                   "refresh", "reprovision")
            self._op_children = {op: self._op_seconds.labels(shard=self._shard, op=op)
                                 for op in ops}
            self._lifecycle_children = {op: self._lifecycle.labels(shard=self._shard, op=op)
                                        for op in ops}
            # (inside, outside, unembeddable) counter triples per class.
            self._class_children: dict[str, tuple] = {}

    @property
    def metrics(self):
        """The backing MetricsRegistry (None when unmirrored)."""
        return self._metrics

    @property
    def shard(self) -> str:
        """Value of the ``shard`` label on mirrored series."""
        return self._shard

    def _tenant(self, tenant_id: str) -> TenantStats:
        stats = self._stats.get(tenant_id)
        if stats is None:
            stats = self._stats.setdefault(tenant_id, TenantStats())
        return stats

    def _decision_children(self, tenant_id: str) -> tuple:
        label = self._tenant_class_of(tenant_id) if self._tenant_class_of else "all"
        children = self._class_children.get(label)
        if children is None:
            children = (
                self._decisions.labels(shard=self._shard, tenant_class=label,
                                       result="inside"),
                self._decisions.labels(shard=self._shard, tenant_class=label,
                                       result="outside"),
                self._unembeddable.labels(shard=self._shard, tenant_class=label),
            )
            self._class_children[label] = children
        return children

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_observation(self, tenant_id: str, decision, seconds: float = 0.0) -> None:
        """Fold one GeofenceDecision into the tenant's counters."""
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.observations += 1
            if decision.inside:
                stats.inside += 1
            else:
                stats.outside += 1
            if math.isinf(decision.score):
                stats.unembeddable += 1
            if decision.buffered:
                stats.buffered += 1
            if decision.updated:
                stats.updates_applied += 1
            stats.observe_seconds += seconds
        if self._metrics is not None:
            inside, outside, unembeddable = self._decision_children(tenant_id)
            (inside if decision.inside else outside).inc()
            if math.isinf(decision.score):
                unembeddable.inc()
            if decision.buffered:
                self._buffered.inc()
            if decision.updated:
                self._applied.inc()
            self._op_children["observe"].observe(seconds)

    def record_observations(self, tenant_id: str, decisions,
                            seconds: float = 0.0) -> None:
        """Fold a whole batch of decisions for one tenant.

        Equivalent to ``record_observation`` per decision with the
        per-record share of ``seconds`` (total batch seconds), but one
        lock acquisition covers the tenant counters — on the batch data
        plane the per-record locking would otherwise rival the scoring
        work it measures.
        """
        if not decisions:
            return
        each = seconds / len(decisions)
        # Tally outside any lock, then apply each total in one locked
        # update — per-decision child.inc() calls would acquire ~3N
        # metric locks per batch and rival the scoring work itself.
        inside = unembeddable = buffered = updated = 0
        for decision in decisions:
            if decision.inside:
                inside += 1
            if math.isinf(decision.score):
                unembeddable += 1
            if decision.buffered:
                buffered += 1
            if decision.updated:
                updated += 1
        outside = len(decisions) - inside
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.observations += len(decisions)
            stats.inside += inside
            stats.outside += outside
            stats.unembeddable += unembeddable
            stats.buffered += buffered
            stats.updates_applied += updated
            stats.observe_seconds += seconds
        if self._metrics is not None:
            inside_child, outside_child, unembeddable_child = \
                self._decision_children(tenant_id)
            if inside:
                inside_child.inc(inside)
            if outside:
                outside_child.inc(outside)
            if unembeddable:
                unembeddable_child.inc(unembeddable)
            if buffered:
                self._buffered.inc(buffered)
            if updated:
                self._applied.inc(updated)
            self._op_children["observe"].observe_repeated(each, len(decisions))

    def _record_op(self, op: str, seconds: float | None = None) -> None:
        """Mirror one lifecycle event (and optionally its latency)."""
        if self._metrics is None:
            return
        self._lifecycle_children[op].inc()
        if seconds is not None:
            self._op_children[op].observe(seconds)

    def record_load(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.loads += 1
            stats.load_seconds += seconds
        self._record_op("load", seconds)

    def record_save(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.saves += 1
            stats.save_seconds += seconds
        self._record_op("save", seconds)

    def record_delta_save(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.delta_saves += 1
            stats.save_seconds += seconds
        self._record_op("delta_save", seconds)

    def record_eviction(self, tenant_id: str) -> None:
        with self._lock:
            self._tenant(tenant_id).evictions += 1
        self._record_op("evict")

    def record_refresh(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.refreshes += 1
            stats.refresh_seconds += seconds
        self._record_op("refresh", seconds)

    def record_reprovision(self, tenant_id: str, seconds: float = 0.0) -> None:
        with self._lock:
            stats = self._tenant(tenant_id)
            stats.reprovisions += 1
            stats.refresh_seconds += seconds
        self._record_op("reprovision", seconds)

    def record_quarantine(self, outcome: str) -> None:
        """Mirror one quarantine admission decision (metrics-only: the
        buffer itself is the source of truth for depth, and
        :class:`TenantStats` keeps its shape)."""
        if self._metrics is None:
            return
        child = self._quarantine_children.get(outcome)
        if child is None:
            child = self._quarantine_admissions.labels(shard=self._shard,
                                                       outcome=outcome)
            self._quarantine_children[outcome] = child
        child.inc()

    def record_quarantine_depth(self, depth: int) -> None:
        """Mirror the shard-wide resident quarantine depth."""
        if self._metrics is None:
            return
        self._quarantine_depth.set(depth)

    def record_write_stats(self, kind: str, nbytes: int, chain_length: int) -> None:
        """Mirror checkpoint write accounting (metrics-only; no
        :class:`TenantStats` field changes shape for this)."""
        if self._metrics is None:
            return
        self._bytes.labels(shard=self._shard, kind=kind).inc(nbytes)
        self._chain.set(chain_length)

    def retire(self, tenant_id: str) -> None:
        """Fold a no-longer-resident tenant's counters into the aggregate."""
        with self._lock:
            stats = self._stats.pop(tenant_id, None)
            if stats is not None:
                self._retired.merge(stats)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def tenant(self, tenant_id: str) -> TenantStats:
        """Copy of one tenant's counters (zeros if never seen)."""
        with self._lock:
            stats = self._stats.get(tenant_id, TenantStats())
            return TenantStats(**stats.as_dict())

    def totals(self) -> TenantStats:
        """Fleet-wide counters: every tracked tenant plus the retired sum."""
        with self._lock:
            total = TenantStats(**self._retired.as_dict())
            for stats in self._stats.values():
                total.merge(stats)
            return total

    def snapshot(self) -> dict:
        """``{"tenants", "retired", "totals"}`` counters, deep-copied.

        ``tenants`` holds per-tenant counters for tenants not yet
        retired; ``retired`` is the folded aggregate of evicted ones;
        ``totals`` is their exact fleet-wide sum.  All three come from
        one lock acquisition, so a snapshot taken mid-stream is
        internally consistent: a concurrent ``record_observation`` or
        ``retire`` lands entirely in this snapshot or entirely in the
        next, never half in each.
        """
        with self._lock:
            tenants = {tid: stats.as_dict() for tid, stats in sorted(self._stats.items())}
            retired = self._retired.as_dict()
            total = TenantStats(**self._retired.as_dict())
            for stats in self._stats.values():
                total.merge(stats)
            return {"tenants": tenants, "retired": retired, "totals": total.as_dict()}
