"""`repro.serve.runtime` — the sharded serving daemon.

PR 4 left `repro.serve` a passive library: one fleet, one lock, and a
controller that only acts when the caller remembers to call it.  The
:class:`ServingRuntime` is the serving *process* the ROADMAP's
millions-of-homes deployment needs:

* **Sharding** — tenants are hash-partitioned across N
  :class:`~repro.serve.shard.FleetShard`\\ s.  Each shard owns its own
  lock, LRU slice and telemetry, so observations for tenants on
  different shards never contend; the partition is a stable function of
  the tenant id (CRC-32), so a tenant's shard — and therefore its LRU
  behaviour — is deterministic across runs and processes.
* **Background maintenance** — a
  :class:`~repro.serve.scheduler.MaintenanceScheduler` worker drains
  each shard's decision bus into its controller and executes policy
  decisions (coordinated refresh, escalation to re-provision, flush,
  idle eviction) off the observe path.  Refreshes run swap-on-commit:
  the shard lock is held for the model copy and the pointer swap, not
  for the rebuild in between.
* **Incremental checkpoints** — shards default to the delta write-back
  format (:func:`repro.serve.checkpoint.save_incremental`), cutting the
  LRU's write-back amplification: an eviction whose state only grew
  appends a tail instead of rewriting the model.

Determinism contract: ``ServingRuntime(root, num_shards=1,
scheduler_interval=None, incremental=False)`` is bit-identical to a
bare :class:`~repro.serve.fleet.GeofenceFleet` — same decisions, same
checkpoint state — and with ``incremental=True`` the *reconstructed*
state is still identical; only the on-disk layout differs.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Callable, Iterable, Sequence

from repro.core.protocols import GeofenceDecision, GeofenceModel
from repro.core.records import SignalRecord
from repro.obs.export import render_prometheus
from repro.obs.health import HealthMonitor
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import Tracer
from repro.pipeline import PipelineSpec
from repro.serve.fleet import DEFAULT_RESERVOIR_SIZE
from repro.serve.policy import MaintenancePolicy
from repro.serve.registry import ModelRegistry
from repro.serve.scheduler import MaintenanceScheduler
from repro.serve.shard import FleetShard
from repro.serve.telemetry import TenantStats

__all__ = ["ServingRuntime", "shard_index"]


def shard_index(tenant_id: str, num_shards: int) -> int:
    """Stable tenant → shard partition (CRC-32 of the id).

    Python's own ``hash()`` is salted per process; CRC-32 keeps the
    partition identical across runs, processes and machines, so a
    tenant's checkpoint is always maintained by the same shard of any
    equally-sized runtime.
    """
    return zlib.crc32(tenant_id.encode("utf-8")) % num_shards


class ServingRuntime:
    """Hash-sharded, background-maintained, multi-tenant geofence server.

    Parameters
    ----------
    registry:
        Shared checkpoint store (or a path to root one at).  Shards
        share the registry; they never share a tenant.
    num_shards:
        Fleet shards to partition tenants across.
    capacity:
        LRU budget *per shard* (each shard owns its slice outright; a
        runtime holds at most ``num_shards * capacity`` resident models).
    policy / policies:
        Default and per-tenant maintenance policies, executed by each
        shard's controller on the maintenance worker.
    scheduler_interval:
        Seconds between background maintenance ticks; ``None`` disables
        the worker entirely (serial mode — call :meth:`maintain` to pump
        by hand).
    sweep_every:
        Run controller sweeps every N ticks (see
        :class:`~repro.serve.scheduler.MaintenanceScheduler`).
    incremental:
        Use the incremental checkpoint format for write-backs
        (default on — this is the runtime's amplification fix; pass
        False for byte-layout compatibility with plain fleets).
    model_factory / reservoir_size / max_delta_chain / delta_max_fraction:
        Forwarded to each shard's :class:`GeofenceFleet`.
    quarantine_size / quarantine_seed:
        Forwarded to each shard's fleet: capacity (0 disables — the
        default, keeping existing runtimes bit-identical) and sampling
        seed of the per-tenant
        :class:`~repro.serve.quarantine.QuarantineBuffer` that collects
        admission-gated rejected evidence for starvation recovery.
    observability:
        Wire a :class:`~repro.obs.metrics.MetricsRegistry`, a
        :class:`~repro.obs.tracing.Tracer` and a
        :class:`~repro.obs.health.HealthMonitor` through every shard,
        controller and the scheduler (default on; the mirror is a few
        cached-child counter bumps per operation and never changes a
        decision).  Read back via :meth:`metrics` /
        :meth:`export_prometheus`.  Pass False for a bare runtime — the
        overhead benchmark's control arm.
    tenant_class_of:
        Optional ``tenant_id -> class label`` mapping for the
        ``tenant_class`` metric label (cardinality control; defaults to
        one ``"all"`` class).
    slow_trace_threshold / slow_trace_ring:
        Root spans at least this many seconds long enter the tracer's
        bounded ring of recent slow traces (see
        :class:`~repro.obs.tracing.Tracer`).
    """

    def __init__(self, registry: ModelRegistry | str, num_shards: int = 1,
                 capacity: int = 8,
                 model_factory: Callable[[], GeofenceModel] | None = None,
                 reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
                 incremental: bool = True,
                 max_delta_chain: int | None = None,
                 delta_max_fraction: float | None = None,
                 policy: MaintenancePolicy | None = None,
                 policies: dict[str, MaintenancePolicy] | None = None,
                 scheduler_interval: float | None = 0.05,
                 sweep_every: int = 20,
                 quarantine_size: int = 0,
                 quarantine_seed: int = 0,
                 observability: bool = True,
                 tenant_class_of: Callable[[str], str] | None = None,
                 slow_trace_threshold: float = 0.1,
                 slow_trace_ring: int = 64):
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.registry = registry if isinstance(registry, ModelRegistry) \
            else ModelRegistry(registry)
        self.num_shards = num_shards
        if observability:
            self.metrics_registry = MetricsRegistry()
            self.tracer = Tracer(slow_threshold=slow_trace_threshold,
                                 ring_size=slow_trace_ring)
            self.health = HealthMonitor(metrics=self.metrics_registry)
            # Pull-style gauges the runtime refreshes at snapshot time.
            self._queue_gauge = self.metrics_registry.gauge(
                "repro_shard_queue_depth",
                help="Pending decisions on each shard's bus",
                labels=("shard",))
            self._pump_age_gauge = self.metrics_registry.gauge(
                "repro_scheduler_last_pump_age_seconds",
                help="Seconds since each shard's last completed pump",
                labels=("shard",))
        else:
            self.metrics_registry = None
            self.tracer = None
            self.health = None
        background = scheduler_interval is not None
        # Serial mode arms the decision bus at construction when a
        # configured policy could act (maintain() is the pump there); a
        # background runtime always starts disarmed and arms in start(),
        # so a constructed-but-never-started daemon cannot accumulate
        # decisions nothing will ever pump.  `None` lets the shard
        # derive the policy-could-act default in one place.
        track = False if background else None
        self.shards = [
            FleetShard(index, self.registry, capacity=capacity,
                       model_factory=model_factory,
                       reservoir_size=reservoir_size,
                       incremental=incremental,
                       max_delta_chain=max_delta_chain,
                       delta_max_fraction=delta_max_fraction,
                       policy=policy, policies=policies,
                       track_decisions=track,
                       metrics=self.metrics_registry, tracer=self.tracer,
                       tenant_class_of=tenant_class_of,
                       quarantine_size=quarantine_size,
                       quarantine_seed=quarantine_seed)
            for index in range(num_shards)
        ]
        self.scheduler = MaintenanceScheduler(
            self.shards, interval=scheduler_interval,
            sweep_every=sweep_every,
            metrics=self.metrics_registry) if background else None
        self._closed = False

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, tenant_id: str) -> FleetShard:
        """The shard that owns ``tenant_id`` (stable across runs)."""
        return self.shards[shard_index(tenant_id, self.num_shards)]

    # ------------------------------------------------------------------
    # Commit events
    # ------------------------------------------------------------------
    def on_commit(self, listener) -> Callable[[], None]:
        """Call ``listener(tenant_id, CommitInfo)`` after every committed
        checkpoint write any shard performs (provision, flush, eviction
        write-back, delta append, compaction).

        This is the replication hook: a
        :class:`~repro.serve.cluster.replicate.DeltaShipper` subscribes
        here to stream committed format-3 delta entries (and full saves)
        to a standby registry.  Shards share one registry, so one
        subscription covers the whole runtime; returns an unsubscribe
        callable.
        """
        return self.registry.subscribe(listener)

    # ------------------------------------------------------------------
    # Daemon lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ServingRuntime":
        """Launch background maintenance (no-op in serial mode).

        Also arms every shard's decision bus: per-tenant policies can
        arrive via a tenant spec's ``maintenance`` block, which only the
        controller can see, so a running daemon tracks everything.
        Observations served before ``start()`` are not tracked.
        """
        if self.scheduler is not None:
            for shard in self.shards:
                shard.track_decisions = True
            self.scheduler.start()
        return self

    def close(self) -> None:
        """Stop maintenance (final drain included), flush and drop all shards."""
        if self._closed:
            return
        if self.scheduler is not None and (self.scheduler.running
                                           or any(s.pending_decisions for s in self.shards)):
            self.scheduler.stop()
        for shard in self.shards:
            shard.close()
        self._closed = True

    def __enter__(self) -> "ServingRuntime":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------
    def observe(self, tenant_id: str, record: SignalRecord) -> GeofenceDecision:
        """Algorithm-2 observation, routed to the owning shard."""
        return self.shard_for(tenant_id).observe(tenant_id, record)

    def observe_many(self, items: Iterable[tuple[str, SignalRecord]]) -> list[GeofenceDecision]:
        """Batched dispatch: split by shard, answer in input order.

        Each shard keeps its own batched grouping (one model lookup per
        tenant per batch), so a single-shard runtime is exactly
        ``GeofenceFleet.observe_many``.
        """
        items = list(items)
        by_shard: "OrderedDict[int, list[int]]" = OrderedDict()
        for position, (tenant_id, _) in enumerate(items):
            by_shard.setdefault(shard_index(tenant_id, self.num_shards),
                                []).append(position)
        decisions: list[GeofenceDecision | None] = [None] * len(items)
        for index, positions in by_shard.items():
            batch = self.shards[index].observe_many(items[p] for p in positions)
            for position, decision in zip(positions, batch):
                decisions[position] = decision
        return decisions

    def score(self, tenant_id: str, record: SignalRecord) -> float:
        return self.shard_for(tenant_id).score(tenant_id, record)

    # ------------------------------------------------------------------
    # Tenant lifecycle / maintenance mechanics
    # ------------------------------------------------------------------
    def provision(self, tenant_id: str, records: Sequence[SignalRecord],
                  metadata: dict | None = None,
                  spec: PipelineSpec | None = None) -> GeofenceModel:
        return self.shard_for(tenant_id).provision(tenant_id, records,
                                                   metadata=metadata, spec=spec)

    def refresh(self, tenant_id: str, admit_new_macs_after: int | None = None) -> int:
        return self.shard_for(tenant_id).refresh(
            tenant_id, admit_new_macs_after=admit_new_macs_after)

    def reprovision(self, tenant_id: str) -> GeofenceModel:
        return self.shard_for(tenant_id).reprovision(tenant_id)

    def reprovision_from_quarantine(self, tenant_id: str,
                                    max_fpr: float | None = 0.5) -> GeofenceModel:
        return self.shard_for(tenant_id).reprovision_from_quarantine(
            tenant_id, max_fpr=max_fpr)

    def evict(self, tenant_id: str) -> bool:
        return self.shard_for(tenant_id).evict(tenant_id)

    def flush(self, tenant_id: str | None = None) -> int:
        if tenant_id is not None:
            return self.shard_for(tenant_id).flush(tenant_id)
        return sum(shard.flush() for shard in self.shards)

    def is_dirty(self, tenant_id: str) -> bool:
        return self.shard_for(tenant_id).fleet.is_dirty(tenant_id)

    def reservoir(self, tenant_id: str) -> list[SignalRecord]:
        return self.shard_for(tenant_id).fleet.reservoir(tenant_id)

    def quarantine(self, tenant_id: str) -> list[SignalRecord]:
        return self.shard_for(tenant_id).fleet.quarantine(tenant_id)

    # ------------------------------------------------------------------
    # Recovery proposals (operator surface, merged across shards)
    # ------------------------------------------------------------------
    def pending_recoveries(self) -> dict[str, dict]:
        """Pending quarantine-recovery proposals across every shard's
        controller (tenants are shard-disjoint, so a plain merge)."""
        out: dict[str, dict] = {}
        for shard in self.shards:
            out.update(shard.controller.pending_recoveries())
        return out

    def approve_recovery(self, tenant_id: str) -> None:
        self.shard_for(tenant_id).controller.approve_recovery(tenant_id)

    def deny_recovery(self, tenant_id: str) -> bool:
        return self.shard_for(tenant_id).controller.deny_recovery(tenant_id)

    def maintain(self) -> int:
        """One synchronous pump + sweep over every shard (serial mode).

        With a live background scheduler this is unnecessary (and must
        not race it); it exists so a serial runtime — or a test — can
        run the exact same maintenance the daemon would, on the caller's
        thread.  Returns the number of decisions drained.
        """
        if self.scheduler is not None and self.scheduler.running:
            raise RuntimeError("maintain() would race the running background "
                               "scheduler; call it only in serial mode or "
                               "after stop()")
        drained = 0
        for shard in self.shards:
            drained += shard.pump()
            shard.sweep()
        return drained

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_tenants(self) -> list[str]:
        """Resident tenants across shards (shard-major, LRU order within)."""
        out: list[str] = []
        for shard in self.shards:
            out.extend(shard.resident_tenants)
        return out

    def telemetry_totals(self) -> TenantStats:
        """Fleet-wide counters summed across every shard."""
        total = TenantStats()
        for shard in self.shards:
            total.merge(shard.fleet.telemetry.totals())
        return total

    def telemetry_snapshot(self) -> dict:
        """Merged per-tenant/fleet counters (tenants are shard-disjoint)."""
        tenants: dict[str, dict] = {}
        retired = TenantStats()
        for shard in self.shards:
            snapshot = shard.fleet.telemetry.snapshot()
            tenants.update(snapshot["tenants"])
            retired.merge(TenantStats(**snapshot["retired"]))
        totals = TenantStats(**retired.as_dict())
        for counters in tenants.values():
            totals.merge(TenantStats(**counters))
        return {"tenants": dict(sorted(tenants.items())),
                "retired": retired.as_dict(), "totals": totals.as_dict()}

    def maintenance_actions(self) -> list[tuple[str, str]]:
        """Controller action log across shards, shard-major order."""
        out: list[tuple[str, str]] = []
        for shard in self.shards:
            out.extend(shard.controller.actions)
        return out

    def stats(self) -> dict:
        """Operational summary: shards, residency, scheduler, telemetry."""
        totals = self.telemetry_totals()
        return {
            "num_shards": self.num_shards,
            "resident": [len(shard.resident_tenants) for shard in self.shards],
            "pending_decisions": [shard.pending_decisions for shard in self.shards],
            "scheduler": self.scheduler.stats() if self.scheduler is not None else None,
            "totals": totals.as_dict(),
        }

    # ------------------------------------------------------------------
    # Observability read surfaces
    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        """Full observability snapshot (requires ``observability=True``).

        Refreshes the pull-style gauges (per-shard queue depth,
        scheduler pump recency), evaluates every health probe, and
        returns ``{"families", "health", "traces", "scheduler"}`` —
        plain data, deterministic key order, safe to serialise with
        :func:`repro.obs.export.snapshot_to_json` or render with
        :func:`~repro.obs.export.render_prometheus`.
        """
        if self.metrics_registry is None:
            raise RuntimeError("runtime was built with observability=False; "
                               "no metrics to snapshot")
        for shard in self.shards:
            self._queue_gauge.labels(shard=str(shard.index)).set(
                shard.pending_decisions)
        if self.scheduler is not None:
            for index, age in self.scheduler.last_pump_ages().items():
                self._pump_age_gauge.labels(shard=str(index)).set(age)
        health = self.health.check(self)
        return {
            "families": self.metrics_registry.snapshot(),
            "health": {name: result.as_dict()
                       for name, result in health.items()},
            "traces": self.tracer.snapshot(),
            "scheduler": (self.scheduler.snapshot()
                          if self.scheduler is not None else None),
        }

    def health_report(self) -> dict[str, dict]:
        """Probe results alone, ``ProbeResult.as_dict()`` form.

        The JSON-safe shape the cluster ``health`` op ships: cheaper
        than :meth:`metrics` when the caller wants grades, not series.
        """
        if self.health is None:
            raise RuntimeError("runtime was built with observability=False; "
                               "no health probes to evaluate")
        return {name: result.as_dict()
                for name, result in self.health.check(self).items()}

    def export_prometheus(self) -> str:
        """Prometheus text exposition of the current metrics snapshot."""
        return render_prometheus(self.metrics())
