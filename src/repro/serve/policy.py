"""Declarative fleet-maintenance policies (the control plane's contract).

A :class:`MaintenancePolicy` says *when* the control plane should act on
a tenant — scheduled or telemetry-triggered coordinated refresh,
escalation to a full re-provision, periodic write-back, idle eviction —
without saying anything about *how* (that is
:class:`~repro.serve.controller.FleetController`'s job) or touching the
data plane (``GeofenceFleet.observe``/``score`` never consult a policy).

Policies are frozen, JSON-round-tripping and validating, like every
other declarative object in the repo, and may travel as the optional
``maintenance`` block of a :class:`~repro.pipeline.spec.PipelineSpec` —
so the arm, its drift workload and its maintenance contract live in one
portable description.

All cadences are counted in *observations of that tenant*, not wall
time: a fleet has no global clock its tenants agree on, but every
maintenance decision in the paper's setting (drift absorbed per record,
reservoirs of recent inliers) is naturally per-observation.

The default-constructed policy is a no-op (``check_every=0``): a
controller running it never touches any model, which is what makes
"fleet + controller with no-op policy == plain fleet, bit for bit" a
testable invariant.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Mapping

from repro.obs.health import DEFAULT_STARVATION_WINDOW

__all__ = ["MaintenancePolicy", "RecoveryPolicy"]


def _check_count(value, name: str) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


def _check_rate(value, name: str) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError(f"{name} must be a number in [0, 1] or null, got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class RecoveryPolicy:
    """When (and how autonomously) to recover from reservoir starvation.

    Travels as the optional ``recovery`` block of a
    :class:`MaintenancePolicy`.  The controller **arms** recovery for a
    tenant when all three hold at a policy evaluation:

    * its stuck-maintenance streak (``FleetController.stuck_streaks``,
      the signal behind the ``stuck_refresh`` health probe) has reached
      ``after_stuck``;
    * its observations since the last inside decision grade at least
      *warn* against ``starvation_window`` (the same
      :func:`~repro.obs.health.grade` arithmetic as the
      ``reservoir_starvation`` probe — probe status and control-plane
      action cannot disagree);
    * its quarantine buffer holds at least ``min_quarantine`` records
      of admission-gated evidence.

    Armed recovery either executes immediately (``auto=True``) or is
    surfaced as a pending proposal for an operator to approve or deny
    (``repro maintain --action recover``, or
    ``FleetController.approve_recovery``).  Execution is
    :meth:`~repro.serve.fleet.GeofenceFleet.reprovision_from_quarantine`
    with ``max_fpr`` as the rollback guard: a recovered model that
    rejects more than that fraction of its own evidence set never
    replaces the serving one.

    Parameters
    ----------
    after_stuck:
        Arm after this many consecutive stuck maintenance rounds
        (failed refreshes, or triggered refreshes that did not clear
        their trigger).
    starvation_window:
        Observations since the last inside decision before the tenant
        counts as starving (warn threshold; matches the
        ``reservoir_starvation`` probe's default).
    min_quarantine:
        Minimum quarantined records before a refit is worth proposing —
        recovering from a handful of scans re-anchors the MAC universe
        on noise.
    auto:
        ``True`` executes armed recoveries on the spot (policy
        auto-approval); ``False`` (default) only registers a pending
        proposal.
    max_fpr:
        Rollback guard: abort (keep the old model serving) when the
        recovered model rejects more than this fraction of the
        quarantine records it was just fitted on; ``None`` disables the
        guard.

    Recovery rides the normal evaluation cadence, so the enclosing
    policy needs ``check_every > 0`` for it to ever fire.
    """

    after_stuck: int = 2
    starvation_window: int = DEFAULT_STARVATION_WINDOW
    min_quarantine: int = 16
    auto: bool = False
    max_fpr: float | None = 0.5

    def __post_init__(self):
        _check_count(self.after_stuck, "after_stuck")
        if self.after_stuck < 1:
            raise ValueError(f"after_stuck must be >= 1, got {self.after_stuck}")
        _check_count(self.min_quarantine, "min_quarantine")
        if self.min_quarantine < 1:
            raise ValueError(f"min_quarantine must be >= 1, got {self.min_quarantine}")
        if isinstance(self.starvation_window, bool) \
                or not isinstance(self.starvation_window, int) \
                or self.starvation_window < 1:
            raise ValueError(f"starvation_window must be an integer >= 1, "
                             f"got {self.starvation_window!r}")
        if not isinstance(self.auto, bool):
            raise ValueError(f"auto must be a boolean, got {self.auto!r}")
        _check_rate(self.max_fpr, "max_fpr")

    def to_dict(self) -> dict:
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "RecoveryPolicy":
        if not isinstance(data, Mapping):
            raise ValueError(f"recovery policy must be a mapping, got "
                             f"{type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"recovery policy has unknown keys {sorted(unknown)}; "
                             f"known keys: {', '.join(sorted(known))}")
        return cls(**dict(data))

    def describe(self) -> str:
        mode = "auto" if self.auto else "propose"
        guard = f", roll back above FPR {self.max_fpr:g}" \
            if self.max_fpr is not None else ""
        return (f"{mode} recovery after {self.after_stuck} stuck + "
                f"{self.starvation_window} starved obs "
                f"(>= {self.min_quarantine} quarantined{guard})")


@dataclass(frozen=True)
class MaintenancePolicy:
    """When the control plane acts on one tenant.

    Parameters
    ----------
    check_every:
        Evaluate the policy every N observations; ``0`` disables the
        policy entirely (the no-op default).
    refresh_every:
        Scheduled coordinated refresh every N observations since the
        last refresh (or provision); ``0`` disables the schedule.
    max_unembeddable_rate:
        Telemetry trigger: refresh when the fraction of footnote-3
        unembeddable records in the evaluation window exceeds this.
    min_update_rate:
        Telemetry trigger: refresh when the fraction of observations
        entering the self-update buffer (confident inliers) in the
        window falls below this — a drifting world makes the detector
        stop trusting its inliers long before AUC collapses.
    min_window:
        Observations the evaluation window must hold before rate
        triggers may fire (rates over a handful of records are noise).
    admit_new_macs_after:
        Support-threshold MAC admission at refresh: a MAC first seen
        after training joins inference-time aggregation once at least
        this many attached observations sense it (the middle ground
        between "never admit until re-provision", which recovers slowly
        after churn, and the legacy admit-everything behaviour, which
        collapses separation).  ``0`` keeps the strict trained-universe
        rule.
    reprovision_after:
        Escalation: after this many *consecutive* telemetry-triggered
        refreshes that failed to clear the trigger, re-provision (full
        refit from the recent-inlier reservoir) instead of refreshing
        again; ``0`` never escalates.
    flush_every:
        Write the tenant's dirty state back to the registry every N
        observations (durability cadence); ``0`` leaves write-back to
        eviction/close.
    evict_idle_sweeps:
        During :meth:`FleetController.maintain` sweeps, evict a resident
        tenant that saw no observations for this many consecutive
        sweeps; ``0`` never evicts.
    recovery:
        Optional :class:`RecoveryPolicy` (or its mapping form): arm a
        quarantine-fed recovery when stuck maintenance meets reservoir
        starvation.  ``None`` (the default) never recovers — fleets
        without a quarantine stay bit-identical to earlier releases.
    """

    check_every: int = 0
    refresh_every: int = 0
    max_unembeddable_rate: float | None = None
    min_update_rate: float | None = None
    min_window: int = 16
    admit_new_macs_after: int = 0
    reprovision_after: int = 0
    flush_every: int = 0
    evict_idle_sweeps: int = 0
    recovery: RecoveryPolicy | None = None

    def __post_init__(self):
        for name in ("check_every", "refresh_every", "admit_new_macs_after",
                     "reprovision_after", "flush_every", "evict_idle_sweeps"):
            _check_count(getattr(self, name), name)
        _check_rate(self.max_unembeddable_rate, "max_unembeddable_rate")
        _check_rate(self.min_update_rate, "min_update_rate")
        if isinstance(self.min_window, bool) or not isinstance(self.min_window, int) \
                or self.min_window < 1:
            raise ValueError(f"min_window must be an integer >= 1, got {self.min_window!r}")
        if isinstance(self.recovery, Mapping):
            # JSON form arrives as a mapping; coerce so from_dict (and
            # direct construction from parsed spec blocks) both work.
            object.__setattr__(self, "recovery",
                               RecoveryPolicy.from_dict(self.recovery))
        elif self.recovery is not None and not isinstance(self.recovery, RecoveryPolicy):
            raise ValueError(f"recovery must be a RecoveryPolicy, a mapping or "
                             f"null, got {self.recovery!r}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def is_noop(self) -> bool:
        """True when a controller running this policy can never act."""
        return self.check_every == 0 and self.evict_idle_sweeps == 0

    def wants_refresh(self) -> bool:
        """True when any clause can demand a coordinated refresh (and the
        pipeline therefore must be refresh-capable)."""
        return bool(self.check_every) and (
            bool(self.refresh_every)
            or self.max_unembeddable_rate is not None
            or self.min_update_rate is not None)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        out: dict = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value != f.default:
                out[f.name] = value.to_dict() \
                    if isinstance(value, RecoveryPolicy) else value
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "MaintenancePolicy":
        if not isinstance(data, Mapping):
            raise ValueError(f"maintenance policy must be a mapping, got "
                             f"{type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"maintenance policy has unknown keys {sorted(unknown)}; "
                             f"known keys: {', '.join(sorted(known))}")
        return cls(**dict(data))

    def to_json(self, indent: int = 1) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "MaintenancePolicy":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """One-line human summary of the active clauses."""
        if self.is_noop():
            return "no-op"
        clauses = []
        if self.refresh_every:
            clauses.append(f"refresh every {self.refresh_every}")
        if self.max_unembeddable_rate is not None:
            clauses.append(f"refresh if unembeddable > {self.max_unembeddable_rate:g}")
        if self.min_update_rate is not None:
            clauses.append(f"refresh if update rate < {self.min_update_rate:g}")
        if self.admit_new_macs_after:
            clauses.append(f"admit new MACs after {self.admit_new_macs_after} obs")
        if self.reprovision_after:
            clauses.append(f"reprovision after {self.reprovision_after} stuck refreshes")
        if self.flush_every:
            clauses.append(f"flush every {self.flush_every}")
        if self.evict_idle_sweeps:
            clauses.append(f"evict after {self.evict_idle_sweeps} idle sweeps")
        if self.recovery is not None:
            clauses.append(self.recovery.describe())
        head = f"check every {self.check_every}: " if self.check_every else ""
        return head + ("; ".join(clauses) or "no-op")
