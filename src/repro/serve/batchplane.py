"""The fleet's vectorized batch data plane.

``GeofenceFleet.observe_many`` used to decay into a per-record python
loop through the embedder and detector.  :class:`BatchPlane` routes a
tenant's whole batch through ``EmbeddingGeofencer.observe_many``
instead — one hoisted inference kernel, chunked detector scoring —
while caching the kernel *across* batches, keyed by the embedder's
``batch_token()`` identity fingerprint.

Eligibility and fallback
------------------------
``fastpath_reason`` names why a model cannot take the fast path:

========================  ====================================================
reason                    what falls back
========================  ====================================================
``model``                 standalone models (SignatureHome, INOA) and anything
                          without ``observe_many`` (no batch contract at all)
``embedder``              matrix embedders (autoencoder / MDS / imputed
                          matrix) — no hoisted inference kernel
``refresh_every``         graph embedders in the deprecated auto-refresh
                          regime — caches can rebuild mid-stream
``detector``              LOF / iForest / feature bagging — their dense
                          kernels are batch-size-dependent, so batch scores
                          would not be bit-identical (see the registry's
                          ``supports_batch_score`` flag)
========================  ====================================================

Fallback means exactly the old behaviour: ``model.observe`` per record.

Cache invalidation
------------------
A cached kernel is reused only while the embedder's ``batch_token()``
matches the one captured with it.  The token is built from object
identities of everything the kernel reads, so every event that could
change inference output invalidates it for free:

* **refresh commit** swaps the embedder object entirely (weak key dies);
* **reprovision / evict+reload** replace the whole model (weak key dies);
* **load_state_dict** rebuilds weights, graph and caches (token changes);
* **cache extension** for newly interned MACs rebinds the cache list
  (token changes → conservative rebuild next batch).

Outcomes are counted per ``(arm, outcome)`` and mirrored to the metric
family ``repro_batch_fastpath_total{shard, arm, outcome}`` when a
:class:`~repro.obs.metrics.MetricsRegistry` is attached.
"""

from __future__ import annotations

import weakref

__all__ = ["BatchPlane", "fastpath_reason", "arm_label"]


def fastpath_reason(model) -> str | None:
    """None when the fast path may engage, else the fallback reason."""
    if not hasattr(model, "observe_many") or not hasattr(model, "embedder"):
        return "model"
    embedder = model.embedder
    if not hasattr(embedder, "supports_batch_inference"):
        return "embedder"
    if getattr(embedder, "refresh_every", 0):
        return "refresh_every"
    if not embedder.supports_batch_inference():
        return "embedder"
    detector = model.detector
    if not (hasattr(detector, "supports_batch_score")
            and detector.supports_batch_score()):
        return "detector"
    return None


def arm_label(model) -> str:
    """Low-cardinality arm label for fast-path accounting.

    Uses the stamped :class:`~repro.pipeline.spec.PipelineSpec` when the
    model was built declaratively (``gem``, ``bisage+lof``, ...), else
    the model's type name.
    """
    spec = getattr(model, "spec", None)
    if spec is not None:
        if spec.model is not None:
            return spec.model.name
        return f"{spec.embedder.name}+{spec.detector.name}"
    return type(model).__name__.lower()


class BatchPlane:
    """Per-fleet batch router with a kernel cache and outcome counters.

    Not internally locked: the owning fleet calls :meth:`observe_batch`
    under the same lock that serialises every other mutation of the
    tenant's model, which also guards the kernel cache and counters.
    """

    def __init__(self, metrics=None, shard: str = "0"):
        # model -> (token, kernel); weak keys let evicted/replaced
        # models drop their kernels without any explicit hook.
        self._kernels: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        self.counts: dict[tuple[str, str], int] = {}
        self._family = None
        self._children: dict[tuple[str, str], object] = {}
        self._shard = str(shard)
        if metrics is not None:
            self._family = metrics.counter(
                "repro_batch_fastpath_total",
                help="observe_many batches by arm and fast-path outcome",
                labels=("shard", "arm", "outcome"))

    def observe_batch(self, model, records) -> tuple[list, str]:
        """Route one tenant batch; returns ``(decisions, outcome)``.

        ``outcome`` is ``"engaged"`` or ``"fallback_<reason>"``; either
        way the decisions (and the model's post-batch state) are exactly
        what the scalar per-record loop would have produced.
        """
        reason = fastpath_reason(model)
        if reason is not None:
            outcome = f"fallback_{reason}"
            decisions = [model.observe(record) for record in records]
        else:
            outcome = "engaged"
            decisions = model.observe_many(records, kernel=self._kernel_for(model))
        self._count(arm_label(model), outcome)
        return decisions, outcome

    def _kernel_for(self, model):
        token = model.embedder.batch_token()
        cached = self._kernels.get(model)
        if cached is not None and cached[0] == token:
            return cached[1]
        kernel = model.embedder.batched_inference()
        self._kernels[model] = (token, kernel)
        return kernel

    def _count(self, arm: str, outcome: str) -> None:
        key = (arm, outcome)
        self.counts[key] = self.counts.get(key, 0) + 1
        if self._family is not None:
            child = self._children.get(key)
            if child is None:
                child = self._family.labels(shard=self._shard, arm=arm,
                                            outcome=outcome)
                self._children[key] = child
            child.inc()

    def engaged_total(self) -> int:
        """Batches that took the fast path (any arm)."""
        return sum(count for (_, outcome), count in self.counts.items()
                   if outcome == "engaged")
