"""Neural-network layers built on the autograd Tensor.

Provides the module abstraction (parameter collection) plus the layers
the paper's models need: dense layers for the GNNs and 1-D convolutions
for the autoencoder baseline ("four layers of 1-D convolution with the
ReLU activation function", Sec. V).
"""

from __future__ import annotations

import numpy as np

from repro.nn import init, ops
from repro.nn.tensor import Tensor, as_tensor
from repro.utils.rng import as_rng
from repro.utils.validation import check_positive_int

__all__ = ["Module", "Parameter", "Linear", "Conv1d", "Sequential", "ReLU", "Sigmoid", "Tanh",
           "export_parameters", "load_parameters"]


class Parameter(Tensor):
    """A tensor that is always trainable."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


def export_parameters(parameters, prefix: str = "param") -> dict[str, np.ndarray]:
    """Flat ``{f"{prefix}_{i}": array}`` mapping of parameter data (copies).

    The inverse of :func:`load_parameters`; the shared currency of every
    checkpointable model in the library (the GNNs keep bare parameter
    lists rather than :class:`Module` trees).
    """
    return {f"{prefix}_{i}": p.data.copy() for i, p in enumerate(parameters)}


def load_parameters(parameters, state: dict[str, np.ndarray], prefix: str = "param") -> None:
    """Load arrays exported by :func:`export_parameters` back in place.

    Validates count and per-parameter shape so a checkpoint from a model
    with different hyper-parameters fails loudly instead of silently.
    """
    parameters = list(parameters)
    expected = {f"{prefix}_{i}" for i in range(len(parameters))}
    if set(state) != expected:
        raise ValueError(f"parameter state has keys {sorted(state)}, "
                         f"model expects {sorted(expected)}")
    for i, param in enumerate(parameters):
        incoming = np.asarray(state[f"{prefix}_{i}"], dtype=np.float64)
        if incoming.shape != param.data.shape:
            raise ValueError(f"shape mismatch for {prefix}_{i}: "
                             f"{incoming.shape} vs {param.data.shape}")
        param.data = incoming.copy()


class Module:
    """Base class: tracks parameters registered as attributes."""

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in vars(self).values():
            params.extend(_collect(value, seen))
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of parameter arrays (copies) for checkpointing."""
        return export_parameters(self.parameters())

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        load_parameters(self.parameters(), state)


def _collect(value, seen: set[int]) -> list[Parameter]:
    if isinstance(value, Parameter):
        if id(value) in seen:
            return []
        seen.add(id(value))
        return [value]
    if isinstance(value, Module):
        out = []
        for sub in vars(value).values():
            out.extend(_collect(sub, seen))
        return out
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            out.extend(_collect(item, seen))
        return out
    if isinstance(value, dict):
        out = []
        for item in value.values():
            out.extend(_collect(item, seen))
        return out
    return []


class Linear(Module):
    """Affine layer ``y = x @ W^T + b``."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True, rng=None):
        check_positive_int(in_features, "in_features")
        check_positive_int(out_features, "out_features")
        rng = as_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class Conv1d(Module):
    """1-D convolution over (batch, channels, length) inputs.

    Implemented with im2col + matmul so it rides on the existing autograd
    primitives.  Stride and zero padding are supported; dilation is not
    needed by the paper's autoencoder.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True, rng=None):
        check_positive_int(in_channels, "in_channels")
        check_positive_int(out_channels, "out_channels")
        check_positive_int(kernel_size, "kernel_size")
        check_positive_int(stride, "stride")
        if padding < 0:
            raise ValueError(f"padding must be >= 0, got {padding}")
        rng = as_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(init.he_uniform((out_channels, in_channels, kernel_size), rng))
        self.bias = Parameter(np.zeros(out_channels)) if bias else None

    def output_length(self, length: int) -> int:
        return (length + 2 * self.padding - self.kernel_size) // self.stride + 1

    def forward(self, x: Tensor) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 3:
            raise ValueError(f"Conv1d expects (batch, channels, length), got shape {x.shape}")
        batch, channels, length = x.shape
        if channels != self.in_channels:
            raise ValueError(f"expected {self.in_channels} input channels, got {channels}")
        out_len = self.output_length(length)
        if out_len <= 0:
            raise ValueError(f"input length {length} too short for kernel {self.kernel_size}")

        if self.padding:
            x = _pad_length(x, self.padding)
            length = length + 2 * self.padding

        # im2col via fancy indexing: (batch, C*k, out_len) columns.
        starts = np.arange(out_len) * self.stride
        taps = starts[None, :] + np.arange(self.kernel_size)[:, None]  # (k, out_len)
        flat = x.reshape(batch, channels * length)
        col_index = (np.arange(channels)[:, None, None] * length + taps[None]).reshape(-1)
        cols = _gather_cols(flat, col_index)  # (batch, C*k*out_len)
        cols = cols.reshape(batch, channels * self.kernel_size, out_len)

        kernel = self.weight.reshape(self.out_channels, channels * self.kernel_size)
        # (batch, out_len, C*k) @ (C*k, out_channels) -> (batch, out_len, out_channels)
        out = cols.transpose(0, 2, 1) @ kernel.T
        if self.bias is not None:
            out = out + self.bias
        return out.transpose(0, 2, 1)


def _pad_length(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the last axis of a (batch, channels, length) tensor."""
    batch, channels, _ = x.shape
    zeros = Tensor(np.zeros((batch, channels, pad)))
    return ops.concat([zeros, x, zeros], axis=2)


def _gather_cols(x: Tensor, indices: np.ndarray) -> Tensor:
    """Gather columns of a 2-D tensor with scatter-add gradient."""
    idx = np.asarray(indices, dtype=np.int64)
    out_data = x.data[:, idx]

    def backward(grad):
        if x.requires_grad:
            full = np.zeros_like(x.data)
            np.add.at(full.T, idx, grad.transpose(1, 0))
            x._accumulate(full)

    return Tensor._make(out_data, (x,), backward)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)


class Sequential(Module):
    """Chain modules; also accepts bare callables (e.g. ops functions)."""

    def __init__(self, *modules):
        self.modules = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for module in self.modules:
            x = module(x)
        return x
