"""From-scratch autograd and neural-network substrate.

Implements the reverse-mode autodiff engine, layers and optimisers that
BiSAGE, GraphSAGE and the convolutional autoencoder baseline train on.
"""

from repro.nn import init, ops
from repro.nn.layers import (
    Conv1d,
    Linear,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
    export_parameters,
    load_parameters,
)
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.sparse import row_normalized_csr, spmm
from repro.nn.tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Adam",
    "Conv1d",
    "Linear",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "as_tensor",
    "export_parameters",
    "init",
    "load_parameters",
    "is_grad_enabled",
    "no_grad",
    "ops",
    "row_normalized_csr",
    "spmm",
]
